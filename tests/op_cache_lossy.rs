//! The lossy operation cache never changes results.
//!
//! The kernel's computed table is direct-mapped and generation-tagged:
//! entries are evicted by conflicts and retired wholesale by GC's
//! generation bump. Neither may ever change *what* is computed — only
//! how often subproblems are recomputed — because every apply/ITE result
//! is hash-consed canonically. These tests drive identical random
//! workloads through managers with (a) the default auto-sizing cache,
//! (b) a generously sized cache that never evicts (the lossless
//! reference), and (c) a pathological capacity-1 cache, and require
//! node-for-node identical diagrams from all three.

use std::collections::HashMap;

use proptest::prelude::*;

use soc_yield::bdd::{BddId, BddManager};

/// Structural equality of two diagrams living in different managers:
/// same levels, same branching, terminal-for-terminal.
fn assert_isomorphic(a: &BddManager, ra: BddId, b: &BddManager, rb: BddId) {
    fn go(
        a: &BddManager,
        na: BddId,
        b: &BddManager,
        nb: BddId,
        memo: &mut HashMap<(usize, usize), ()>,
    ) {
        assert_eq!(na.is_zero(), nb.is_zero(), "terminal mismatch");
        assert_eq!(na.is_one(), nb.is_one(), "terminal mismatch");
        if na.is_terminal() {
            return;
        }
        if memo.insert((na.index(), nb.index()), ()).is_some() {
            return;
        }
        assert_eq!(a.level(na), b.level(nb), "level mismatch");
        go(a, a.low(na), b, b.low(nb), memo);
        go(a, a.high(na), b, b.high(nb), memo);
    }
    go(a, ra, b, rb, &mut HashMap::new());
}

/// Replays one pseudorandom apply/ITE workload on a manager and returns
/// the pool of produced nodes.
fn run_workload(mgr: &mut BddManager, vars: usize, ops: usize, seed: u64) -> Vec<BddId> {
    let mut pool: Vec<BddId> = (0..vars).map(|i| mgr.var(i)).collect();
    pool.push(mgr.zero());
    pool.push(mgr.one());
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..ops {
        let a = pool[(next() % pool.len() as u64) as usize];
        let b = pool[(next() % pool.len() as u64) as usize];
        let c = pool[(next() % pool.len() as u64) as usize];
        let r = match next() % 5 {
            0 => mgr.and(a, b),
            1 => mgr.or(a, b),
            2 => mgr.xor(a, b),
            3 => mgr.not(a),
            _ => mgr.ite(a, b, c),
        };
        pool.push(r);
    }
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical workloads through the default, a lossless-sized, and a
    /// capacity-1 cache produce node-for-node identical diagrams.
    #[test]
    fn lossy_cache_never_changes_results(vars in 2usize..7, ops in 8usize..48, seed in any::<u64>()) {
        let mut default_mgr = BddManager::new(vars);
        let mut roomy_mgr = BddManager::with_cache_capacity(vars, 1 << 20, 1 << 20);
        let mut tiny_mgr = BddManager::with_cache_capacity(vars, 1, 1);
        let default_pool = run_workload(&mut default_mgr, vars, ops, seed);
        let roomy_pool = run_workload(&mut roomy_mgr, vars, ops, seed);
        let tiny_pool = run_workload(&mut tiny_mgr, vars, ops, seed);

        // The generous cache never evicted: it is a faithful stand-in for
        // a lossless memo table on workloads of this size.
        prop_assert_eq!(roomy_mgr.stats().op_cache_evictions, 0);
        // The capacity-1 cache evicts on every insertion after the first
        // (sanity: the workload actually exercises the lossy path
        // whenever it inserts more than one entry).
        let tiny = tiny_mgr.stats();
        prop_assert!(tiny.op_cache_evictions > 0 || tiny.op_cache_insertions <= 1);

        // Hash-consing is deterministic per manager, so identical
        // workloads must even produce identical node ids across caches...
        for ((d, r), t) in default_pool.iter().zip(&roomy_pool).zip(&tiny_pool) {
            prop_assert_eq!(d, r);
            prop_assert_eq!(d, t);
        }
        // ...and, structurally, node-for-node identical diagrams.
        for ((&d, &r), &t) in default_pool.iter().zip(&roomy_pool).zip(&tiny_pool).rev().take(3) {
            assert_isomorphic(&default_mgr, d, &roomy_mgr, r);
            assert_isomorphic(&default_mgr, d, &tiny_mgr, t);
            prop_assert_eq!(default_mgr.node_count(d), tiny_mgr.node_count(t));
        }
        // Peaks agree too: recomputation only re-finds canonical nodes.
        prop_assert_eq!(default_mgr.peak_nodes(), roomy_mgr.peak_nodes());
        prop_assert_eq!(default_mgr.peak_nodes(), tiny_mgr.peak_nodes());

        // And every pool entry evaluates identically on all assignments.
        let last = *default_pool.last().unwrap();
        let last_tiny = *tiny_pool.last().unwrap();
        for row in 0u32..(1 << vars) {
            let a: Vec<bool> = (0..vars).map(|i| (row >> i) & 1 == 1).collect();
            prop_assert_eq!(default_mgr.eval(last, &a), tiny_mgr.eval(last_tiny, &a));
        }
    }
}

/// GC's generation bump really invalidates stale entries: after a
/// collection the same operation misses the cache (and recomputes the
/// identical canonical node).
#[test]
fn gc_generation_bump_invalidates_op_cache() {
    let mut mgr = BddManager::new(4);
    let x = mgr.var(0);
    let y = mgr.var(1);
    let f = mgr.and(x, y);
    // Warm: repeating the operation hits the cache.
    let before = mgr.stats();
    assert_eq!(mgr.and(x, y), f);
    let warmed = mgr.stats();
    assert_eq!(warmed.op_cache_hits, before.op_cache_hits + 1);
    assert_eq!(warmed.op_cache_misses, before.op_cache_misses);

    let handle = mgr.protect(f);
    let gc = mgr.gc();
    assert!(gc.cache_entries_dropped > 0, "the bump retires the live entries");
    let f = mgr.unprotect(handle);

    // Same operation after the collection: the generation bump forces a
    // miss, and the recomputation reproduces the same canonical node.
    let x = mgr.var(0);
    let y = mgr.var(1);
    let stats = mgr.stats();
    let again = mgr.and(x, y);
    let after = mgr.stats();
    assert_eq!(again, f);
    assert_eq!(after.op_cache_hits, stats.op_cache_hits, "stale entries must not hit");
    assert!(after.op_cache_misses > stats.op_cache_misses);
}
