//! Integration tests of intra-compilation parallelism: compiling with
//! `compile_threads > 1` (sharded concurrent unique table, lossy
//! concurrent op cache, work-stealing apply/conversion) must be
//! **bit-identical** to sequential compilation — same yields (to the
//! last bit), same error bounds, same truncations, same node counts and
//! peaks — for every thread count.
//!
//! Only the operation-cache tallies (the concurrent cache is lossy, so
//! racing writers may drop publications) and the steal/contention
//! counters are scheduling-dependent; everything this file compares is
//! not, and the comparisons deliberately use canonical quantities, never
//! raw node ids.
//!
//! The CI test job runs these under `SOCY_TEST_COMPILE_THREADS ∈ {1, 4}`
//! (mirroring `SOCY_TEST_THREADS` of `parallel_sweep.rs`), so the
//! sequential and parallel compile paths are both exercised on every PR;
//! the env var adds a compile-thread count to the compared set.

use proptest::prelude::*;

use soc_yield::defect::{ComponentProbabilities, NegativeBinomial};
use soc_yield::ordering::{GroupOrdering, MvOrdering};
use soc_yield::{
    NamedDistribution, Netlist, OrderingSpec, SweepBlock, SweepMatrix, SweepOutcome, SystemSpec,
    TruncationRule,
};

/// Compile-thread counts to compare: 1, 2, 4, plus CI's
/// `SOCY_TEST_COMPILE_THREADS`.
fn compile_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(n) =
        std::env::var("SOCY_TEST_COMPILE_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if !counts.contains(&n) && n > 0 {
            counts.push(n);
        }
    }
    counts
}

/// CI's `SOCY_TEST_COMPLEMENT` (0 or 1; default on): which
/// complement-edge mode the benchmark comparisons run under. Both modes
/// must be bit-identical across compile-thread counts — the comparisons
/// here are serial-vs-parallel within one mode, so either setting is a
/// valid reference (`tests/complement_equivalence.rs` gates the
/// cross-mode equality itself).
fn env_complement() -> bool {
    std::env::var("SOCY_TEST_COMPLEMENT").map_or(true, |v| v.trim() != "0")
}

/// A paper benchmark as a sweep system (same construction as the bench
/// harness, at the paper's lethality 1).
fn benchmark(system: &soc_yield::benchmarks::BenchmarkSystem) -> SystemSpec {
    let components = system.component_probabilities(1.0).expect("valid weights");
    SystemSpec::new(system.name.clone(), system.fault_tree.clone(), components)
}

/// Compares everything that must not depend on the compile-thread count:
/// results bit-for-bit, node counts, peaks, unique-table sizes, GC
/// accounting and the deterministic parallel counters. The op-cache
/// tallies and the steal/contention counters are intentionally absent.
fn assert_compile_bit_identical(serial: &SweepOutcome, parallel: &SweepOutcome, context: &str) {
    assert_eq!(serial.points.len(), parallel.points.len(), "{context}: point counts");
    for (s, p) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(s.labels, p.labels, "{context}: report ordering must not depend on threads");
        match (&s.result, &p.result) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.yield_lower_bound.to_bits(),
                    p.yield_lower_bound.to_bits(),
                    "{context}: yield must be bit-identical"
                );
                assert_eq!(s.error_bound.to_bits(), p.error_bound.to_bits(), "{context}");
                assert_eq!(s.truncation, p.truncation, "{context}");
                assert_eq!(s.compiled_truncation, p.compiled_truncation, "{context}");
                assert_eq!(s.coded_robdd_size, p.coded_robdd_size, "{context}");
                assert_eq!(s.presift_robdd_size, p.presift_robdd_size, "{context}");
                assert_eq!(s.robdd_peak, p.robdd_peak, "{context}");
                assert_eq!(s.romdd_size, p.romdd_size, "{context}");
                for (s, p, which) in [
                    (&s.robdd_stats, &p.robdd_stats, "robdd"),
                    (&s.romdd_stats, &p.romdd_stats, "romdd"),
                ] {
                    assert_eq!(s.peak_nodes, p.peak_nodes, "{context}: {which} peak");
                    assert_eq!(s.live_nodes, p.live_nodes, "{context}: {which} live");
                    assert_eq!(s.unique_entries, p.unique_entries, "{context}: {which} unique");
                    assert_eq!(s.gc_runs, p.gc_runs, "{context}: {which} gc runs");
                    assert_eq!(s.gc_reclaimed, p.gc_reclaimed, "{context}: {which} gc reclaimed");
                }
            }
            (Err(s), Err(p)) => assert_eq!(s, p, "{context}: errors must be deterministic"),
            (s, p) => {
                panic!("{context}: serial ok={} but parallel ok={}", s.is_ok(), p.is_ok())
            }
        }
    }
    assert_eq!(serial.summary.chunks, parallel.summary.chunks, "{context}");
    assert_eq!(serial.summary.failed_points, parallel.summary.failed_points, "{context}");
    for (s, p, which) in [
        (&serial.summary.robdd, &parallel.summary.robdd, "robdd"),
        (&serial.summary.romdd, &parallel.summary.romdd, "romdd"),
    ] {
        assert_eq!(s.peak_nodes_max, p.peak_nodes_max, "{context}: {which}");
        assert_eq!(s.peak_nodes_sum, p.peak_nodes_sum, "{context}: {which}");
        assert_eq!(s.unique_entries_sum, p.unique_entries_sum, "{context}: {which}");
        assert_eq!(s.gc_runs, p.gc_runs, "{context}: {which}");
        assert_eq!(s.gc_reclaimed, p.gc_reclaimed, "{context}: {which}");
    }
}

/// The real-size path: two paper benchmarks whose coded ROBDDs exceed
/// the default parallel grain, so `compile_threads > 1` genuinely enters
/// the sharded-session code (asserted via `par_sections`).
#[test]
fn benchmark_compilation_is_bit_identical_across_compile_threads() {
    let mut block = SweepBlock::new();
    block.systems.push(benchmark(&soc_yield::benchmarks::esen(4, 1)));
    block.systems.push(benchmark(&soc_yield::benchmarks::esen(4, 2)));
    block
        .distributions
        .push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, 4.0).unwrap()));
    block.specs.push(OrderingSpec::paper_default());
    block.rules.push(TruncationRule::Epsilon(1e-3));
    let mut matrix = SweepMatrix::new();
    matrix.options = matrix.options.with_complement_edges(env_complement());
    matrix.add(block);

    let serial = matrix.run(1);
    assert_eq!(serial.summary.failed_points, 0);
    assert_eq!(serial.summary.robdd.par_sections, 0, "sequential compile must not fan out");
    for compile_threads in compile_thread_counts() {
        matrix.options = matrix.options.with_compile_threads(compile_threads);
        let parallel = matrix.run(1);
        let context = format!("compile_threads={compile_threads}");
        assert_compile_bit_identical(&serial, &parallel, &context);
        if compile_threads > 1 {
            let sections =
                parallel.summary.robdd.par_sections + parallel.summary.romdd.par_sections;
            assert!(sections > 0, "{context}: benchmarks exceed the grain, must fan out");
        }
    }
}

/// Parallel compile inside a parallel sweep: the two thread pools are
/// orthogonal and neither may change a single bit.
#[test]
fn parallel_compile_composes_with_the_parallel_sweep() {
    let mut block = SweepBlock::new();
    block.systems.push(benchmark(&soc_yield::benchmarks::esen(4, 1)));
    block.systems.push(benchmark(&soc_yield::benchmarks::ms(2)));
    block
        .distributions
        .push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, 4.0).unwrap()));
    block.specs.push(OrderingSpec::paper_default());
    block.specs.push(OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).unwrap());
    block.rules.push(TruncationRule::Epsilon(1e-2));
    block.rules.push(TruncationRule::Epsilon(1e-3));
    let mut matrix = SweepMatrix::new();
    matrix.options = matrix.options.with_complement_edges(env_complement());
    matrix.add(block);

    let serial = matrix.run(1);
    matrix.options = matrix.options.with_compile_threads(4);
    let parallel = matrix.run(4);
    assert_compile_bit_identical(&serial, &parallel, "threads=4 × compile_threads=4");
}

/// Random fault tree over `c` components (same generator family as
/// `parallel_sweep.rs` / `property_based.rs`).
fn arb_system(max_components: usize) -> impl Strategy<Value = SystemSpec> {
    (2..=max_components, 1usize..5, any::<u64>()).prop_map(|(c, gates, seed)| {
        let mut nl = Netlist::new();
        let mut nodes: Vec<_> = (0..c).map(|i| nl.input(format!("x{i}"))).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..gates {
            let arity = 2 + (next() % 2) as usize;
            let fanin: Vec<_> =
                (0..arity).map(|_| nodes[(next() % nodes.len() as u64) as usize]).collect();
            let gate = match next() % 3 {
                0 => nl.and(fanin),
                1 => nl.or(fanin),
                _ => {
                    let inner = nl.or(fanin);
                    nl.not(inner)
                }
            };
            nodes.push(gate);
        }
        let out = *nodes.last().expect("non-empty");
        nl.set_output(out);
        let components = ComponentProbabilities::new(vec![1.0 / c as f64; c]).unwrap();
        SystemSpec::new(format!("random-{seed:x}"), nl, components)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over random systems, distributions and rules, compiling with 2
    /// and 4 threads is bit-identical to the sequential compile. The
    /// grain cutoff is lowered to 2 nodes so even these small diagrams
    /// genuinely take the parallel path (with the default grain the gate
    /// would keep them sequential and the property would hold
    /// vacuously).
    #[test]
    fn random_systems_are_compile_thread_invariant(
        systems in proptest::collection::vec(arb_system(5), 1..3),
        lambda in 0.3f64..2.0,
        alpha in 0.5f64..8.0,
        epsilon_exp in 1u32..5,
        fixed_m in 1usize..5,
        second_spec in 0usize..3,
    ) {
        let mut block = SweepBlock::new();
        for system in systems {
            block.systems.push(system);
        }
        block.distributions.push(NamedDistribution::new(
            "λ'",
            NegativeBinomial::new(lambda, alpha).unwrap(),
        ));
        block.specs.push(OrderingSpec::paper_default());
        let second = [
            OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).unwrap(),
            OrderingSpec::new(MvOrdering::Wvr, GroupOrdering::LsbFirst).unwrap(),
            OrderingSpec::new(MvOrdering::Topology, GroupOrdering::MsbFirst).unwrap(),
        ][second_spec];
        block.specs.push(second);
        block.rules.push(TruncationRule::Epsilon(10f64.powi(-(epsilon_exp as i32))));
        block.rules.push(TruncationRule::Fixed(fixed_m));
        let mut matrix = SweepMatrix::new();
        matrix.add(block);
        matrix.options = matrix.options.with_compile_grain(2);

        let serial = matrix.run(1);
        for compile_threads in compile_thread_counts() {
            if compile_threads == 1 {
                continue;
            }
            matrix.options = matrix.options.with_compile_threads(compile_threads);
            let parallel = matrix.run(1);
            assert_compile_bit_identical(
                &serial,
                &parallel,
                &format!("compile_threads={compile_threads}"),
            );
        }
    }
}
