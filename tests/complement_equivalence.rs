//! Dual-mode equivalence of the complemented-edge ROBDD kernel.
//!
//! Complemented edges are a *representation* change: one physical node
//! serves both a function and its negation, `not()` becomes an O(1) bit
//! flip, and the coded ROBDD shrinks — but every quantity the paper
//! reports (yields, error bounds, truncations, ROMDD node counts) must
//! be bit-identical with the feature on or off, under sequential and
//! parallel compilation alike. These tests sweep the same matrix in
//! both modes and compare the results field by field.
//!
//! The CI check matrix runs the suite under `SOCY_TEST_COMPLEMENT ∈
//! {0, 1}` (mirroring `SOCY_TEST_THREADS` / `SOCY_TEST_COMPILE_THREADS`);
//! the env var selects which mode the *other* integration suites
//! exercise where they honor it, while this file always compares the
//! two modes directly.

use proptest::prelude::*;

use soc_yield::bdd::BddManager;
use soc_yield::benchmarks::{esen, ms};
use soc_yield::defect::NegativeBinomial;
use soc_yield::ordering::{GroupOrdering, MvOrdering};
use soc_yield::{
    NamedDistribution, Netlist, OrderingSpec, SweepBlock, SweepMatrix, SweepOutcome, SystemSpec,
    TruncationRule,
};

/// A paper benchmark as a sweep system (lethality 1, like the tables).
fn benchmark(system: &soc_yield::benchmarks::BenchmarkSystem) -> SystemSpec {
    let components = system.component_probabilities(1.0).expect("valid weights");
    SystemSpec::new(system.name.clone(), system.fault_tree.clone(), components)
}

/// The benchmark matrix both modes run: two systems, two orderings
/// (static and sifted), both conversion algorithms, two ε rules.
fn matrix(complement_edges: bool, compile_threads: usize) -> SweepMatrix {
    let mut m = SweepMatrix::new();
    m.options =
        m.options.with_complement_edges(complement_edges).with_compile_threads(compile_threads);
    let mut block = SweepBlock::new();
    block.systems.push(benchmark(&esen(4, 1)));
    block.systems.push(benchmark(&ms(2)));
    let raw = NegativeBinomial::new(1.0, 4.0).expect("valid");
    block.distributions.push(NamedDistribution::new("λ'=1".to_string(), raw));
    block.specs.push(OrderingSpec::paper_default());
    block.rules.push(TruncationRule::Epsilon(1e-2));
    block.rules.push(TruncationRule::Epsilon(1e-3));
    m.add(block);
    // The sifted mediocre order exercises the complement-aware swap; one
    // small system keeps it cheap.
    let mut sifted = SweepBlock::new();
    sifted.systems.push(benchmark(&esen(4, 1)));
    let raw = NegativeBinomial::new(1.0, 4.0).expect("valid");
    sifted.distributions.push(NamedDistribution::new("λ'=1".to_string(), raw));
    sifted.specs.push(
        OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst)
            .expect("valid")
            .with_sifting(120),
    );
    sifted.rules.push(TruncationRule::Epsilon(1e-3));
    m.add(sifted);
    m
}

/// Compares everything that must not depend on the complement-edge
/// mode: yields and error bounds bit-for-bit, truncations, and the
/// ROMDD node counts. ROBDD-side node counts are compared by *order*
/// instead — the complemented diagram must never be larger.
fn assert_complement_invariant(plain: &SweepOutcome, complemented: &SweepOutcome, context: &str) {
    assert_eq!(plain.points.len(), complemented.points.len(), "{context}: point counts");
    let mut shrunk = false;
    for (p, c) in plain.points.iter().zip(&complemented.points) {
        assert_eq!(p.labels, c.labels, "{context}: report order must not depend on the mode");
        let (p, c) = match (&p.result, &c.result) {
            (Ok(p), Ok(c)) => (p, c),
            other => panic!("{context}: mixed outcomes {other:?}"),
        };
        assert_eq!(
            p.yield_lower_bound.to_bits(),
            c.yield_lower_bound.to_bits(),
            "{context}: yield must be bit-identical"
        );
        assert_eq!(p.error_bound.to_bits(), c.error_bound.to_bits(), "{context}: error bound");
        assert_eq!(p.truncation, c.truncation, "{context}: truncation");
        assert_eq!(p.compiled_truncation, c.compiled_truncation, "{context}");
        assert_eq!(p.romdd_size, c.romdd_size, "{context}: ROMDD size");
        assert_eq!(
            p.romdd_stats.live_nodes, c.romdd_stats.live_nodes,
            "{context}: ROMDD live nodes"
        );
        assert!(
            c.coded_robdd_size <= p.coded_robdd_size,
            "{context}: complemented coded ROBDD must never be larger \
             ({} vs plain {})",
            c.coded_robdd_size,
            p.coded_robdd_size
        );
        shrunk |= c.coded_robdd_size < p.coded_robdd_size;
    }
    assert!(shrunk, "{context}: at least one benchmark diagram must actually shrink");
}

#[test]
fn yields_are_bit_identical_with_and_without_complement_edges() {
    let plain = matrix(false, 1).run(2);
    let complemented = matrix(true, 1).run(2);
    assert_complement_invariant(&plain, &complemented, "sequential compile");
}

#[test]
fn complement_equivalence_holds_under_parallel_compilation() {
    // The paper-anchors CI job gates `--compile-threads 4` in both
    // modes; this is the in-tree version of that check, plus CI's
    // `SOCY_TEST_COMPLEMENT`-selected mode against the sequential
    // plain-edge reference.
    let reference = matrix(false, 1).run(2);
    let complemented = matrix(true, 4).run(2);
    assert_complement_invariant(&reference, &complemented, "compile-threads 4");
    // Parallel plain-edge compilation must agree with sequential
    // plain-edge compilation on results too (same field set).
    let plain_parallel = matrix(false, 4).run(2);
    for (s, p) in reference.points.iter().zip(&plain_parallel.points) {
        let (s, p) = match (&s.result, &p.result) {
            (Ok(s), Ok(p)) => (s, p),
            other => panic!("plain parallel: mixed outcomes {other:?}"),
        };
        assert_eq!(s.yield_lower_bound.to_bits(), p.yield_lower_bound.to_bits());
        assert_eq!(s.coded_robdd_size, p.coded_robdd_size);
        assert_eq!(s.romdd_size, p.romdd_size);
    }
}

/// CI's `SOCY_TEST_COMPLEMENT` (0 or 1; default on) — the mode the
/// environment asks integration runs to exercise.
fn env_complement() -> bool {
    std::env::var("SOCY_TEST_COMPLEMENT").map_or(true, |v| v.trim() != "0")
}

#[test]
fn env_selected_mode_matches_the_plain_sequential_reference() {
    let reference = matrix(false, 1).run(2);
    let env_mode = matrix(env_complement(), 1).run(2);
    for (s, p) in reference.points.iter().zip(&env_mode.points) {
        let (s, p) = match (&s.result, &p.result) {
            (Ok(s), Ok(p)) => (s, p),
            other => panic!("env mode: mixed outcomes {other:?}"),
        };
        assert_eq!(s.yield_lower_bound.to_bits(), p.yield_lower_bound.to_bits());
        assert_eq!(s.error_bound.to_bits(), p.error_bound.to_bits());
        assert_eq!(s.truncation, p.truncation);
        assert_eq!(s.romdd_size, p.romdd_size);
    }
}

/// Strategy for a small random fault tree over `c` components (same
/// generator shape as `property_based.rs`, with inverters guaranteed in
/// the mix so complement edges actually appear).
fn arb_fault_tree(max_components: usize) -> impl Strategy<Value = (Netlist, usize)> {
    (2..=max_components, 1usize..6, any::<u64>()).prop_map(|(c, gates, seed)| {
        let mut nl = Netlist::new();
        let mut nodes: Vec<_> = (0..c).map(|i| nl.input(format!("x{i}"))).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..gates {
            let arity = 2 + (next() % 2) as usize;
            let fanin: Vec<_> =
                (0..arity).map(|_| nodes[(next() % nodes.len() as u64) as usize]).collect();
            let gate = match next() % 3 {
                0 => nl.and(fanin),
                1 => nl.or(fanin),
                _ => {
                    let inner = nl.or(fanin);
                    nl.not(inner)
                }
            };
            nodes.push(gate);
        }
        let out = *nodes.last().expect("non-empty");
        nl.set_output(out);
        (nl, c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With complemented edges, `not` is an O(1) edge-bit flip:
    /// `not(not(f)) == f` and neither negation may allocate a single
    /// node.
    #[test]
    fn double_negation_is_free((netlist, c) in arb_fault_tree(6)) {
        let mut mgr = BddManager::new(c);
        prop_assert!(mgr.complement_enabled());
        let order: Vec<usize> = (0..c).collect();
        let build = mgr.build_netlist(&netlist, &order);
        let before = mgr.allocated_nodes();
        let nf = mgr.not(build.root);
        let nnf = mgr.not(nf);
        prop_assert_eq!(nnf, build.root, "¬¬f must be f, bit for bit");
        prop_assert_eq!(
            mgr.allocated_nodes(), before,
            "negation with complement edges must allocate zero nodes"
        );
        // And the negation really is the complement function.
        for row in 0u32..(1 << c) {
            let assignment: Vec<bool> = (0..c).map(|i| (row >> i) & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(nf, &assignment), !mgr.eval(build.root, &assignment));
        }
    }

    /// Canonical form: no stored node may carry a complemented (or
    /// constant-0) high edge, whatever mix of connectives built the
    /// manager — and with the feature off, no complement bit may appear
    /// anywhere at all.
    #[test]
    fn no_canonical_node_has_a_complemented_high_edge((netlist, c) in arb_fault_tree(6)) {
        for complement in [true, false] {
            let mut mgr = BddManager::new(c);
            mgr.set_complement(complement);
            let order: Vec<usize> = (0..c).collect();
            let build = mgr.build_netlist(&netlist, &order);
            let _ = mgr.not(build.root);
            prop_assert!(
                mgr.check_complement_invariant(),
                "complement={} manager violated the canonical edge form", complement
            );
        }
    }

    /// The two modes agree on the probability of the root function.
    /// ROBDD-side probabilities are allowed ulp-level drift: a
    /// complemented edge evaluates as `P(¬f) = 1 − P(f)`, which rounds
    /// differently from walking the plain diagram. (The *yields* the
    /// pipeline reports are evaluated on the ROMDD — identical in both
    /// modes — and are gated bit-for-bit by the sweep tests above.)
    #[test]
    fn probability_is_mode_independent((netlist, c) in arb_fault_tree(5), probs in proptest::collection::vec(0.05f64..0.95, 5)) {
        let order: Vec<usize> = (0..c).collect();
        let mut on = BddManager::new(c);
        let root_on = on.build_netlist(&netlist, &order).root;
        let p_on = on.probability(root_on, &probs[..c]);
        let mut off = BddManager::new(c);
        off.set_complement(false);
        let root_off = off.build_netlist(&netlist, &order).root;
        let p_off = off.probability(root_off, &probs[..c]);
        prop_assert!(
            (p_on - p_off).abs() <= 1e-12 * p_off.abs().max(1.0),
            "P(f) across modes: complemented {} vs plain {}", p_on, p_off
        );
    }
}
