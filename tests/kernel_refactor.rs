//! Regression anchors for the shared decision-diagram kernel.
//!
//! The `socy-dd` kernel replaced the two per-engine arenas / unique
//! tables / op caches; these tests pin the Table-4 anchor points (M = 6
//! at λ' = 1 and M = 10 at λ' = 2, with α = 4 and ε = 1e-3) to the node
//! counts and yields produced by the pre-refactor engines, so any change
//! to hash-consing, reduction or conversion that alters the diagrams is
//! caught bit-for-bit.

use soc_yield::benchmarks::{esen, ms};
use soc_yield::defect::NegativeBinomial;
use soc_yield::ordering::{GroupOrdering, MvOrdering};
use soc_yield::{analyze, analyze_direct, AnalysisOptions, OrderingSpec, Pipeline, SweepPoint};

struct Anchor {
    lambda: f64,
    truncation: usize,
    /// Coded-ROBDD size as `[complement edges off, on]`: the physical
    /// diagram is the only thing the toggle may change, so both
    /// representations are pinned (off = the pre-complement seed values).
    robdd_size: [usize; 2],
    /// Peak ROBDD nodes during construction, `[off, on]`.
    robdd_peak: [usize; 2],
    romdd_size: usize,
    yield_lower_bound: f64,
}

fn check_anchor(system: &soc_yield::benchmarks::BenchmarkSystem, anchor: &Anchor) {
    let comps = system.component_probabilities(1.0).unwrap();
    let lethal =
        NegativeBinomial::new(anchor.lambda, 4.0).unwrap().thinned(comps.lethality()).unwrap();
    let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
    // `analyze` uses the pipeline defaults (complement edges on); the
    // explicit pipeline pins the plain-edge representation too, so both
    // kernel modes stay anchored bit-for-bit on every PR.
    let analysis = analyze(&system.fault_tree, &comps, &lethal, &options).unwrap();
    for (complement, report) in [
        (false, {
            let mut pipeline = Pipeline::new(&system.fault_tree, &comps).unwrap();
            pipeline.set_complement_edges(false);
            pipeline.evaluate(&lethal, &options).unwrap()
        }),
        (true, analysis.report.clone()),
    ] {
        let label = format!("{} λ'={} complement={}", system.name, anchor.lambda, complement);
        let mode = usize::from(complement);
        assert_eq!(report.truncation, anchor.truncation, "{label}: truncation");
        assert_eq!(report.coded_robdd_size, anchor.robdd_size[mode], "{label}: ROBDD size");
        assert_eq!(report.robdd_peak, anchor.robdd_peak[mode], "{label}: ROBDD peak");
        assert_eq!(report.romdd_size, anchor.romdd_size, "{label}: ROMDD size");
        assert_eq!(
            report.yield_lower_bound, anchor.yield_lower_bound,
            "{label}: yield must be bit-identical"
        );
        // The kernel statistics must agree with the sizes the report carries.
        assert_eq!(report.robdd_stats.peak_nodes, anchor.robdd_peak[mode]);
        assert_eq!(report.robdd_stats.unique_entries, anchor.robdd_peak[mode] - 2);
    }
    assert!(
        anchor.robdd_size[1] < anchor.robdd_size[0],
        "complemented edges must shrink the pinned coded ROBDDs"
    );
    assert_eq!(analysis.report.romdd_stats.peak_nodes, analysis.mdd.peak_nodes());
}

#[test]
fn esen4x1_table4_anchors_are_bit_identical() {
    // `[0]` entries recorded from the pre-kernel-refactor engines (seed
    // state, plain edges); `[1]` entries from the complemented-edge
    // kernel. Yields and ROMDD sizes are identical in both modes.
    let system = esen(4, 1);
    check_anchor(
        &system,
        &Anchor {
            lambda: 1.0,
            truncation: 6,
            robdd_size: [9897, 9887],
            robdd_peak: [15736, 15698],
            romdd_size: 1461,
            yield_lower_bound: 0.8528030506125002,
        },
    );
    check_anchor(
        &system,
        &Anchor {
            lambda: 2.0,
            truncation: 10,
            robdd_size: [39532, 39522],
            robdd_peak: [59434, 59378],
            romdd_size: 4377,
            yield_lower_bound: 0.6962524531167209,
        },
    );
}

#[test]
fn ms2_table4_anchor_is_bit_identical() {
    let system = ms(2);
    check_anchor(
        &system,
        &Anchor {
            lambda: 1.0,
            truncation: 6,
            robdd_size: [22229, 22221],
            robdd_peak: [44605, 44564],
            romdd_size: 2034,
            yield_lower_bound: 0.9456492858806436,
        },
    );
}

#[test]
fn cross_engine_node_counts_are_identical() {
    // The coded-ROBDD route and the direct multi-valued construction build
    // the same canonical ROMDD on the shared kernel: node counts must be
    // exactly equal, not merely close.
    let system = esen(4, 1);
    let comps = system.component_probabilities(1.0).unwrap();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap().thinned(comps.lethality()).unwrap();
    let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
    let coded = analyze(&system.fault_tree, &comps, &lethal, &options).unwrap();
    let direct = analyze_direct(&system.fault_tree, &comps, &lethal, &options).unwrap();
    assert_eq!(coded.report.romdd_size, direct.report.romdd_size);
    assert_eq!(coded.report.romdd_size, 1461);
}

#[test]
fn group_sifting_reduces_a_mediocre_order_to_the_heuristic_quality() {
    // Anchor for the managed kernel: compiling ESEN4x1 under the mediocre
    // `wv/ml` order and letting group sifting improve it must (a) leave the
    // yield bit-identical to the static run, (b) record the pre-sift size
    // of exactly the static compile, and (c) strictly shrink the coded
    // ROBDD — on this instance all the way down to the size the weight
    // heuristic achieves up front.
    let system = esen(4, 1);
    let comps = system.component_probabilities(1.0).unwrap();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap().thinned(comps.lethality()).unwrap();
    let base = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).unwrap();
    let options = AnalysisOptions { epsilon: 1e-3, spec: base, ..AnalysisOptions::default() };
    let fixed = analyze(&system.fault_tree, &comps, &lethal, &options).unwrap();
    assert_eq!(fixed.report.presift_robdd_size, None);

    let sifted_options = AnalysisOptions { spec: base.with_sifting(120), ..options };
    let sifted = analyze(&system.fault_tree, &comps, &lethal, &sifted_options).unwrap();
    let presift = sifted.report.presift_robdd_size.expect("sifted run records the pre-sift size");
    assert_eq!(presift, fixed.report.coded_robdd_size, "same static compile as the base run");
    assert!(
        sifted.report.coded_robdd_size < presift,
        "sifting must shrink the wv/ml coded ROBDD ({presift} -> {})",
        sifted.report.coded_robdd_size
    );
    assert!(
        (sifted.report.yield_lower_bound - fixed.report.yield_lower_bound).abs() < 1e-12,
        "reordering is a representation change, never a semantic one"
    );
    // On this instance sifting recovers exactly the weight-heuristic order
    // quality (the Table-4 anchor sizes).
    let heuristic = analyze(
        &system.fault_tree,
        &comps,
        &lethal,
        &AnalysisOptions { spec: OrderingSpec::paper_default(), ..options },
    )
    .unwrap();
    assert_eq!(sifted.report.coded_robdd_size, heuristic.report.coded_robdd_size);
    assert_eq!(sifted.report.romdd_size, heuristic.report.romdd_size);
    // The kernel reports its collections through the same stats plumbing.
    assert!(sifted.report.robdd_stats.gc_runs >= 1);
    assert!(sifted.report.robdd_stats.gc_reclaimed > 0);
    assert_eq!(fixed.report.robdd_stats.gc_runs, 0, "static runs never collect");
}

#[test]
fn pipeline_sweep_agrees_with_independent_analyses() {
    let system = esen(4, 1);
    let comps = system.component_probabilities(1.0).unwrap();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap().thinned(comps.lethality()).unwrap();
    let base = AnalysisOptions::default();
    let epsilons = [1e-2, 1e-3, 1e-4];
    let mut pipeline = Pipeline::new(&system.fault_tree, &comps).unwrap();
    let swept = pipeline.sweep_epsilons(&lethal, &epsilons, &base).unwrap();
    assert_eq!(pipeline.compiled_models(), 1, "the ε sweep must compile exactly once");
    for (report, &epsilon) in swept.iter().zip(&epsilons) {
        let exact =
            analyze(&system.fault_tree, &comps, &lethal, &AnalysisOptions { epsilon, ..base })
                .unwrap();
        assert_eq!(report.truncation, exact.report.truncation, "ε={epsilon}");
        assert!(
            (report.yield_lower_bound - exact.report.yield_lower_bound).abs() < 1e-12,
            "ε={epsilon}: swept {} vs independent {}",
            report.yield_lower_bound,
            exact.report.yield_lower_bound
        );
    }
}

#[test]
fn sweep_points_with_mixed_options_reuse_models() {
    let system = esen(4, 1);
    let comps = system.component_probabilities(1.0).unwrap();
    let lethal_1 = NegativeBinomial::new(0.5, 4.0).unwrap().thinned(comps.lethality()).unwrap();
    let lethal_2 = NegativeBinomial::new(1.0, 4.0).unwrap().thinned(comps.lethality()).unwrap();
    let base = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
    let mut pipeline = Pipeline::new(&system.fault_tree, &comps).unwrap();
    let reports = pipeline
        .sweep([
            SweepPoint { lethal: &lethal_1, options: base },
            SweepPoint { lethal: &lethal_2, options: base },
            SweepPoint { lethal: &lethal_2, options: AnalysisOptions { epsilon: 1e-2, ..base } },
        ])
        .unwrap();
    assert_eq!(reports.len(), 3);
    assert_eq!(pipeline.compiled_models(), 1);
    let max_m = reports.iter().map(|r| r.truncation).max().unwrap();
    assert!(reports.iter().all(|r| r.compiled_truncation == max_m));
    assert!(reports[0].yield_lower_bound > reports[1].yield_lower_bound);
}
