//! Bit-level equivalence of the incremental what-if path.
//!
//! [`Pipeline::sweep_deltas`] promises that every delta result is
//! **bit-identical** to a from-scratch compile of the materialized
//! variant: swap-only deltas re-evaluate the resident ROMDD with
//! re-derived conditionals, structural deltas rebuild only the affected
//! function inside the retained ROBDD manager — but the numbers (and
//! the ROMDD node counts) must be indistinguishable from paying a full
//! compilation per variant. These tests enforce that promise across
//! randomized families under every kernel mode (sequential/parallel
//! compilation × complement edges on/off), and pin the headline speedup
//! on the bench harness's ESEN4x1 what-if family.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use soc_yield::benchmarks::esen;
use soc_yield::defect::NegativeBinomial;
use soc_yield::faulttree::Netlist;
use soc_yield::{
    AnalysisOptions, CompileOptions, ComponentProbabilities, Pipeline, SystemDelta, YieldReport,
};

/// The four kernel modes every family is checked under.
const MODES: [(usize, bool); 4] = [(1, true), (1, false), (4, true), (4, false)];

fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A small random fault tree over `c` components (the same generator
/// shape as `complement_equivalence.rs`, inverters included so
/// complement edges actually appear in the diagrams).
fn build_tree(c: usize, gates: usize, state: &mut u64) -> Netlist {
    let mut nl = Netlist::new();
    let mut nodes: Vec<_> = (0..c).map(|i| nl.input(format!("x{i}"))).collect();
    for _ in 0..gates {
        let arity = 2 + (next(state) % 2) as usize;
        let fanin: Vec<_> =
            (0..arity).map(|_| nodes[(next(state) % nodes.len() as u64) as usize]).collect();
        let gate = match next(state) % 3 {
            0 => nl.and(fanin),
            1 => nl.or(fanin),
            _ => {
                let inner = nl.or(fanin);
                nl.not(inner)
            }
        };
        nodes.push(gate);
    }
    let out = *nodes.last().expect("non-empty");
    nl.set_output(out);
    nl
}

/// Random per-component raw probabilities with total mass well inside
/// `(0, 1]`, so lowering any `P_i` (the only kind of override the
/// families use) keeps the model valid.
fn random_components(c: usize, state: &mut u64) -> ComponentProbabilities {
    let raw: Vec<f64> = (0..c).map(|_| (next(state) % 1000 + 1) as f64 / 1000.0).collect();
    let total: f64 = raw.iter().sum();
    let scaled: Vec<f64> = raw.iter().map(|p| p / (total * 1.25)).collect();
    ComponentProbabilities::new(scaled).expect("normalized mass is valid")
}

fn assert_bit_identical(delta: &YieldReport, scratch: &YieldReport, context: &str) {
    assert_eq!(
        delta.yield_lower_bound.to_bits(),
        scratch.yield_lower_bound.to_bits(),
        "{}: yield must be bit-identical (delta {} vs scratch {})",
        context,
        delta.yield_lower_bound,
        scratch.yield_lower_bound
    );
    assert_eq!(
        delta.error_bound.to_bits(),
        scratch.error_bound.to_bits(),
        "{}: error bound",
        context
    );
    assert_eq!(delta.truncation, scratch.truncation, "{}: truncation", context);
    assert_eq!(
        delta.compiled_truncation, scratch.compiled_truncation,
        "{}: compiled truncation",
        context
    );
    assert_eq!(delta.romdd_size, scratch.romdd_size, "{}: ROMDD size", context);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A randomized family — the unchanged base, a halved component, an
    /// immune component, and a structural fault-tree swap — evaluated
    /// incrementally must match per-variant from-scratch pipelines bit
    /// for bit, under all four kernel modes.
    #[test]
    fn random_delta_families_match_from_scratch_compiles(
        c in 2usize..=5,
        gates in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let base_tree = build_tree(c, gates, &mut state);
        let variant_tree = build_tree(c, gates, &mut state);
        let components = random_components(c, &mut state);
        let lethal = NegativeBinomial::new(1.0, 4.0).expect("valid parameters");
        let deltas = vec![
            SystemDelta::named("base"),
            SystemDelta::named("half")
                .with_component_probability(0, components.raw(0) / 2.0),
            SystemDelta::named("immune").with_component_probability(c - 1, 0.0),
            SystemDelta::named("swap").with_fault_tree(variant_tree),
        ];
        let analysis = AnalysisOptions { epsilon: 1e-2, ..AnalysisOptions::default() };
        for (compile_threads, complement) in MODES {
            let options = CompileOptions::default()
                .with_compile_threads(compile_threads)
                .with_complement_edges(complement);
            let mut pipeline = Pipeline::with_options(&base_tree, &components, options)
                .expect("valid base system");
            let family = pipeline
                .sweep_deltas(&lethal, &analysis, &deltas)
                .expect("delta sweep succeeds");
            prop_assert_eq!(family.len(), deltas.len());
            for (delta, report) in deltas.iter().zip(&family) {
                let (tree, comps) =
                    delta.materialize(&base_tree, &components).expect("consistent delta");
                let mut scratch = Pipeline::with_options(&tree, &comps, options)
                    .expect("valid materialized variant");
                let fresh = scratch.evaluate(&lethal, &analysis).expect("scratch evaluation");
                let context = format!(
                    "Δ{} (compile-threads {compile_threads}, complement {complement})",
                    delta.name()
                );
                assert_bit_identical(report, &fresh, &context);
            }
        }
    }
}

/// The bench harness's pinned what-if family: ESEN4x1 plus eight
/// one-component variants. One shared compilation must answer all nine
/// points, bit-identical to nine from-scratch compilations — and at
/// least 5× faster, which is the headline the README and
/// `BENCH_4_delta.json` report.
#[test]
fn pinned_esen_family_is_5x_faster_than_recompiling_and_bit_identical() {
    let system = esen(4, 1);
    let components = system.component_probabilities(1.0).expect("valid weights");
    let lethal = NegativeBinomial::new(1.0, 4.0).expect("valid parameters");
    let analysis = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };

    let mut deltas = vec![SystemDelta::named("base")];
    for i in 0..4 {
        deltas.push(
            SystemDelta::named(format!("x{i}-half"))
                .with_component_probability(i, components.raw(i) / 2.0),
        );
    }
    for i in 4..8 {
        deltas.push(SystemDelta::named(format!("x{i}-immune")).with_component_probability(i, 0.0));
    }

    // Untimed warmup compile: the first compilation of the process pays
    // one-off allocator/page-fault costs that would be charged to the
    // incremental side only and mask the real ratio.
    Pipeline::new(&system.fault_tree, &components)
        .expect("valid base system")
        .evaluate(&lethal, &analysis)
        .expect("warmup evaluation");

    // Timings are min-of-trials: the test binary shares the machine with
    // the rest of the suite, and a single scheduling hiccup inside the
    // short incremental run would otherwise dominate the ratio. The
    // minimum approximates the unloaded cost of each path.
    let mut incremental = Duration::MAX;
    let mut family = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        let mut pipeline =
            Pipeline::new(&system.fault_tree, &components).expect("valid base system");
        family = pipeline.sweep_deltas(&lethal, &analysis, &deltas).expect("delta sweep succeeds");
        incremental = incremental.min(start.elapsed());
        assert_eq!(family.len(), deltas.len());
        assert_eq!(
            pipeline.compiles(),
            1,
            "a swap-only family must be served by exactly one compilation"
        );
    }

    let mut scratch = Duration::MAX;
    for trial in 0..2 {
        let mut total = Duration::ZERO;
        for (delta, report) in deltas.iter().zip(&family) {
            let start = Instant::now();
            let (tree, comps) =
                delta.materialize(&system.fault_tree, &components).expect("consistent delta");
            let mut fresh_pipeline = Pipeline::new(&tree, &comps).expect("valid variant");
            let fresh = fresh_pipeline.evaluate(&lethal, &analysis).expect("scratch evaluation");
            total += start.elapsed();
            if trial > 0 {
                continue;
            }
            assert_eq!(
                report.yield_lower_bound.to_bits(),
                fresh.yield_lower_bound.to_bits(),
                "Δ{}: yield must be bit-identical (delta {} vs scratch {})",
                delta.name(),
                report.yield_lower_bound,
                fresh.yield_lower_bound
            );
            assert_eq!(
                report.error_bound.to_bits(),
                fresh.error_bound.to_bits(),
                "Δ{}",
                delta.name()
            );
            assert_eq!(report.truncation, fresh.truncation, "Δ{}", delta.name());
            assert_eq!(report.romdd_size, fresh.romdd_size, "Δ{}", delta.name());
        }
        scratch = scratch.min(total);
    }

    // Nine full compilations against one: the ISSUE pins ≥ 5× (observed
    // ratios sit near the 9× chunk count; the slack absorbs scheduler
    // noise on loaded CI runners).
    assert!(
        scratch >= incremental * 5,
        "what-if speedup below 5×: incremental {:?} vs scratch {:?}",
        incremental,
        scratch
    );
}
