//! Cross-validation of the combinatorial method against independent
//! oracles on the paper's benchmark generators and on randomly generated
//! fault trees.

use soc_yield::benchmarks::{esen, ms};
use soc_yield::core::exact::exact_yield;
use soc_yield::defect::truncation::truncate_at;
use soc_yield::defect::{ComponentProbabilities, NegativeBinomial};
use soc_yield::sim::{MonteCarloYield, SimulationOptions};
use soc_yield::{
    analyze, analyze_direct, AnalysisOptions, ConversionAlgorithm, GroupOrdering, MvOrdering,
    Netlist, OrderingSpec,
};

fn nb(lambda: f64) -> NegativeBinomial {
    NegativeBinomial::new(lambda, 4.0).unwrap()
}

#[test]
fn ms2_matches_exact_baseline_and_simulation() {
    let system = ms(2);
    let components = system.component_probabilities(1.0).unwrap();
    let lethal = nb(1.0).thinned(components.lethality()).unwrap();
    let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
    let analysis = analyze(&system.fault_tree, &components, &lethal, &options).unwrap();

    // Exact subset-lattice oracle (18 components is still tractable).
    let truncation = truncate_at(&lethal, analysis.report.truncation).unwrap();
    let exact = exact_yield(&system.fault_tree, &components, &truncation).unwrap();
    assert!(
        (analysis.report.yield_lower_bound - exact).abs() < 1e-9,
        "combinatorial {} vs exact {exact}",
        analysis.report.yield_lower_bound
    );

    // Monte-Carlo oracle within a few standard errors plus the truncation error.
    let sim = MonteCarloYield::new(
        &system.fault_tree,
        &components,
        &lethal,
        SimulationOptions::default(),
    )
    .unwrap();
    let estimate = sim.run(150_000, 11);
    let slack = 4.0 * estimate.standard_error + analysis.report.error_bound + 1e-3;
    assert!((estimate.yield_estimate - analysis.report.yield_lower_bound).abs() < slack);
}

#[test]
fn esen4x1_all_ordering_specs_agree_on_the_yield() {
    let system = esen(4, 1);
    let components = system.component_probabilities(1.0).unwrap();
    let lethal = nb(1.0).thinned(components.lethality()).unwrap();
    let mut yields: Vec<f64> = Vec::new();
    for mv in MvOrdering::ALL {
        for group in [GroupOrdering::MsbFirst, GroupOrdering::LsbFirst] {
            let spec = OrderingSpec::new(mv, group).unwrap();
            let options = AnalysisOptions { epsilon: 1e-3, spec, ..AnalysisOptions::default() };
            let analysis = analyze(&system.fault_tree, &components, &lethal, &options).unwrap();
            yields.push(analysis.report.yield_lower_bound);
        }
    }
    for y in &yields {
        assert!((y - yields[0]).abs() < 1e-10);
    }
}

#[test]
fn esen4x2_layered_and_top_down_conversions_agree() {
    let system = esen(4, 2);
    let components = system.component_probabilities(1.0).unwrap();
    let lethal = nb(1.0).thinned(components.lethality()).unwrap();
    let base = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
    let top_down = analyze(&system.fault_tree, &components, &lethal, &base).unwrap();
    let layered = analyze(
        &system.fault_tree,
        &components,
        &lethal,
        &AnalysisOptions { conversion: ConversionAlgorithm::Layered, ..base },
    )
    .unwrap();
    assert_eq!(top_down.report.romdd_size, layered.report.romdd_size);
    assert!((top_down.report.yield_lower_bound - layered.report.yield_lower_bound).abs() < 1e-12);
}

#[test]
fn ms2_direct_romdd_construction_agrees_with_coded_robdd_route() {
    let system = ms(2);
    let components = system.component_probabilities(1.0).unwrap();
    let lethal = nb(1.0).thinned(components.lethality()).unwrap();
    let options = AnalysisOptions { epsilon: 1e-2, ..AnalysisOptions::default() };
    let coded = analyze(&system.fault_tree, &components, &lethal, &options).unwrap();
    let direct = analyze_direct(&system.fault_tree, &components, &lethal, &options).unwrap();
    assert_eq!(coded.report.romdd_size, direct.report.romdd_size);
    assert!((coded.report.yield_lower_bound - direct.report.yield_lower_bound).abs() < 1e-12);
}

/// Deterministic pseudo-random fault-tree generator (AND/OR/NOT/AtLeast DAG).
fn random_fault_tree(components: usize, gates: usize, seed: u64) -> Netlist {
    let mut nl = Netlist::new();
    let mut nodes: Vec<_> = (0..components).map(|i| nl.input(format!("x{i}"))).collect();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..gates {
        let arity = 2 + (next() % 3) as usize;
        let fanin: Vec<_> =
            (0..arity).map(|_| nodes[(next() % nodes.len() as u64) as usize]).collect();
        let gate = match next() % 4 {
            0 => nl.and(fanin),
            1 => nl.or(fanin),
            2 => {
                let inner = nl.or(fanin);
                nl.not(inner)
            }
            _ => nl.at_least(2, fanin),
        };
        nodes.push(gate);
    }
    let output = *nodes.last().expect("at least one node exists");
    nl.set_output(output);
    nl
}

#[test]
fn random_small_systems_match_the_exact_baseline() {
    for seed in 0..8u64 {
        let c = 4 + (seed as usize % 4);
        let fault_tree = random_fault_tree(c, 6, seed + 1);
        let weights: Vec<f64> = (0..c).map(|i| 1.0 + (i % 3) as f64).collect();
        let components = ComponentProbabilities::from_weights(&weights, 1.0).unwrap();
        let lethal = nb(1.0);
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let analysis = analyze(&fault_tree, &components, &lethal, &options).unwrap();
        let truncation = truncate_at(&lethal, analysis.report.truncation).unwrap();
        let exact = exact_yield(&fault_tree, &components, &truncation).unwrap();
        assert!(
            (analysis.report.yield_lower_bound - exact).abs() < 1e-9,
            "seed {seed}: combinatorial {} vs exact {exact}",
            analysis.report.yield_lower_bound
        );
    }
}

#[test]
fn yield_decreases_with_defect_density_and_system_size() {
    // Monotonicity sanity checks that mirror the paper's qualitative findings.
    let system = ms(2);
    let components = system.component_probabilities(1.0).unwrap();
    let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
    let y1 = analyze(&system.fault_tree, &components, &nb(1.0), &options)
        .unwrap()
        .report
        .yield_lower_bound;
    let y2 = analyze(&system.fault_tree, &components, &nb(2.0), &options)
        .unwrap()
        .report
        .yield_lower_bound;
    assert!(y2 < y1, "higher defect density must lower the yield");

    // A larger ESEN instance (more single points of failure per port) yields less
    // than a smaller one at the same defect density.
    let small = esen(4, 1);
    let small_probs = small.component_probabilities(1.0).unwrap();
    let ys = analyze(&small.fault_tree, &small_probs, &nb(1.0), &options)
        .unwrap()
        .report
        .yield_lower_bound;
    let large = esen(8, 1);
    let large_probs = large.component_probabilities(1.0).unwrap();
    let yl = analyze(&large.fault_tree, &large_probs, &nb(1.0), &options)
        .unwrap()
        .report
        .yield_lower_bound;
    assert!(yl < ys, "larger network should yield less ({yl} vs {ys})");
}
