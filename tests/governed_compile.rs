//! Abort-path and degradation-ladder tests for resource-governed
//! compilation.
//!
//! The fail-point proptests inject deterministic governor trips
//! ([`GovernorLimits::fail_after`]) at random materialisation counts and
//! assert the cleanup contract of `socy_dd::govern`: the manager
//! survives the abort, garbage collection reports no leaked nodes, and
//! an immediate recompile on the surviving manager is bit-identical to
//! an undisturbed build — across compile-thread counts and both
//! complement-edge modes.
//!
//! The ladder tests drive [`Pipeline::evaluate_governed`] through every
//! rung of a [`DegradeLadder`] by measuring, per option set, the minimal
//! node budget the exact method needs, then pinching the budget into the
//! window where the original request fails but the degraded rung fits.
//!
//! Under `SOCY_TEST_FAILPOINT=1` (the CI smoke step) the proptests run a
//! denser grid of injected abort points.

use proptest::prelude::*;

use soc_yield::bdd::BddManager;
use soc_yield::core::{CoreError, DegradeLadder, DegradeStep, Fidelity};
use soc_yield::dd::{catch_governed, CancelToken, DdError, Governor, GovernorLimits};
use soc_yield::defect::{ComponentProbabilities, NegativeBinomial};
use soc_yield::{
    AnalysisOptions, CompileOptions, GroupOrdering, MvOrdering, Netlist, OrderingSpec, Pipeline,
};

/// Denser fail-point grid under `SOCY_TEST_FAILPOINT=1`.
fn failpoint_cases(default: u32, dense: u32) -> ProptestConfig {
    let dense_mode = std::env::var("SOCY_TEST_FAILPOINT").is_ok_and(|v| v == "1");
    ProptestConfig::with_cases(if dense_mode { dense } else { default })
}

/// Strategy for a small random fault tree over `c` components (same
/// construction as `tests/property_based.rs`).
fn arb_fault_tree(max_components: usize) -> impl Strategy<Value = (Netlist, usize)> {
    (2..=max_components, 1usize..6, any::<u64>()).prop_map(|(c, gates, seed)| {
        let mut nl = Netlist::new();
        let mut nodes: Vec<_> = (0..c).map(|i| nl.input(format!("x{i}"))).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..gates {
            let arity = 2 + (next() % 2) as usize;
            let fanin: Vec<_> =
                (0..arity).map(|_| nodes[(next() % nodes.len() as u64) as usize]).collect();
            let gate = match next() % 3 {
                0 => nl.and(fanin),
                1 => nl.or(fanin),
                _ => {
                    let inner = nl.or(fanin);
                    nl.not(inner)
                }
            };
            nodes.push(gate);
        }
        let out = *nodes.last().expect("non-empty");
        nl.set_output(out);
        (nl, c)
    })
}

fn manager(levels: usize, compile_threads: usize, complement: bool) -> BddManager {
    let mut mgr = BddManager::new(levels);
    mgr.set_compile_threads(compile_threads);
    mgr.set_complement(complement);
    mgr
}

proptest! {
    #![proptest_config(failpoint_cases(32, 128))]

    /// A governor trip injected at a random materialisation count leaves
    /// the manager consistent: no panic escapes, GC reclaims every node
    /// of the aborted build, and recompiling on the surviving manager
    /// reproduces the undisturbed build bit for bit.
    #[test]
    fn aborted_builds_leave_the_manager_consistent_and_recompilable(
        (netlist, c) in arb_fault_tree(6),
        cut in any::<u64>(),
        four_threads in any::<bool>(),
        complement in any::<bool>(),
    ) {
        let threads = if four_threads { 4 } else { 1 };
        let order: Vec<usize> = (0..c).collect();
        let probs: Vec<f64> = (0..c).map(|i| (i as f64 + 1.0) / (c as f64 + 2.0)).collect();

        // Reference: an undisturbed build on a fresh manager.
        let mut reference = manager(c, threads, complement);
        let ref_build = reference.build_netlist(&netlist, &order);
        let ref_prob = reference.probability(ref_build.root, &probs);

        // Meter the build with a pure counting governor (all limits zero
        // never trip) to learn how many materialisations it costs.
        let mut counting = manager(c, threads, complement);
        let meter = Governor::new(GovernorLimits::default(), None);
        counting.set_governor(Some(meter.clone()));
        let _ = counting.build_netlist(&netlist, &order);
        let total = meter.allocated();
        prop_assert!(total > 0, "building {c} variables must materialise nodes");

        // Victim: the same build with a fail point at a random 1..=total
        // materialisation.
        let fail_after = 1 + cut % total;
        let mut victim = manager(c, threads, complement);
        let baseline_live = victim.stats().live_nodes;
        let governor =
            Governor::new(GovernorLimits { fail_after, ..GovernorLimits::default() }, None);
        victim.set_governor(Some(governor.clone()));
        let aborted =
            catch_governed(Some(&governor), || victim.build_netlist(&netlist, &order));

        match aborted {
            // Parallel builds may materialise fewer nodes than the
            // metered run (session shards deduplicate differently), so a
            // late fail point can let the build finish; it must then
            // equal the reference.
            Ok(build) => {
                prop_assert_eq!(build.size, ref_build.size);
                prop_assert_eq!(
                    victim.probability(build.root, &probs).to_bits(),
                    ref_prob.to_bits()
                );
            }
            Err(err) => {
                prop_assert_eq!(
                    err,
                    DdError::BudgetExceeded { budget: fail_after, allocated: fail_after },
                    "fail point must trip as a budget error at exactly its count"
                );
                // Cleanup contract: disarm, collect, and nothing leaks.
                victim.set_governor(None);
                let gc = victim.gc();
                prop_assert_eq!(
                    gc.live_nodes, baseline_live,
                    "aborted build must leave no live nodes behind"
                );
                // Immediate recompile on the survivor is bit-identical.
                let rebuilt = victim.build_netlist(&netlist, &order);
                prop_assert_eq!(rebuilt.size, ref_build.size);
                for row in 0..(1u32 << c) {
                    let a: Vec<bool> = (0..c).map(|i| (row >> i) & 1 == 1).collect();
                    prop_assert_eq!(
                        victim.eval(rebuilt.root, &a),
                        reference.eval(ref_build.root, &a),
                        "assignment {:?}", a
                    );
                }
                prop_assert_eq!(
                    victim.probability(rebuilt.root, &probs).to_bits(),
                    ref_prob.to_bits(),
                    "recompiled probability must be bit-identical"
                );
            }
        }
    }

    /// The same contract end to end through the yield pipeline: an
    /// evaluation aborted by a fail point reports a typed resource error,
    /// and the same pipeline value evaluates bit-identically to a fresh
    /// one once the fail point is removed.
    #[test]
    fn aborted_pipeline_evaluations_recover_bit_identically(
        (netlist, c) in arb_fault_tree(5),
        cut in 1u64..400,
        four_threads in any::<bool>(),
        complement in any::<bool>(),
    ) {
        let threads = if four_threads { 4 } else { 1 };
        let weights: Vec<f64> = (0..c).map(|i| 1.0 + i as f64).collect();
        let components = ComponentProbabilities::from_weights(&weights, 1.0).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let analysis = AnalysisOptions::default();
        let kernel = CompileOptions::new()
            .with_compile_threads(threads)
            .with_complement_edges(complement);

        let mut reference =
            Pipeline::with_options(&netlist, &components, kernel).unwrap();
        let expect = reference.evaluate(&lethal, &analysis).unwrap();

        let mut governed =
            Pipeline::with_options(&netlist, &components, kernel.with_fail_after(cut)).unwrap();
        match governed.evaluate(&lethal, &analysis) {
            // The fail point sat beyond what this compilation allocates
            // (timings are wall-clock, so compare the stable fields).
            Ok(report) => {
                prop_assert_eq!(
                    report.yield_lower_bound.to_bits(),
                    expect.yield_lower_bound.to_bits()
                );
                prop_assert_eq!(report.romdd_size, expect.romdd_size);
            }
            Err(CoreError::Resource(DdError::BudgetExceeded { budget, .. })) => {
                prop_assert_eq!(budget, cut);
                // Same pipeline, fail point disarmed: bit-identical.
                governed.set_options(kernel);
                let recovered = governed.evaluate(&lethal, &analysis).unwrap();
                prop_assert_eq!(
                    recovered.yield_lower_bound.to_bits(),
                    expect.yield_lower_bound.to_bits()
                );
                prop_assert_eq!(recovered.error_bound.to_bits(), expect.error_bound.to_bits());
                prop_assert_eq!(recovered.romdd_size, expect.romdd_size);
                prop_assert_eq!(recovered.coded_robdd_size, expect.coded_robdd_size);
                prop_assert_eq!(recovered.truncation, expect.truncation);
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
    }
}

// ---- degradation-ladder tests ---------------------------------------------

/// F = x1·x2 + x3 (Figure 2 of the paper) with moderately spread
/// probabilities — small enough that budget scans stay cheap, large
/// enough that the truncation point still drives diagram sizes.
fn figure2() -> (Netlist, ComponentProbabilities) {
    let mut nl = Netlist::new();
    let x1 = nl.input("x1");
    let x2 = nl.input("x2");
    let x3 = nl.input("x3");
    let a = nl.and([x1, x2]);
    let f = nl.or([a, x3]);
    nl.set_output(f);
    (nl, ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap())
}

/// Brackets the minimal node budget under which `evaluate` succeeds for
/// `options` by doubling + binary search to within `tol` nodes: returns
/// `(fails, fits)` with `fits - fails <= tol` (budget 0 means unlimited,
/// so the known-failing floor starts at 1). Failing probes trip early
/// and are cheap; `tol` bounds how many full compiles the search pays.
fn budget_bracket(
    netlist: &Netlist,
    components: &ComponentProbabilities,
    lethal: &NegativeBinomial,
    options: &AnalysisOptions,
    tol: usize,
) -> (usize, usize) {
    let fits = |budget: usize| -> bool {
        let kernel = CompileOptions::new().with_node_budget(budget);
        let mut pipeline = Pipeline::with_options(netlist, components, kernel).unwrap();
        match pipeline.evaluate(lethal, options) {
            Ok(_) => true,
            Err(CoreError::Resource(_)) => false,
            Err(e) => panic!("budget scan hit a non-resource error: {e}"),
        }
    };
    let mut hi = 64;
    while !fits(hi) {
        hi *= 2;
        assert!(hi < 1 << 28, "budget scan did not converge");
    }
    let mut lo = 1;
    while hi - lo > tol {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (lo, hi)
}

fn min_budget(
    netlist: &Netlist,
    components: &ComponentProbabilities,
    lethal: &NegativeBinomial,
    options: &AnalysisOptions,
) -> usize {
    budget_bracket(netlist, components, lethal, options, 1).1
}

/// Pins the budget just below what the requested options need (so the
/// original attempt trips) and asserts `evaluate_governed` answers
/// through exactly `step`, bit-identical to an ungoverned run of the
/// degraded options — which also proves the rung fits where the exact
/// method does not. `tol` trades search precision for scan time; it
/// must stay below the rung's budget advantage.
fn assert_rung_reached(
    netlist: &Netlist,
    components: &ComponentProbabilities,
    lethal: &NegativeBinomial,
    base: &AnalysisOptions,
    step: DegradeStep,
    tol: usize,
) {
    let degraded_options = step.apply(base);
    let (budget, _) = budget_bracket(netlist, components, lethal, base, tol);
    let kernel = CompileOptions::new().with_node_budget(budget);
    let ladder = DegradeLadder { steps: vec![step], ..DegradeLadder::default() };
    let mut governed = Pipeline::with_options(netlist, components, kernel).unwrap();
    let report = governed.evaluate_governed(lethal, base, &ladder).unwrap();
    assert_eq!(report.fidelity, Fidelity::Degraded { step }, "rung {step:?} must answer");

    let mut ungoverned = Pipeline::new(netlist, components).unwrap();
    let expect = ungoverned.evaluate(lethal, &degraded_options).unwrap();
    assert_eq!(report.yield_lower_bound.to_bits(), expect.yield_lower_bound.to_bits());
    assert_eq!(report.error_bound.to_bits(), expect.error_bound.to_bits());
    assert_eq!(report.romdd_size, expect.romdd_size);
}

#[test]
fn coarsen_epsilon_rung_is_reached_in_its_budget_window() {
    let (netlist, components) = figure2();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
    let base = AnalysisOptions { epsilon: 1e-9, ..AnalysisOptions::default() };
    assert_rung_reached(
        &netlist,
        &components,
        &lethal,
        &base,
        DegradeStep::CoarsenEpsilon { factor: 1e6 },
        1,
    );
}

#[test]
fn reduce_truncation_rung_is_reached_in_its_budget_window() {
    let (netlist, components) = figure2();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
    let base = AnalysisOptions { epsilon: 1e-9, ..AnalysisOptions::default() };
    assert_rung_reached(
        &netlist,
        &components,
        &lethal,
        &base,
        DegradeStep::ReduceTruncation { max: 1 },
        1,
    );
}

#[test]
fn sift_rung_is_reached_in_its_budget_window() {
    // Under the reversed `vrw` static order the coded ROBDD converts
    // into a needlessly large ROMDD (1672 vs 199 nodes sifted on MS1);
    // sifting before conversion shrinks the allocation footprint by
    // ~1.5k nodes, opening the budget window the rung needs. The coarse
    // search tolerance (64 nodes, well under the window) keeps the
    // number of full compiles the scan pays small.
    let system = soc_yield::benchmarks::ms(1);
    let components = system.component_probabilities(1.0).unwrap();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
    let base = AnalysisOptions {
        epsilon: 1e-2,
        spec: OrderingSpec::new(MvOrdering::Vrw, GroupOrdering::MsbFirst).unwrap(),
        ..AnalysisOptions::default()
    };
    assert_rung_reached(
        &system.fault_tree,
        &components,
        &lethal,
        &base,
        DegradeStep::Sift { max_growth: 120 },
        64,
    );
}

#[test]
fn ladder_rungs_are_tried_in_order_and_skipped_on_failure() {
    let (netlist, components) = figure2();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
    let base = AnalysisOptions { epsilon: 1e-9, ..AnalysisOptions::default() };
    let first = DegradeStep::CoarsenEpsilon { factor: 1e3 };
    let second = DegradeStep::ReduceTruncation { max: 1 };
    let need_exact = min_budget(&netlist, &components, &lethal, &base);
    let need_first = min_budget(&netlist, &components, &lethal, &first.apply(&base));
    let need_second = min_budget(&netlist, &components, &lethal, &second.apply(&base));
    assert!(
        need_second < need_first && need_first < need_exact,
        "rung costs must be strictly ordered to pinch budgets between them \
         (exact {need_exact}, mild {need_first}, drastic {need_second})"
    );

    let ladder = DegradeLadder { steps: vec![first, second], ..DegradeLadder::default() };
    // Budget below the exact method's need: the mild first rung answers.
    let kernel = CompileOptions::new().with_node_budget(need_exact - 1);
    let mut pipeline = Pipeline::with_options(&netlist, &components, kernel).unwrap();
    let report = pipeline.evaluate_governed(&lethal, &base, &ladder).unwrap();
    assert_eq!(report.fidelity, Fidelity::Degraded { step: first });

    // Pinched budget: the first rung trips too, the second answers.
    let kernel = CompileOptions::new().with_node_budget(need_first - 1);
    let mut pipeline = Pipeline::with_options(&netlist, &components, kernel).unwrap();
    let report = pipeline.evaluate_governed(&lethal, &base, &ladder).unwrap();
    assert_eq!(report.fidelity, Fidelity::Degraded { step: second });
}

#[test]
fn exhausted_ladders_fall_back_to_bounds_that_bracket_the_exact_yield() {
    let (netlist, components) = figure2();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
    let options = AnalysisOptions::default();

    let mut exact = Pipeline::new(&netlist, &components).unwrap();
    let truth = exact.evaluate(&lethal, &options).unwrap();
    assert!(truth.fidelity.is_exact());

    // A one-node budget fails the request and every exact-method rung.
    let kernel = CompileOptions::new().with_node_budget(1);
    let mut governed = Pipeline::with_options(&netlist, &components, kernel).unwrap();
    let ladder = DegradeLadder::default();
    let report = governed.evaluate_governed(&lethal, &options, &ladder).unwrap();
    let Fidelity::Bounds { lower, upper } = report.fidelity else {
        panic!("expected Monte-Carlo bounds, got {:?}", report.fidelity);
    };
    assert_eq!(report.yield_lower_bound, lower);
    assert_eq!(report.error_bound, upper - lower);
    assert_eq!(report.romdd_size, 0, "no diagram is built on the bounds rung");
    // The exact yield lies in [truth.yield_lower_bound, + error_bound];
    // a z = 3 interval over 20k samples must bracket it.
    assert!(lower <= truth.yield_lower_bound + truth.error_bound, "lower bound too high");
    assert!(upper >= truth.yield_lower_bound, "upper bound too low");

    // Determinism: a second governed run reproduces the bounds bit for bit.
    let kernel = CompileOptions::new().with_node_budget(1);
    let mut again = Pipeline::with_options(&netlist, &components, kernel).unwrap();
    let replay = again.evaluate_governed(&lethal, &options, &ladder).unwrap();
    assert_eq!(replay.yield_lower_bound.to_bits(), report.yield_lower_bound.to_bits());
    assert_eq!(replay.error_bound.to_bits(), report.error_bound.to_bits());
}

#[test]
fn cancellation_is_never_degraded_around() {
    let (netlist, components) = figure2();
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
    let options = AnalysisOptions::default();
    let token = CancelToken::new();
    token.cancel();

    let mut pipeline = Pipeline::new(&netlist, &components).unwrap();
    pipeline.set_cancel_token(Some(token));
    let err = pipeline.evaluate_governed(&lethal, &options, &DegradeLadder::default()).unwrap_err();
    assert!(
        matches!(err, CoreError::Resource(DdError::Cancelled)),
        "a cancelled request must not fall down the ladder: {err}"
    );
}
