//! Property-based tests (proptest) over the core data structures and the
//! end-to-end pipeline invariants.

use proptest::prelude::*;

use soc_yield::bdd::BddManager;
use soc_yield::dd::kernel::DdKernel;
use soc_yield::defect::truncation::truncate_at;
use soc_yield::defect::{ComponentProbabilities, DefectDistribution, NegativeBinomial, Poisson};
use soc_yield::mdd::{CodedLayout, MddManager};
use soc_yield::{analyze, AnalysisOptions, Netlist};

/// Strategy for a small random fault tree over `c` components together with
/// a closure-free description we can evaluate independently.
fn arb_fault_tree(max_components: usize) -> impl Strategy<Value = (Netlist, usize)> {
    (2..=max_components, 1usize..6, any::<u64>()).prop_map(|(c, gates, seed)| {
        let mut nl = Netlist::new();
        let mut nodes: Vec<_> = (0..c).map(|i| nl.input(format!("x{i}"))).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..gates {
            let arity = 2 + (next() % 2) as usize;
            let fanin: Vec<_> =
                (0..arity).map(|_| nodes[(next() % nodes.len() as u64) as usize]).collect();
            let gate = match next() % 3 {
                0 => nl.and(fanin),
                1 => nl.or(fanin),
                _ => {
                    let inner = nl.or(fanin);
                    nl.not(inner)
                }
            };
            nodes.push(gate);
        }
        let out = *nodes.last().expect("non-empty");
        nl.set_output(out);
        (nl, c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The BDD of a random netlist agrees with direct netlist evaluation on
    /// random assignments, for any variable-level permutation.
    #[test]
    fn bdd_compilation_is_sound((netlist, c) in arb_fault_tree(6), assignments in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 6), 1..8)) {
        let mut mgr = BddManager::new(c);
        let order: Vec<usize> = (0..c).collect();
        let build = mgr.build_netlist(&netlist, &order);
        for assignment in assignments {
            let a = &assignment[..c];
            prop_assert_eq!(mgr.eval(build.root, a), netlist.eval_output(a));
        }
    }

    /// BDD probability evaluation equals exhaustive enumeration.
    #[test]
    fn bdd_probability_matches_enumeration((netlist, c) in arb_fault_tree(5), probs in proptest::collection::vec(0.0f64..1.0, 5)) {
        let mut mgr = BddManager::new(c);
        let order: Vec<usize> = (0..c).collect();
        let build = mgr.build_netlist(&netlist, &order);
        let p = &probs[..c];
        let mut expect = 0.0;
        for row in 0u32..(1 << c) {
            let a: Vec<bool> = (0..c).map(|i| (row >> i) & 1 == 1).collect();
            if netlist.eval_output(&a) {
                let mut w = 1.0;
                for i in 0..c {
                    w *= if a[i] { p[i] } else { 1.0 - p[i] };
                }
                expect += w;
            }
        }
        prop_assert!((mgr.probability(build.root, p) - expect).abs() < 1e-9);
    }

    /// The coded-ROBDD → ROMDD conversion preserves the function for random
    /// multi-valued functions represented by random netlist-built BDDs.
    #[test]
    fn conversion_preserves_functions(domains in proptest::collection::vec(2usize..5, 1..4), seed in any::<u64>()) {
        let layout = CodedLayout::binary_msb_first(&domains);
        // Random boolean function of the multi-valued variables via a hash of the assignment.
        let f = |a: &[usize]| -> bool {
            let mut h = seed | 1;
            for &v in a {
                h = h.wrapping_mul(0x100000001b3).wrapping_add(v as u64 + 1);
                h ^= h >> 29;
            }
            h.is_multiple_of(3)
        };
        // Build the coded ROBDD by summing minterms.
        let mut bdd = BddManager::new(layout.num_bits());
        let mut root = bdd.zero();
        let mut assignment = vec![0usize; domains.len()];
        'outer: loop {
            if f(&assignment) {
                let mut term = bdd.one();
                for (var, &value) in assignment.iter().enumerate() {
                    for (level, bit) in layout.assignment_for(var, value) {
                        let lit = bdd.literal(level, bit);
                        term = bdd.and(term, lit);
                    }
                }
                root = bdd.or(root, term);
            }
            let mut i = 0;
            loop {
                if i == domains.len() { break 'outer; }
                assignment[i] += 1;
                if assignment[i] < domains[i] { break; }
                assignment[i] = 0;
                i += 1;
            }
        }
        // Convert with both algorithms and compare against the reference.
        let mut mdd = MddManager::new(domains.clone());
        let top_down = mdd.from_coded_bdd(&bdd, root, &layout);
        let layered = mdd.from_coded_bdd_layered(&bdd, root, &layout);
        prop_assert_eq!(top_down, layered);
        let mut assignment = vec![0usize; domains.len()];
        'outer2: loop {
            prop_assert_eq!(mdd.eval(top_down, &assignment), f(&assignment));
            let mut i = 0;
            loop {
                if i == domains.len() { break 'outer2; }
                assignment[i] += 1;
                if assignment[i] < domains[i] { break; }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    /// Thinning a Poisson or negative binomial distribution preserves total
    /// mass and matches the closed form.
    #[test]
    fn thinning_is_consistent(lambda in 0.1f64..4.0, alpha in 0.2f64..8.0, p_l in 0.05f64..1.0) {
        let nb = NegativeBinomial::new(lambda, alpha).unwrap();
        let closed = nb.thinned(p_l).unwrap();
        let numeric = soc_yield::defect::lethal::thin_empirical(&nb, p_l, 10, 1e-12, 200_000).unwrap();
        for k in 0..10 {
            prop_assert!((closed.pmf(k) - numeric.pmf(k)).abs() < 1e-7);
        }
        let poisson = Poisson::new(lambda).unwrap();
        let thinned = poisson.thinned(p_l).unwrap();
        prop_assert!((thinned.lambda() - lambda * p_l).abs() < 1e-12);
    }

    /// The truncated yield is a valid probability, decreases (weakly) as the
    /// defect density grows, and respects the error bound.
    #[test]
    fn yield_is_well_behaved(lambda in 0.2f64..2.0, weights in proptest::collection::vec(0.1f64..3.0, 2..5)) {
        // 1-out-of-n system: fails only when every component fails.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..weights.len()).map(|i| nl.input(format!("x{i}"))).collect();
        let all = nl.and(inputs);
        nl.set_output(all);
        let comps = ComponentProbabilities::from_weights(&weights, 1.0).unwrap();
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let low = analyze(&nl, &comps, &NegativeBinomial::new(lambda, 4.0).unwrap(), &options).unwrap();
        let high = analyze(&nl, &comps, &NegativeBinomial::new(lambda * 1.5, 4.0).unwrap(), &options).unwrap();
        prop_assert!(low.report.yield_lower_bound >= 0.0 && low.report.yield_lower_bound <= 1.0);
        prop_assert!(low.report.error_bound <= 1e-3);
        prop_assert!(high.report.yield_lower_bound <= low.report.yield_lower_bound + 1e-3);
    }

    /// The shared unique table never holds two nodes with the same
    /// `(level, children)` key and never stores a redundant node, for any
    /// interleaving of `mk` calls over mixed-arity levels.
    #[test]
    fn unique_table_never_duplicates(domains in proptest::collection::vec(2usize..5, 1..5), seed in any::<u64>()) {
        let mut dd = DdKernel::new(domains.iter().map(|&d| d as u32).collect());
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Build bottom-up so children always test strictly lower levels;
        // `pool` holds the nodes usable as children of the current level.
        let mut pool: Vec<u32> = vec![0, 1];
        for level in (0..domains.len()).rev() {
            let mut created = Vec::new();
            for _ in 0..12 {
                let children: Vec<u32> = (0..domains[level])
                    .map(|_| pool[(next() % pool.len() as u64) as usize])
                    .collect();
                let node = dd.mk(level as u32, &children);
                // Re-making the same key must return the identical id.
                prop_assert_eq!(dd.mk(level as u32, &children), node);
                if children.iter().all(|&c| c == children[0]) {
                    prop_assert_eq!(node, children[0], "redundant node must reduce to its child");
                } else {
                    created.push(node);
                }
            }
            pool.extend(created);
        }
        // Scan the arena: every non-terminal (level, children) key is unique,
        // and no stored node is redundant.
        let keys: Vec<(u32, Vec<u32>)> = (2..dd.peak_nodes() as u32)
            .map(|id| (dd.raw_level(id), dd.children(id).to_vec()))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            prop_assert!(key.1.iter().any(|&c| c != key.1[0]), "node {} is redundant", i + 2);
            for other in &keys[i + 1..] {
                prop_assert_ne!(key, other, "duplicate (level, children) entry");
            }
        }
        prop_assert_eq!(dd.stats().unique_entries, keys.len());
    }

    /// A random apply-heavy workload followed by `gc()` preserves every
    /// protected root's evaluations, strictly shrinks (or preserves) the
    /// live node count, and reclaims exactly the difference.
    #[test]
    fn gc_preserves_protected_roots((netlist, c) in arb_fault_tree(6), seed in any::<u64>()) {
        let mut mgr = BddManager::new(c);
        let order: Vec<usize> = (0..c).collect();
        let build = mgr.build_netlist(&netlist, &order);
        // Pile more random operations on top; most of the intermediate
        // results become garbage.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch = vec![build.root];
        for i in 0..c {
            let v = mgr.var(i);
            scratch.push(v);
        }
        for _ in 0..24 {
            let a = scratch[(next() % scratch.len() as u64) as usize];
            let b = scratch[(next() % scratch.len() as u64) as usize];
            let r = match next() % 4 {
                0 => mgr.and(a, b),
                1 => mgr.or(a, b),
                2 => mgr.xor(a, b),
                _ => mgr.not(a),
            };
            scratch.push(r);
        }
        let second = scratch[(next() % scratch.len() as u64) as usize];
        let truth: Vec<(bool, bool)> = (0u32..1 << c)
            .map(|row| {
                let a: Vec<bool> = (0..c).map(|i| (row >> i) & 1 == 1).collect();
                (mgr.eval(build.root, &a), mgr.eval(second, &a))
            })
            .collect();
        let allocated_before = mgr.allocated_nodes();
        let h1 = mgr.protect(build.root);
        let h2 = mgr.protect(second);
        let gc = mgr.gc();
        prop_assert!(mgr.allocated_nodes() <= allocated_before, "gc never grows the arena");
        prop_assert_eq!(mgr.allocated_nodes(), allocated_before - gc.reclaimed_nodes);
        prop_assert_eq!(gc.live_nodes, mgr.allocated_nodes());
        prop_assert_eq!(mgr.peak_nodes(), allocated_before, "the peak survives");
        let root = mgr.unprotect(h1);
        let second = mgr.unprotect(h2);
        for (row, &(want_root, want_second)) in truth.iter().enumerate() {
            let a: Vec<bool> = (0..c).map(|i| (row >> i) & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(root, &a), want_root);
            prop_assert_eq!(mgr.eval(second, &a), want_second);
        }
        // A second collection with the same roots protected is a no-op.
        let h1 = mgr.protect(root);
        let h2 = mgr.protect(second);
        let again = mgr.gc();
        prop_assert_eq!(again.reclaimed_nodes, 0, "everything left is reachable");
        mgr.unprotect(h2);
        mgr.unprotect(h1);
    }

    /// Dynamic sifting never changes the function (up to the reported
    /// level permutation) and never ends with more nodes than it started
    /// with.
    #[test]
    fn sifting_preserves_functions((netlist, c) in arb_fault_tree(6)) {
        use soc_yield::dd::SiftConfig;
        let mut mgr = BddManager::new(c);
        let order: Vec<usize> = (0..c).collect();
        let build = mgr.build_netlist(&netlist, &order);
        let truth: Vec<bool> = (0u32..1 << c)
            .map(|row| {
                let a: Vec<bool> = (0..c).map(|i| (row >> i) & 1 == 1).collect();
                mgr.eval(build.root, &a)
            })
            .collect();
        let before = mgr.node_count(build.root);
        let mut roots = [build.root];
        let outcome = mgr.reorder_sift(&mut roots, &SiftConfig { max_growth: 1.5, max_rounds: 2 });
        let root = roots[0];
        prop_assert!(outcome.final_size <= before);
        prop_assert_eq!(mgr.node_count(root), outcome.final_size);
        for (row, &want) in truth.iter().enumerate() {
            let by_var: Vec<bool> = (0..c).map(|i| (row >> i) & 1 == 1).collect();
            let by_level: Vec<bool> = outcome.level_origin.iter().map(|&o| by_var[o]).collect();
            prop_assert_eq!(mgr.eval(root, &by_level), want);
        }
    }

    /// Exact baseline and decision-diagram pipeline agree on random small systems.
    #[test]
    fn exact_and_romdd_agree((netlist, c) in arb_fault_tree(5), lambda in 0.3f64..1.5) {
        let comps = ComponentProbabilities::new(vec![1.0 / c as f64; c]).unwrap();
        let lethal = NegativeBinomial::new(lambda, 4.0).unwrap();
        let options = AnalysisOptions { epsilon: 1e-2, ..AnalysisOptions::default() };
        let analysis = analyze(&netlist, &comps, &lethal, &options).unwrap();
        let trunc = truncate_at(&lethal, analysis.report.truncation).unwrap();
        let exact = soc_yield::core::exact::exact_yield(&netlist, &comps, &trunc).unwrap();
        prop_assert!((analysis.report.yield_lower_bound - exact).abs() < 1e-9);
    }
}
