//! Integration tests of the parallel sweep engine: parallel execution
//! must be **bit-identical** to serial execution — same yields (to the
//! last bit), same node counts, same truncations, same report ordering —
//! for every worker count.
//!
//! The CI test job runs these under `SOCY_TEST_THREADS ∈ {1, 4}`, so the
//! single-thread and multi-thread executor paths are both exercised on
//! every PR; the env var adds a thread count to the compared set.

use proptest::prelude::*;

use soc_yield::defect::{ComponentProbabilities, NegativeBinomial};
use soc_yield::ordering::{GroupOrdering, MvOrdering};
use soc_yield::{
    DefectDistribution, NamedDistribution, Netlist, OrderingSpec, Pipeline, SweepBlock,
    SweepMatrix, SweepOutcome, SystemSpec, TruncationRule,
};
use soc_yield_core::SweepPoint;

/// Thread counts to compare: 1, 2, 8, plus CI's `SOCY_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Some(n) = std::env::var("SOCY_TEST_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if !counts.contains(&n) && n > 0 {
            counts.push(n);
        }
    }
    counts
}

/// F = x1·x2 + x3 (Figure 2 of the paper).
fn figure2(name: &str) -> SystemSpec {
    let mut nl = Netlist::new();
    let x1 = nl.input("x1");
    let x2 = nl.input("x2");
    let x3 = nl.input("x3");
    let a = nl.and([x1, x2]);
    let f = nl.or([a, x3]);
    nl.set_output(f);
    SystemSpec::new(name, nl, ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap())
}

/// Triple-modular-redundant system: fails when ≥ 2 of 3 replicas fail.
fn tmr(name: &str) -> SystemSpec {
    let mut nl = Netlist::new();
    let a = nl.input("a");
    let b = nl.input("b");
    let c = nl.input("c");
    let vote = nl.at_least(2, [a, b, c]);
    nl.set_output(vote);
    SystemSpec::new(name, nl, ComponentProbabilities::new(vec![1.0 / 3.0; 3]).unwrap())
}

fn assert_bit_identical(serial: &SweepOutcome, parallel: &SweepOutcome, context: &str) {
    assert_eq!(serial.points.len(), parallel.points.len(), "{context}: point counts");
    for (s, p) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(s.labels, p.labels, "{context}: report ordering must not depend on threads");
        match (&s.result, &p.result) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.yield_lower_bound.to_bits(),
                    p.yield_lower_bound.to_bits(),
                    "{context}: yield must be bit-identical"
                );
                assert_eq!(s.error_bound.to_bits(), p.error_bound.to_bits(), "{context}");
                assert_eq!(s.truncation, p.truncation, "{context}");
                assert_eq!(s.compiled_truncation, p.compiled_truncation, "{context}");
                assert_eq!(s.coded_robdd_size, p.coded_robdd_size, "{context}");
                assert_eq!(s.presift_robdd_size, p.presift_robdd_size, "{context}");
                assert_eq!(s.robdd_peak, p.robdd_peak, "{context}");
                assert_eq!(s.romdd_size, p.romdd_size, "{context}");
                assert_eq!(s.robdd_stats, p.robdd_stats, "{context}");
                assert_eq!(s.romdd_stats, p.romdd_stats, "{context}");
            }
            (Err(s), Err(p)) => assert_eq!(s, p, "{context}: errors must be deterministic"),
            (s, p) => panic!(
                "{context}: serial ok={} but parallel ok={} at {}",
                s.is_ok(),
                p.is_ok(),
                serial.points.len()
            ),
        }
    }
    assert_eq!(serial.summary.robdd, parallel.summary.robdd, "{context}");
    assert_eq!(serial.summary.romdd, parallel.summary.romdd, "{context}");
    assert_eq!(serial.summary.chunks, parallel.summary.chunks, "{context}");
    assert_eq!(serial.summary.failed_points, parallel.summary.failed_points, "{context}");
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_across_systems_and_specs() {
    let mut block = SweepBlock::new();
    block.systems.push(figure2("figure2"));
    block.systems.push(tmr("tmr"));
    block
        .distributions
        .push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, 4.0).unwrap()));
    block
        .distributions
        .push(NamedDistribution::new("λ'=2", NegativeBinomial::new(2.0, 4.0).unwrap()));
    block.specs.push(OrderingSpec::paper_default());
    block.specs.push(OrderingSpec::new(MvOrdering::Wv, GroupOrdering::LsbFirst).unwrap());
    block.rules.extend([
        TruncationRule::Epsilon(1e-2),
        TruncationRule::Epsilon(1e-4),
        TruncationRule::Fixed(4),
    ]);
    let mut matrix = SweepMatrix::new();
    matrix.add(block);
    assert_eq!(matrix.len(), 24);

    let serial = matrix.run(1);
    assert_eq!(serial.summary.points, 24);
    assert_eq!(serial.summary.chunks, 4);
    assert_eq!(serial.summary.failed_points, 0);
    for threads in thread_counts() {
        let parallel = matrix.run(threads);
        assert_bit_identical(&serial, &parallel, &format!("threads={threads}"));
    }
}

#[test]
fn engine_reports_match_direct_pipeline_sweeps() {
    // The engine's contract: each (system, spec) chunk behaves exactly
    // like a serial Pipeline::sweep over the chunk's points.
    let system = figure2("figure2");
    let lethal1 = NegativeBinomial::new(1.0, 4.0).unwrap();
    let lethal2 = NegativeBinomial::new(2.0, 4.0).unwrap();
    let specs = [OrderingSpec::paper_default(), OrderingSpec::paper_default().with_sifting(150)];
    let rules = [TruncationRule::Epsilon(1e-2), TruncationRule::Epsilon(1e-3)];

    let mut block = SweepBlock::new();
    block.systems.push(system.clone());
    block.distributions.push(NamedDistribution::new("λ'=1", lethal1));
    block.distributions.push(NamedDistribution::new("λ'=2", lethal2));
    block.specs.extend(specs);
    block.rules.extend(rules);
    let mut matrix = SweepMatrix::new();
    matrix.add(block);
    let outcome = matrix.run(8);
    let engine_reports = outcome.reports().unwrap();

    for (which, &spec) in specs.iter().enumerate() {
        let mut pipeline = Pipeline::new(&system.fault_tree, &system.components).unwrap();
        let points = [
            (&lethal1, rules[0]),
            (&lethal1, rules[1]),
            (&lethal2, rules[0]),
            (&lethal2, rules[1]),
        ]
        .map(|(lethal, rule)| SweepPoint {
            lethal: lethal as &dyn DefectDistribution,
            options: rule.options(spec, Default::default()),
        });
        let reference = pipeline.sweep(points).unwrap();
        // Matrix order interleaves specs within each distribution:
        // engine point (dist d, spec s, rule r) sits at d*4 + s*2 + r.
        for (d, chunk_of_two) in reference.chunks(2).enumerate() {
            for (r, reference) in chunk_of_two.iter().enumerate() {
                let engine = engine_reports[d * 4 + which * 2 + r];
                assert_eq!(
                    engine.yield_lower_bound.to_bits(),
                    reference.yield_lower_bound.to_bits()
                );
                assert_eq!(engine.truncation, reference.truncation);
                assert_eq!(engine.compiled_truncation, reference.compiled_truncation);
                assert_eq!(engine.coded_robdd_size, reference.coded_robdd_size);
                assert_eq!(engine.presift_robdd_size, reference.presift_robdd_size);
                assert_eq!(engine.robdd_peak, reference.robdd_peak);
                assert_eq!(engine.romdd_size, reference.romdd_size);
            }
        }
    }
}

/// Random fault tree over `c` components (same generator family as
/// `property_based.rs`).
fn arb_system(max_components: usize) -> impl Strategy<Value = SystemSpec> {
    (2..=max_components, 1usize..5, any::<u64>()).prop_map(|(c, gates, seed)| {
        let mut nl = Netlist::new();
        let mut nodes: Vec<_> = (0..c).map(|i| nl.input(format!("x{i}"))).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..gates {
            let arity = 2 + (next() % 2) as usize;
            let fanin: Vec<_> =
                (0..arity).map(|_| nodes[(next() % nodes.len() as u64) as usize]).collect();
            let gate = match next() % 3 {
                0 => nl.and(fanin),
                1 => nl.or(fanin),
                _ => {
                    let inner = nl.or(fanin);
                    nl.not(inner)
                }
            };
            nodes.push(gate);
        }
        let out = *nodes.last().expect("non-empty");
        nl.set_output(out);
        let components = ComponentProbabilities::new(vec![1.0 / c as f64; c]).unwrap();
        SystemSpec::new(format!("random-{seed:x}"), nl, components)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over random matrices — random systems, distributions, specs and
    /// rules — parallel execution with 2 and 8 workers is bit-identical
    /// to the single-worker run: yields, node counts, peaks, statistics
    /// and report ordering.
    #[test]
    fn random_matrices_are_thread_count_invariant(
        systems in proptest::collection::vec(arb_system(4), 1..3),
        lambdas in proptest::collection::vec(0.3f64..2.0, 1..3),
        alpha in 0.5f64..8.0,
        epsilon_exp in 1u32..5,
        fixed_m in 1usize..5,
        second_spec in 0usize..3,
    ) {
        let mut block = SweepBlock::new();
        for system in systems {
            block.systems.push(system);
        }
        for (i, &lambda) in lambdas.iter().enumerate() {
            block.distributions.push(NamedDistribution::new(
                format!("λ'={i}"),
                NegativeBinomial::new(lambda, alpha).unwrap(),
            ));
        }
        block.specs.push(OrderingSpec::paper_default());
        let second = [
            OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).unwrap(),
            OrderingSpec::new(MvOrdering::Wvr, GroupOrdering::LsbFirst).unwrap(),
            OrderingSpec::new(MvOrdering::Topology, GroupOrdering::MsbFirst).unwrap(),
        ][second_spec];
        block.specs.push(second);
        block.rules.push(TruncationRule::Epsilon(10f64.powi(-(epsilon_exp as i32))));
        block.rules.push(TruncationRule::Fixed(fixed_m));
        let mut matrix = SweepMatrix::new();
        matrix.add(block);

        let serial = matrix.run(1);
        prop_assert_eq!(serial.summary.threads, 1);
        for threads in [2usize, 8] {
            let parallel = matrix.run(threads);
            assert_bit_identical(&serial, &parallel, &format!("threads={threads}"));
        }
    }
}
