//! Cross-engine consistency: the coded-ROBDD → ROMDD conversion route
//! (both the top-down and the layered algorithm) and the direct ROMDD
//! construction must produce the same decision diagram — and therefore
//! identical yields — on the classic redundancy structures.

use soc_yield::defect::{ComponentProbabilities, NegativeBinomial};
use soc_yield::{analyze, analyze_direct, AnalysisOptions, ConversionAlgorithm, Netlist};

/// Triple-modular-redundant system: fails when at least two replicas fail.
fn tmr() -> (Netlist, ComponentProbabilities) {
    let mut f = Netlist::new();
    let a = f.input("replica_a");
    let b = f.input("replica_b");
    let c = f.input("replica_c");
    let vote = f.at_least(2, [a, b, c]);
    f.set_output(vote);
    let comps = ComponentProbabilities::new(vec![1.0 / 3.0; 3]).unwrap();
    (f, comps)
}

/// 1-out-of-2 system: fails only when both components fail.
fn one_out_of_two() -> (Netlist, ComponentProbabilities) {
    let mut f = Netlist::new();
    let x1 = f.input("x1");
    let x2 = f.input("x2");
    let both = f.and([x1, x2]);
    f.set_output(both);
    let comps = ComponentProbabilities::new(vec![0.6, 0.4]).unwrap();
    (f, comps)
}

fn check_engines_agree(netlist: &Netlist, comps: &ComponentProbabilities, label: &str) {
    let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
    for epsilon in [1e-3, 1e-6] {
        let top_down = AnalysisOptions {
            epsilon,
            conversion: ConversionAlgorithm::TopDown,
            ..AnalysisOptions::default()
        };
        let layered = AnalysisOptions {
            epsilon,
            conversion: ConversionAlgorithm::Layered,
            ..AnalysisOptions::default()
        };

        let via_top_down = analyze(netlist, comps, &lethal, &top_down).unwrap();
        let via_layered = analyze(netlist, comps, &lethal, &layered).unwrap();
        let direct = analyze_direct(netlist, comps, &lethal, &top_down).unwrap();

        // Same reduced canonical diagram: node counts must agree exactly.
        assert_eq!(
            via_top_down.report.romdd_size, direct.report.romdd_size,
            "{label} ε={epsilon}: conversion and direct ROMDD sizes differ"
        );
        assert_eq!(
            via_top_down.report.romdd_size, via_layered.report.romdd_size,
            "{label} ε={epsilon}: top-down and layered conversion sizes differ"
        );

        // Identical yields, far below the method's error bound.
        let y = via_top_down.report.yield_lower_bound;
        for (name, other) in [
            ("layered conversion", via_layered.report.yield_lower_bound),
            ("direct ROMDD", direct.report.yield_lower_bound),
        ] {
            assert!(
                (y - other).abs() < 1e-12,
                "{label} ε={epsilon}: coded-ROBDD route {y} vs {name} {other}"
            );
        }
        assert!((0.0..=1.0).contains(&y), "{label}: yield {y} out of range");
        assert!(via_top_down.report.error_bound <= epsilon);
    }
}

#[test]
fn tmr_yields_agree_across_engines() {
    let (netlist, comps) = tmr();
    check_engines_agree(&netlist, &comps, "TMR");
}

#[test]
fn one_out_of_two_yields_agree_across_engines() {
    let (netlist, comps) = one_out_of_two();
    check_engines_agree(&netlist, &comps, "1-out-of-2");
}

#[test]
fn tmr_beats_simplex_at_low_defect_density() {
    // Sanity anchor: with few expected lethal defects, masking two-of-three
    // failures must help compared to a single component carrying the same
    // failure exposure.
    let (netlist, comps) = tmr();
    let lethal = NegativeBinomial::new(0.5, 4.0).unwrap();
    let options = AnalysisOptions::default();
    let tmr_yield = analyze(&netlist, &comps, &lethal, &options).unwrap().report.yield_lower_bound;

    let mut simplex = Netlist::new();
    let x = simplex.input("x");
    simplex.set_output(x);
    let simplex_comps = ComponentProbabilities::new(vec![1.0]).unwrap();
    let simplex_yield =
        analyze(&simplex, &simplex_comps, &lethal, &options).unwrap().report.yield_lower_bound;

    assert!(
        tmr_yield > simplex_yield,
        "TMR ({tmr_yield}) should out-yield simplex ({simplex_yield}) at λ' = 0.5"
    );
}
