//! Integration tests of the `socy-serve` yield service: protocol
//! round-trips, the compiled-pipeline cache (repeat = hit, bit-identical
//! yield, zero compilation), and fault containment (a panicking request
//! answers with an error while the daemon and concurrent requests keep
//! working).

use socy_serve::{Response, ServiceConfig, YieldService};

fn service() -> YieldService {
    let threads = std::env::var("SOCY_TEST_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    YieldService::new(ServiceConfig { threads, ..ServiceConfig::default() })
}

const NB: &str = r#"{"kind":"negative_binomial","lambda":1.0,"alpha":4.0}"#;

fn analyze_ms2(id: &str) -> String {
    format!(
        r#"{{"type":"analyze","id":"{id}","system":{{"benchmark":"MS2"}},"distribution":{NB},"epsilon":0.001}}"#
    )
}

#[test]
fn every_request_type_round_trips() {
    let mut service = service();

    // analyze — a benchmark system, cold compilation.
    let analyze = service.handle_line(&analyze_ms2("a1"));
    assert_eq!(analyze.id.as_deref(), Some("a1"));
    assert_eq!(analyze.kind, "analyze");
    assert!(analyze.ok, "{:?}", analyze.error);
    assert_eq!(analyze.compiled.as_deref(), Some("cold"));
    let reports = analyze.reports.as_ref().unwrap();
    assert_eq!(reports.len(), 1);
    assert!(reports[0].yield_lower_bound > 0.0 && reports[0].yield_lower_bound < 1.0);
    assert!(reports[0].error_bound <= 0.001);
    assert_eq!(reports[0].ordering, "w/ml");
    assert_eq!(reports[0].conversion, "top_down");
    assert!(reports[0].romdd_live_nodes > 0);

    // sweep — one compilation serves every ε; truncation grows with the
    // accuracy requirement.
    let sweep = service.handle_line(
        r#"{"type":"sweep","id":"s1","system":{"benchmark":"ESEN4x1"},
            "distribution":{"kind":"poisson","lambda":2.0},"epsilons":[0.01,0.001,0.0001]}"#,
    );
    assert!(sweep.ok, "{:?}", sweep.error);
    assert_eq!(sweep.kind, "sweep");
    let reports = sweep.reports.as_ref().unwrap();
    assert_eq!(reports.len(), 3);
    assert!(reports[0].truncation <= reports[1].truncation);
    assert!(reports[1].truncation <= reports[2].truncation);
    assert_eq!(reports[0].rule, "ε=1e-2");

    // analyze — an inline system with a fixed truncation.
    let inline = service.handle_line(
        r#"{"id":"tmr","system":{"name":"tmr","netlist":
            "input a\ninput b\ninput c\nf = atleast2 a b c\noutput f",
            "components":[0.3,0.3,0.4]},
            "distribution":{"kind":"empirical","masses":[0.5,0.3,0.2]},"fixed_truncation":2}"#,
    );
    assert!(inline.ok, "{:?}", inline.error);
    assert_eq!(inline.reports.as_ref().unwrap()[0].truncation, 2);
    assert_eq!(inline.reports.as_ref().unwrap()[0].rule, "M=2");

    // stats — counters cover everything above.
    let stats = service.handle_line(r#"{"type":"stats","id":"z"}"#);
    assert!(stats.ok);
    assert_eq!(stats.kind, "stats");
    assert_eq!(stats.requests_served, Some(4));
    let cache = stats.cache.as_ref().unwrap();
    assert_eq!(cache.misses, 3);
    assert_eq!(cache.insertions, 3);
    assert_eq!(cache.resident, 3);
    assert!(cache.live_nodes > 0);
}

#[test]
fn repeated_request_is_served_from_the_cache_bit_identically() {
    let mut service = service();
    let first = service.handle_line(&analyze_ms2("r1"));
    let second = service.handle_line(&analyze_ms2("r2"));
    assert_eq!(first.compiled.as_deref(), Some("cold"));
    // The repeat skips compilation entirely …
    assert_eq!(second.compiled.as_deref(), Some("cached"));
    let stats = service.cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    // … and reproduces the yield bit for bit.
    let (a, b) = (&first.reports.unwrap()[0], &second.reports.unwrap()[0]);
    assert_eq!(a.yield_lower_bound.to_bits(), b.yield_lower_bound.to_bits());
    assert_eq!(a.error_bound.to_bits(), b.error_bound.to_bits());
    assert_eq!(a.truncation, b.truncation);
    assert_eq!(a.romdd_size, b.romdd_size);
}

#[test]
fn deeper_truncation_on_a_hit_is_reported_as_recompiled() {
    let mut service = service();
    let shallow = service.handle_line(
        r#"{"id":"lo","system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":0.5},"epsilon":0.01}"#,
    );
    let deep = service.handle_line(
        r#"{"id":"hi","system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":0.5},"epsilon":1e-9}"#,
    );
    assert_eq!(shallow.compiled.as_deref(), Some("cold"));
    // Same pipeline (a cache hit), but the tighter ε needs a larger M
    // than the diagram was compiled at — the extension is surfaced.
    assert_eq!(deep.compiled.as_deref(), Some("recompiled"));
    assert_eq!(service.cache().stats().hits, 1);
    let (a, b) = (&shallow.reports.unwrap()[0], &deep.reports.unwrap()[0]);
    assert!(b.truncation > a.truncation);
    assert!(b.compiled_truncation >= b.truncation);
}

#[test]
fn panicking_request_fails_alone_while_the_batch_and_daemon_survive() {
    let mut service = service();
    // One batch: a panicking (uncached) request next to a healthy one.
    let boom = r#"{"id":"boom","system":{"benchmark":"MS4"},"distribution":{"kind":"panic"}}"#;
    let good = format!(
        r#"{{"id":"good","system":{{"benchmark":"MS6"}},"distribution":{NB},"epsilon":0.001}}"#
    );
    let responses = service.handle_batch(&[boom, &good]);
    assert_eq!(responses.len(), 2);
    let (boomed, good) = (&responses[0], &responses[1]);
    assert!(!boomed.ok);
    assert_eq!(boomed.kind, "error");
    assert_eq!(boomed.panicked, Some(true));
    assert!(
        boomed.error.as_ref().unwrap().contains("deliberate fault injection"),
        "{:?}",
        boomed.error
    );
    assert!(good.ok, "{:?}", good.error);
    assert_eq!(good.compiled.as_deref(), Some("cold"));
    // Nothing half-compiled was cached for the failed request …
    assert_eq!(service.cache().len(), 1);
    // … and the daemon keeps serving afterwards.
    let after = service.handle_line(&analyze_ms2("after"));
    assert!(after.ok, "{:?}", after.error);
}

#[test]
fn a_panicked_cache_hit_evicts_the_resident_pipeline() {
    let mut service = service();
    assert!(service.handle_line(&analyze_ms2("warm")).ok);
    assert_eq!(service.cache().len(), 1);
    // Same (system, spec, conversion) key, so this evaluates on the
    // *resident* pipeline — and unwinds on the daemon thread.
    let boomed = service.handle_line(
        r#"{"id":"boom","system":{"benchmark":"MS2"},"distribution":{"kind":"panic"}}"#,
    );
    assert!(!boomed.ok);
    assert_eq!(boomed.panicked, Some(true));
    // The possibly half-updated pipeline was dropped, not trusted.
    assert_eq!(service.cache().len(), 0);
    let recovered = service.handle_line(&analyze_ms2("again"));
    assert!(recovered.ok, "{:?}", recovered.error);
    assert_eq!(recovered.compiled.as_deref(), Some("cold"));
}

#[test]
fn malformed_and_unresolvable_requests_answer_with_errors() {
    let mut service = service();
    let garbage = service.handle_line("not json at all");
    assert!(!garbage.ok);
    assert_eq!(garbage.kind, "error");
    assert_eq!(garbage.panicked, Some(false));
    assert!(garbage.error.as_ref().unwrap().contains("invalid request"));

    let unknown = service.handle_line(
        r#"{"id":"u","system":{"benchmark":"MS99"},"distribution":{"kind":"poisson","lambda":1.0}}"#,
    );
    assert!(!unknown.ok);
    assert_eq!(unknown.id.as_deref(), Some("u"));
    assert!(unknown.error.as_ref().unwrap().contains("unknown benchmark"));

    let bad_ordering = service.handle_line(
        r#"{"id":"o","system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":1.0},"ordering":"q/zz"}"#,
    );
    assert!(!bad_ordering.ok);
    assert!(bad_ordering.error.as_ref().unwrap().contains("unknown ordering label"));

    // Errors count as served requests but never touch the cache.
    assert_eq!(service.requests_served(), 3);
    assert_eq!(service.cache().len(), 0);

    // Responses always serialize to a single line.
    assert!(!garbage.to_json_line().contains('\n'));
}

#[test]
fn responses_serialize_with_stable_field_names() {
    let mut service = service();
    let response: Response = service.handle_line(&analyze_ms2("wire"));
    let line = response.to_json_line();
    for field in [
        "\"id\":\"wire\"",
        "\"kind\":\"analyze\"",
        "\"compiled\":\"cold\"",
        "\"reports\":[",
        "\"yield_lower_bound\":",
        "\"cache\":{",
        "\"latency_seconds\":",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
    // The wire line round-trips through the JSON parser.
    let value = serde_json::from_str(&line).unwrap();
    assert_eq!(value.get("ok").and_then(serde_json::Value::as_bool), Some(true));
}
