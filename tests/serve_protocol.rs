//! Integration tests of the `socy-serve` yield service: protocol
//! round-trips, the compiled-pipeline cache (repeat = hit, bit-identical
//! yield, zero compilation), and fault containment (a panicking request
//! answers with an error while the daemon and concurrent requests keep
//! working).

use socy_serve::{Response, ServiceConfig, YieldService};

fn service() -> YieldService {
    let threads = std::env::var("SOCY_TEST_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    YieldService::new(ServiceConfig { threads, ..ServiceConfig::default() })
}

const NB: &str = r#"{"kind":"negative_binomial","lambda":1.0,"alpha":4.0}"#;

fn analyze_ms2(id: &str) -> String {
    format!(
        r#"{{"type":"analyze","id":"{id}","system":{{"benchmark":"MS2"}},"distribution":{NB},"epsilon":0.001}}"#
    )
}

#[test]
fn every_request_type_round_trips() {
    let mut service = service();

    // analyze — a benchmark system, cold compilation.
    let analyze = service.handle_line(&analyze_ms2("a1"));
    assert_eq!(analyze.id.as_deref(), Some("a1"));
    assert_eq!(analyze.kind, "analyze");
    assert!(analyze.ok, "{:?}", analyze.error);
    assert_eq!(analyze.compiled.as_deref(), Some("cold"));
    let reports = analyze.reports.as_ref().unwrap();
    assert_eq!(reports.len(), 1);
    assert!(reports[0].yield_lower_bound > 0.0 && reports[0].yield_lower_bound < 1.0);
    assert!(reports[0].error_bound <= 0.001);
    assert_eq!(reports[0].ordering, "w/ml");
    assert_eq!(reports[0].conversion, "top_down");
    assert!(reports[0].romdd_live_nodes > 0);

    // sweep — one compilation serves every ε; truncation grows with the
    // accuracy requirement.
    let sweep = service.handle_line(
        r#"{"type":"sweep","id":"s1","system":{"benchmark":"ESEN4x1"},
            "distribution":{"kind":"poisson","lambda":2.0},"epsilons":[0.01,0.001,0.0001]}"#,
    );
    assert!(sweep.ok, "{:?}", sweep.error);
    assert_eq!(sweep.kind, "sweep");
    let reports = sweep.reports.as_ref().unwrap();
    assert_eq!(reports.len(), 3);
    assert!(reports[0].truncation <= reports[1].truncation);
    assert!(reports[1].truncation <= reports[2].truncation);
    assert_eq!(reports[0].rule, "ε=1e-2");

    // analyze — an inline system with a fixed truncation.
    let inline = service.handle_line(
        r#"{"id":"tmr","system":{"name":"tmr","netlist":
            "input a\ninput b\ninput c\nf = atleast2 a b c\noutput f",
            "components":[0.3,0.3,0.4]},
            "distribution":{"kind":"empirical","masses":[0.5,0.3,0.2]},"fixed_truncation":2}"#,
    );
    assert!(inline.ok, "{:?}", inline.error);
    assert_eq!(inline.reports.as_ref().unwrap()[0].truncation, 2);
    assert_eq!(inline.reports.as_ref().unwrap()[0].rule, "M=2");

    // stats — counters cover everything above.
    let stats = service.handle_line(r#"{"type":"stats","id":"z"}"#);
    assert!(stats.ok);
    assert_eq!(stats.kind, "stats");
    assert_eq!(stats.requests_served, Some(4));
    let cache = stats.cache.as_ref().unwrap();
    assert_eq!(cache.misses, 3);
    assert_eq!(cache.insertions, 3);
    assert_eq!(cache.resident, 3);
    assert!(cache.live_nodes > 0);
}

#[test]
fn repeated_request_is_served_from_the_cache_bit_identically() {
    let mut service = service();
    let first = service.handle_line(&analyze_ms2("r1"));
    let second = service.handle_line(&analyze_ms2("r2"));
    assert_eq!(first.compiled.as_deref(), Some("cold"));
    // The repeat skips compilation entirely …
    assert_eq!(second.compiled.as_deref(), Some("cached"));
    let stats = service.cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    // … and reproduces the yield bit for bit.
    let (a, b) = (&first.reports.unwrap()[0], &second.reports.unwrap()[0]);
    assert_eq!(a.yield_lower_bound.to_bits(), b.yield_lower_bound.to_bits());
    assert_eq!(a.error_bound.to_bits(), b.error_bound.to_bits());
    assert_eq!(a.truncation, b.truncation);
    assert_eq!(a.romdd_size, b.romdd_size);
}

#[test]
fn deeper_truncation_on_a_hit_is_reported_as_recompiled() {
    let mut service = service();
    let shallow = service.handle_line(
        r#"{"id":"lo","system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":0.5},"epsilon":0.01}"#,
    );
    let deep = service.handle_line(
        r#"{"id":"hi","system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":0.5},"epsilon":1e-9}"#,
    );
    assert_eq!(shallow.compiled.as_deref(), Some("cold"));
    // Same pipeline (a cache hit), but the tighter ε needs a larger M
    // than the diagram was compiled at — the extension is surfaced.
    assert_eq!(deep.compiled.as_deref(), Some("recompiled"));
    assert_eq!(service.cache().stats().hits, 1);
    let (a, b) = (&shallow.reports.unwrap()[0], &deep.reports.unwrap()[0]);
    assert!(b.truncation > a.truncation);
    assert!(b.compiled_truncation >= b.truncation);
}

const PAIR_NETLIST: &str = r"input a\ninput b\nf = and a b\noutput f";

fn pair_analyze(id: &str, components: &str) -> String {
    format!(
        r#"{{"type":"analyze","id":"{id}","system":{{"name":"pair","netlist":"{PAIR_NETLIST}","components":{components}}},"distribution":{NB},"epsilon":0.001}}"#
    )
}

fn pair_delta_family(id: &str) -> String {
    format!(
        r#"{{"type":"analyze_delta","id":"{id}","system":{{"name":"pair","netlist":"{PAIR_NETLIST}","components":[0.3,0.4]}},"distribution":{NB},"epsilon":0.001,"deltas":[{{"name":"base"}},{{"name":"a-weak","overrides":[{{"component":0,"probability":0.1}}]}},{{"name":"b-strong","overrides":[{{"component":"b","probability":0.2}}]}}]}}"#
    )
}

#[test]
fn analyze_delta_matches_materialized_variants_bit_for_bit() {
    let mut service = service();
    let family = service.handle_line(&pair_delta_family("d1"));
    assert!(family.ok, "{:?}", family.error);
    assert_eq!(family.kind, "analyze_delta");
    // The whole family compiles the base system exactly once.
    assert_eq!(family.compiled.as_deref(), Some("cold"));
    let reports = family.reports.as_ref().unwrap();
    assert_eq!(reports.len(), 3);
    let names: Vec<_> = reports.iter().map(|r| r.delta.as_deref()).collect();
    assert_eq!(names, [Some("base"), Some("a-weak"), Some("b-strong")]);

    // Every delta report is bit-identical to analyzing the materialized
    // variant from scratch.
    for (report, components) in reports.iter().zip(["[0.3,0.4]", "[0.1,0.4]", "[0.3,0.2]"]) {
        let scratch = service.handle_line(&pair_analyze("scratch", components));
        assert!(scratch.ok, "{:?}", scratch.error);
        let fresh = &scratch.reports.as_ref().unwrap()[0];
        assert_eq!(report.yield_lower_bound.to_bits(), fresh.yield_lower_bound.to_bits());
        assert_eq!(report.error_bound.to_bits(), fresh.error_bound.to_bits());
        assert_eq!(report.truncation, fresh.truncation);
        assert_eq!(report.romdd_size, fresh.romdd_size);
    }
}

#[test]
fn delta_family_on_a_resident_base_needs_no_compilation() {
    let mut service = service();
    let cold = service.handle_line(&pair_delta_family("warm"));
    assert_eq!(cold.compiled.as_deref(), Some("cold"));
    // Same base key: the family resolves entirely on the resident
    // pipeline — swap-only deltas are pure re-evaluations.
    let hit = service.handle_line(&pair_delta_family("hot"));
    assert!(hit.ok, "{:?}", hit.error);
    assert_eq!(hit.compiled.as_deref(), Some("delta"));
    assert_eq!(service.cache().stats().hits, 1);
    let (a, b) = (cold.reports.unwrap(), hit.reports.unwrap());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.yield_lower_bound.to_bits(), y.yield_lower_bound.to_bits());
        assert_eq!(x.romdd_size, y.romdd_size);
    }
}

#[test]
fn structural_delta_requests_swap_subtrees_against_the_resident_base() {
    let mut service = service();
    // A structural delta replaces the whole fault tree of the variant.
    let structural = format!(
        r#"{{"type":"analyze_delta","id":"sw","system":{{"name":"pair","netlist":"{PAIR_NETLIST}","components":[0.3,0.4]}},"distribution":{NB},"epsilon":0.001,"deltas":[{{"name":"or-variant","netlist":"input a\ninput b\nf = or a b\noutput f"}}]}}"#
    );
    let cold = service.handle_line(&structural);
    assert!(cold.ok, "{:?}", cold.error);
    assert_eq!(cold.compiled.as_deref(), Some("cold"));
    let report = &cold.reports.as_ref().unwrap()[0];
    assert_eq!(report.delta.as_deref(), Some("or-variant"));
    // Bit-identical to compiling the or-variant from scratch.
    let scratch = service.handle_line(&format!(
        r#"{{"type":"analyze","id":"s","system":{{"name":"orpair","netlist":"input a\ninput b\nf = or a b\noutput f","components":[0.3,0.4]}},"distribution":{NB},"epsilon":0.001}}"#
    ));
    let fresh = &scratch.reports.as_ref().unwrap()[0];
    assert_eq!(report.yield_lower_bound.to_bits(), fresh.yield_lower_bound.to_bits());
    assert_eq!(report.truncation, fresh.truncation);
    assert_eq!(report.romdd_size, fresh.romdd_size);
    // Replays against the now-resident base stay incremental: either a
    // delta rebuild on the retained manager or a contained recompile.
    let again = service.handle_line(&structural);
    assert!(again.ok, "{:?}", again.error);
    let label = again.compiled.as_deref().unwrap();
    assert!(label == "delta" || label == "recompiled", "{label}");
    assert_eq!(
        again.reports.as_ref().unwrap()[0].yield_lower_bound.to_bits(),
        fresh.yield_lower_bound.to_bits()
    );
}

#[test]
fn delta_requests_validate_their_shape() {
    let mut service = service();
    // `deltas` is exclusive to analyze_delta …
    let misplaced = service.handle_line(&format!(
        r#"{{"type":"analyze","id":"m","system":{{"benchmark":"MS2"}},"distribution":{NB},"deltas":[{{"name":"x"}}]}}"#
    ));
    assert!(!misplaced.ok);
    assert!(misplaced.error.as_ref().unwrap().contains("analyze_delta"), "{:?}", misplaced.error);
    // … and analyze_delta requires a non-empty family.
    let empty = service.handle_line(&format!(
        r#"{{"type":"analyze_delta","id":"e","system":{{"benchmark":"MS2"}},"distribution":{NB}}}"#
    ));
    assert!(!empty.ok);
    assert!(empty.error.as_ref().unwrap().contains("non-empty"), "{:?}", empty.error);
    // Component names resolve against the base netlist.
    let unknown = service.handle_line(&format!(
        r#"{{"type":"analyze_delta","id":"u","system":{{"name":"pair","netlist":"{PAIR_NETLIST}","components":[0.3,0.4]}},"distribution":{NB},"deltas":[{{"name":"bad","overrides":[{{"component":"zz","probability":0.1}}]}}]}}"#
    ));
    assert!(!unknown.ok);
    assert!(unknown.error.as_ref().unwrap().contains("unknown component"), "{:?}", unknown.error);
    // Errors never touch the cache.
    assert_eq!(service.cache().len(), 0);
}

#[test]
fn stats_responses_echo_the_active_compile_options() {
    let threads = std::env::var("SOCY_TEST_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let mut service = YieldService::new(ServiceConfig {
        threads,
        options: socy_serve::CompileOptions::new()
            .with_compile_threads(2)
            .with_complement_edges(false),
        ..ServiceConfig::default()
    });
    let stats = service.handle_line(r#"{"type":"stats","id":"o"}"#);
    assert!(stats.ok);
    let line = stats.to_json_line();
    assert!(line.contains(r#""options":{"#), "{line}");
    assert!(line.contains(r#""compile_threads":2"#), "{line}");
    assert!(line.contains(r#""complement_edges":false"#), "{line}");
}

#[test]
fn panicking_request_fails_alone_while_the_batch_and_daemon_survive() {
    let mut service = service();
    // One batch: a panicking (uncached) request next to a healthy one.
    let boom = r#"{"id":"boom","system":{"benchmark":"MS4"},"distribution":{"kind":"panic"}}"#;
    let good = format!(
        r#"{{"id":"good","system":{{"benchmark":"MS6"}},"distribution":{NB},"epsilon":0.001}}"#
    );
    let responses = service.handle_batch(&[boom, &good]);
    assert_eq!(responses.len(), 2);
    let (boomed, good) = (&responses[0], &responses[1]);
    assert!(!boomed.ok);
    assert_eq!(boomed.kind, "error");
    assert_eq!(boomed.panicked, Some(true));
    assert!(
        boomed.error.as_ref().unwrap().contains("deliberate fault injection"),
        "{:?}",
        boomed.error
    );
    assert!(good.ok, "{:?}", good.error);
    assert_eq!(good.compiled.as_deref(), Some("cold"));
    // Nothing half-compiled was cached for the failed request …
    assert_eq!(service.cache().len(), 1);
    // … and the daemon keeps serving afterwards.
    let after = service.handle_line(&analyze_ms2("after"));
    assert!(after.ok, "{:?}", after.error);
}

#[test]
fn a_panicked_cache_hit_evicts_the_resident_pipeline() {
    let mut service = service();
    assert!(service.handle_line(&analyze_ms2("warm")).ok);
    assert_eq!(service.cache().len(), 1);
    // Same (system, spec, conversion) key, so this evaluates on the
    // *resident* pipeline — and unwinds on the daemon thread.
    let boomed = service.handle_line(
        r#"{"id":"boom","system":{"benchmark":"MS2"},"distribution":{"kind":"panic"}}"#,
    );
    assert!(!boomed.ok);
    assert_eq!(boomed.panicked, Some(true));
    // The possibly half-updated pipeline was dropped, not trusted.
    assert_eq!(service.cache().len(), 0);
    let recovered = service.handle_line(&analyze_ms2("again"));
    assert!(recovered.ok, "{:?}", recovered.error);
    assert_eq!(recovered.compiled.as_deref(), Some("cold"));
}

#[test]
fn malformed_and_unresolvable_requests_answer_with_errors() {
    let mut service = service();
    let garbage = service.handle_line("not json at all");
    assert!(!garbage.ok);
    assert_eq!(garbage.kind, "error");
    assert_eq!(garbage.panicked, Some(false));
    assert!(garbage.error.as_ref().unwrap().contains("invalid request"));

    let unknown = service.handle_line(
        r#"{"id":"u","system":{"benchmark":"MS99"},"distribution":{"kind":"poisson","lambda":1.0}}"#,
    );
    assert!(!unknown.ok);
    assert_eq!(unknown.id.as_deref(), Some("u"));
    assert!(unknown.error.as_ref().unwrap().contains("unknown benchmark"));

    let bad_ordering = service.handle_line(
        r#"{"id":"o","system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":1.0},"ordering":"q/zz"}"#,
    );
    assert!(!bad_ordering.ok);
    assert!(bad_ordering.error.as_ref().unwrap().contains("unknown ordering label"));

    // Errors count as served requests but never touch the cache.
    assert_eq!(service.requests_served(), 3);
    assert_eq!(service.cache().len(), 0);

    // Responses always serialize to a single line.
    assert!(!garbage.to_json_line().contains('\n'));
}

#[test]
fn a_tiny_per_request_node_budget_degrades_to_bounds() {
    let mut service = service();
    let line = format!(
        r#"{{"type":"analyze","id":"g1","system":{{"benchmark":"MS2"}},"distribution":{NB},"epsilon":0.001,"node_budget":1}}"#
    );
    let response = service.handle_line(&line);
    assert!(response.ok, "{:?}", response.error);
    assert_eq!(response.compiled.as_deref(), Some("governed"));
    let report = &response.reports.as_ref().unwrap()[0];
    assert_eq!(report.fidelity, "bounds");
    assert!(report.yield_lower_bound > 0.0 && report.yield_lower_bound < 1.0);
    assert!(report.error_bound > 0.0);
    // A budget-truncated compile is not representative — never cached.
    assert_eq!(service.cache().len(), 0);
    let stats = service.handle_line(r#"{"type":"stats","id":"z"}"#);
    let governor = stats.governor.unwrap();
    assert_eq!(governor.budget_exceeded, 1);
    assert_eq!(governor.degraded, 1);
    assert_eq!(governor.cancelled, 0);
}

#[test]
fn a_generous_per_request_budget_answers_exactly_on_the_governed_path() {
    let mut service = service();
    let line = format!(
        r#"{{"type":"analyze","id":"g2","system":{{"benchmark":"MS2"}},"distribution":{NB},"epsilon":0.001,"node_budget":10000000}}"#
    );
    let governed = service.handle_line(&line);
    assert!(governed.ok, "{:?}", governed.error);
    assert_eq!(governed.compiled.as_deref(), Some("governed"));
    assert_eq!(governed.reports.as_ref().unwrap()[0].fidelity, "exact");
    // A budget that never trips matches the ungoverned answer bit for bit.
    let plain = service.handle_line(&analyze_ms2("p"));
    let (a, b) = (&governed.reports.unwrap()[0], &plain.reports.unwrap()[0]);
    assert_eq!(a.yield_lower_bound.to_bits(), b.yield_lower_bound.to_bits());
    assert_eq!(a.error_bound.to_bits(), b.error_bound.to_bits());
    assert_eq!(a.romdd_size, b.romdd_size);
    let stats = service.handle_line(r#"{"type":"stats","id":"z"}"#);
    let governor = stats.governor.unwrap();
    assert_eq!((governor.budget_exceeded, governor.degraded, governor.cancelled), (0, 0, 0));
}

#[test]
fn a_zero_timeout_answers_with_deterministic_monte_carlo_bounds() {
    let mut service = service();
    let line = format!(
        r#"{{"type":"analyze","id":"t0","system":{{"benchmark":"MS2"}},"distribution":{NB},"epsilon":0.001,"timeout_ms":0}}"#
    );
    let first = service.handle_line(&line);
    assert!(first.ok, "{:?}", first.error);
    assert_eq!(first.compiled.as_deref(), Some("governed"));
    let bounds = &first.reports.as_ref().unwrap()[0];
    assert_eq!(bounds.fidelity, "bounds");
    // `timeout_ms: 0` never compiles — no diagrams, no cache entry …
    assert_eq!(bounds.romdd_size, 0);
    assert_eq!(service.cache().len(), 0);
    // … and the fixed-seed simulation makes the replay bit-identical.
    let second = service.handle_line(&line);
    let again = &second.reports.as_ref().unwrap()[0];
    assert_eq!(bounds.yield_lower_bound.to_bits(), again.yield_lower_bound.to_bits());
    assert_eq!(bounds.error_bound.to_bits(), again.error_bound.to_bits());
    // The interval brackets the exact (compiled) yield.
    let exact = service.handle_line(&analyze_ms2("x"));
    let y = exact.reports.as_ref().unwrap()[0].yield_lower_bound;
    assert!(
        bounds.yield_lower_bound <= y && y <= bounds.yield_lower_bound + bounds.error_bound,
        "exact {y} outside [{}, {}]",
        bounds.yield_lower_bound,
        bounds.yield_lower_bound + bounds.error_bound
    );
}

#[test]
fn a_cancel_line_fails_the_batchs_misses_and_the_next_batch_recovers() {
    let mut service = service();
    let analyze = analyze_ms2("v1");
    let cancel = r#"{"type":"cancel","id":"c1"}"#;
    let responses = service.handle_batch(&[&analyze, cancel]);
    // The cancel request itself acknowledges …
    assert!(responses[1].ok);
    assert_eq!(responses[1].kind, "cancel");
    assert_eq!(responses[1].id.as_deref(), Some("c1"));
    // … and the uncached analyze in the same batch fails as cancelled
    // (misses run after the parse loop, so the cancel reaches them).
    let failed = &responses[0];
    assert!(!failed.ok);
    assert!(failed.error.as_ref().unwrap().contains("cancelled"), "{:?}", failed.error);
    assert_eq!(service.cache().len(), 0);
    let stats = service.handle_line(r#"{"type":"stats","id":"z"}"#);
    assert!(stats.governor.unwrap().cancelled >= 1);
    // The token is re-armed per batch: the next request is unaffected.
    let after = service.handle_line(&analyze_ms2("v2"));
    assert!(after.ok, "{:?}", after.error);
    assert_eq!(after.compiled.as_deref(), Some("cold"));
}

#[test]
fn service_level_budgets_fall_back_to_bounds_on_cold_misses() {
    let threads = std::env::var("SOCY_TEST_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let mut service = YieldService::new(ServiceConfig {
        threads,
        options: socy_serve::CompileOptions::new().with_node_budget(2),
        ..ServiceConfig::default()
    });
    let response = service.handle_line(&analyze_ms2("b1"));
    assert!(response.ok, "{:?}", response.error);
    // The executor chunk tripped its budget; the service answered with
    // Monte-Carlo bounds instead of failing the request.
    assert_eq!(response.compiled.as_deref(), Some("bounds"));
    assert_eq!(response.reports.as_ref().unwrap()[0].fidelity, "bounds");
    assert_eq!(service.cache().len(), 0);
    let stats = service.handle_line(r#"{"type":"stats","id":"z"}"#);
    let governor = stats.governor.unwrap();
    assert_eq!(governor.budget_exceeded, 1);
    assert_eq!(governor.degraded, 1);
}

#[test]
fn resource_overrides_are_rejected_on_delta_families() {
    let mut service = service();
    let line = format!(
        r#"{{"type":"analyze_delta","id":"rd","system":{{"name":"pair","netlist":"{PAIR_NETLIST}","components":[0.3,0.4]}},"distribution":{NB},"timeout_ms":5,"deltas":[{{"name":"base"}}]}}"#
    );
    let rejected = service.handle_line(&line);
    assert!(!rejected.ok);
    assert!(rejected.error.as_ref().unwrap().contains("analyze_delta"), "{:?}", rejected.error);
    assert_eq!(service.cache().len(), 0);
}

#[test]
fn responses_serialize_with_stable_field_names() {
    let mut service = service();
    let response: Response = service.handle_line(&analyze_ms2("wire"));
    let line = response.to_json_line();
    for field in [
        "\"id\":\"wire\"",
        "\"kind\":\"analyze\"",
        "\"compiled\":\"cold\"",
        "\"reports\":[",
        "\"yield_lower_bound\":",
        "\"cache\":{",
        "\"latency_seconds\":",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
    // The wire line round-trips through the JSON parser.
    let value = serde_json::from_str(&line).unwrap();
    assert_eq!(value.get("ok").and_then(serde_json::Value::as_bool), Some(true));
}
