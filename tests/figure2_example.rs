//! Integration test reproducing the paper's Figure-2 worked example across
//! the whole stack: fault tree → generalized fault tree → coded ROBDD →
//! ROMDD → probability, cross-checked against hand enumeration, the exact
//! baseline, the direct-ROMDD construction and the Monte-Carlo simulator.

use soc_yield::core::exact::exact_yield;
use soc_yield::defect::truncation::truncate_at;
use soc_yield::defect::{ComponentProbabilities, Empirical};
use soc_yield::sim::{MonteCarloYield, SimulationOptions};
use soc_yield::{analyze, analyze_direct, AnalysisOptions, Netlist};

/// F = x1·x2 + x3.
fn figure2_fault_tree() -> Netlist {
    let mut nl = Netlist::new();
    let x1 = nl.input("x1");
    let x2 = nl.input("x2");
    let x3 = nl.input("x3");
    let a = nl.and([x1, x2]);
    let f = nl.or([a, x3]);
    nl.set_output(f);
    nl
}

/// Hand enumeration of Y_M = Σ_{k≤M} Q'_k Y_k for Figure 2.
fn hand_yield(q: &[f64], p: &[f64], m: usize) -> f64 {
    let c = p.len();
    let mut total = 0.0;
    for (k, qk) in q.iter().enumerate().take(m + 1) {
        let combos = c.pow(k as u32);
        let mut yk = 0.0;
        for combo in 0..combos {
            let mut rest = combo;
            let mut failed = [false; 3];
            let mut weight = 1.0;
            for _ in 0..k {
                let comp = rest % c;
                rest /= c;
                failed[comp] = true;
                weight *= p[comp];
            }
            if !((failed[0] && failed[1]) || failed[2]) {
                yk += weight;
            }
        }
        total += qk * yk;
    }
    total
}

#[test]
fn figure2_yield_matches_hand_enumeration_exact_baseline_and_simulation() {
    let fault_tree = figure2_fault_tree();
    let p = [0.2, 0.3, 0.5];
    // At most two lethal defects ever occur, so truncating at M = 2 is exact.
    let q = [0.5, 0.3, 0.2];
    let components = ComponentProbabilities::new(p.to_vec()).unwrap();
    let lethal = Empirical::new(q.to_vec()).unwrap();
    let options = AnalysisOptions { fixed_truncation: Some(2), ..AnalysisOptions::default() };

    // Combinatorial method (coded ROBDD route).
    let analysis = analyze(&fault_tree, &components, &lethal, &options).unwrap();
    let expected = hand_yield(&q, &p, 2);
    assert!((analysis.report.yield_lower_bound - expected).abs() < 1e-12);

    // Direct ROMDD construction agrees node-for-node.
    let direct = analyze_direct(&fault_tree, &components, &lethal, &options).unwrap();
    assert_eq!(direct.report.romdd_size, analysis.report.romdd_size);
    assert!((direct.report.yield_lower_bound - expected).abs() < 1e-12);

    // Exact subset-lattice baseline.
    let truncation = truncate_at(&lethal, 2).unwrap();
    let exact = exact_yield(&fault_tree, &components, &truncation).unwrap();
    assert!((exact - expected).abs() < 1e-12);

    // Monte-Carlo simulation: only statistical error remains since the defect
    // count never exceeds the truncation point.
    let sim = MonteCarloYield::new(&fault_tree, &components, &lethal, SimulationOptions::default())
        .unwrap();
    let estimate = sim.run(300_000, 7);
    assert!(
        (estimate.yield_estimate - expected).abs() < 5.0 * estimate.standard_error + 1e-3,
        "Monte Carlo {} vs exact {expected}",
        estimate.yield_estimate
    );
}

#[test]
fn figure2_romdd_has_the_papers_variable_structure() {
    // Under the ordering v1, v2, w (the paper's Figure-2 ordering, i.e. `vw`),
    // the diagram tests three multiple-valued variables with domains 3, 3, 4.
    let fault_tree = figure2_fault_tree();
    let components = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
    let lethal = Empirical::new(vec![0.5, 0.3, 0.15]).unwrap();
    let spec =
        soc_yield::OrderingSpec::new(soc_yield::MvOrdering::Vw, soc_yield::GroupOrdering::MsbFirst)
            .unwrap();
    let options = AnalysisOptions { fixed_truncation: Some(2), spec, ..AnalysisOptions::default() };
    let analysis = analyze(&fault_tree, &components, &lethal, &options).unwrap();
    assert_eq!(analysis.mv_order, vec![1, 2, 0]);
    assert_eq!(analysis.mdd.domains(), &[3, 3, 4]);
    assert_eq!(analysis.mv_names, vec!["v1", "v2", "w"]);
    // The Figure-2 diagram has 7 non-terminal nodes; ours is the canonical
    // ROMDD of the same function under the same ordering, so it can only be
    // equal or smaller.
    let inner = analysis.mdd.inner_node_count(analysis.romdd_root);
    assert!((4..=7).contains(&inner), "unexpected ROMDD size {inner}");
}
