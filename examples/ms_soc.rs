//! Yield exploration of the MSn master/slave system-on-chip family.
//!
//! This is the workload the paper's introduction motivates: a designer
//! wants to know how the manufacturing yield of a bus-based fault-tolerant
//! SoC scales with the number of slave clusters and with the expected
//! defect density, and how much the built-in redundancy buys compared to a
//! non-redundant design.
//!
//! Run with: `cargo run --release --example ms_soc`

use soc_yield::benchmarks::ms;
use soc_yield::core::structures::series_yield;
use soc_yield::defect::truncation::select_truncation;
use soc_yield::defect::NegativeBinomial;
use soc_yield::{analyze, AnalysisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Yield of the MSn family (negative binomial defects, α = 4, P_L = 1)\n");
    println!(
        "{:<6} {:>4} {:>6} {:>12} {:>10} {:>12} {:>14}",
        "system", "C", "λ'", "M", "yield", "ROMDD", "series yield"
    );
    for n in [2usize, 4, 6] {
        let system = ms(n);
        let components = system.component_probabilities(1.0)?;
        for lambda in [1.0, 2.0] {
            // The λ' = 2 runs grow quickly with system size (the paper, too, only
            // reports MS2 and MS4 at the higher density); keep the example snappy.
            if lambda == 2.0 && n > 4 {
                continue;
            }
            let lethal = NegativeBinomial::new(lambda, 4.0)?.thinned(components.lethality())?;
            let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
            let analysis = analyze(&system.fault_tree, &components, &lethal, &options)?;
            // What the yield would be *without* any fault tolerance (series system
            // over the same components): every lethal defect is fatal.
            let truncation = select_truncation(&lethal, 1e-3)?;
            let unprotected = series_yield(&truncation);
            println!(
                "{:<6} {:>4} {:>6} {:>12} {:>10.4} {:>12} {:>14.4}",
                system.name,
                system.num_components(),
                lambda,
                analysis.report.truncation,
                analysis.report.yield_lower_bound,
                analysis.report.romdd_size,
                unprotected,
            );
        }
    }
    println!(
        "\nThe redundant architecture keeps the yield high even at two expected lethal \
         defects per chip, while an unprotected (series) design would only yield Q'_0."
    );
    Ok(())
}
