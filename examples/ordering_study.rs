//! Variable-ordering study on one benchmark instance.
//!
//! Decision-diagram sizes — and therefore the memory the method needs —
//! depend heavily on the variable order. This example reproduces, for a
//! single instance (ESEN4x2 at λ' = 1), the comparison behind the paper's
//! Tables 2 and 3: every multiple-valued variable ordering and every
//! bit-group ordering, plus the direct-ROMDD construction ablation.
//!
//! Run with: `cargo run --release --example ordering_study`

use soc_yield::benchmarks::esen;
use soc_yield::defect::NegativeBinomial;
use soc_yield::{
    analyze, analyze_direct, AnalysisOptions, GroupOrdering, MvOrdering, OrderingSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = esen(4, 2);
    let components = system.component_probabilities(1.0)?;
    let lethal = NegativeBinomial::new(1.0, 4.0)?.thinned(components.lethality())?;

    println!("Ordering study on {} (C = {})\n", system.name, system.num_components());
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>10}",
        "ordering", "ROBDD size", "ROBDD peak", "ROMDD size", "yield"
    );
    // Multiple-valued variable orderings (bit groups MSB-first), Table-2 style.
    for mv in MvOrdering::ALL {
        let spec = OrderingSpec::new(mv, GroupOrdering::MsbFirst)?;
        let options = AnalysisOptions { epsilon: 1e-3, spec, ..AnalysisOptions::default() };
        let analysis = analyze(&system.fault_tree, &components, &lethal, &options)?;
        println!(
            "{:<10} {:>14} {:>14} {:>12} {:>10.4}",
            spec.label(),
            analysis.report.coded_robdd_size,
            analysis.report.robdd_peak,
            analysis.report.romdd_size,
            analysis.report.yield_lower_bound
        );
    }
    // Bit-group orderings under the weight heuristic, Table-3 style.
    for group in [GroupOrdering::LsbFirst, GroupOrdering::Weight] {
        let spec = OrderingSpec::new(MvOrdering::Weight, group)?;
        let options = AnalysisOptions { epsilon: 1e-3, spec, ..AnalysisOptions::default() };
        let analysis = analyze(&system.fault_tree, &components, &lethal, &options)?;
        println!(
            "{:<10} {:>14} {:>14} {:>12} {:>10.4}",
            spec.label(),
            analysis.report.coded_robdd_size,
            analysis.report.robdd_peak,
            analysis.report.romdd_size,
            analysis.report.yield_lower_bound
        );
    }
    // Ablation: construct the ROMDD directly (no coded ROBDD).
    let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
    let direct = analyze_direct(&system.fault_tree, &components, &lethal, &options)?;
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>10.4}   (direct ROMDD construction)",
        "w/ml", "-", "-", direct.report.romdd_size, direct.report.yield_lower_bound
    );
    println!(
        "\nAll orderings yield the same value (the function is the same); only the \
         diagram sizes — and hence memory and time — differ."
    );
    Ok(())
}
