//! Quickstart: the paper's Figure-2 worked example, end to end.
//!
//! The fault tree is `F = x1·x2 + x3` (three components; the system fails
//! when component 3 fails or both 1 and 2 fail). Defects follow a negative
//! binomial distribution. The example prints the truncation point, the
//! decision-diagram sizes, the yield lower bound produced by the
//! combinatorial method, and cross-checks it against the exact baseline
//! and a Monte-Carlo simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use soc_yield::core::exact::exact_yield;
use soc_yield::defect::truncation::truncate_at;
use soc_yield::defect::{ComponentProbabilities, NegativeBinomial};
use soc_yield::sim::{MonteCarloYield, SimulationOptions};
use soc_yield::{analyze, AnalysisOptions, Netlist};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The fault tree F(x1, x2, x3) = x1·x2 + x3 of the paper's Figure 2.
    let mut fault_tree = Netlist::new();
    let x1 = fault_tree.input("x1");
    let x2 = fault_tree.input("x2");
    let x3 = fault_tree.input("x3");
    let pair = fault_tree.and([x1, x2]);
    let f = fault_tree.or([pair, x3]);
    fault_tree.set_output(f);

    // 2. The defect model: one expected lethal defect per chip, clustering
    //    parameter α = 4, and per-component hit probabilities P'.
    let components = ComponentProbabilities::new(vec![0.2, 0.3, 0.5])?;
    let lethal = NegativeBinomial::new(1.0, 4.0)?;

    // 3. Run the combinatorial method (coded ROBDD → ROMDD → probability).
    let analysis = analyze(&fault_tree, &components, &lethal, &AnalysisOptions::default())?;
    let report = &analysis.report;
    println!("truncation point M        : {}", report.truncation);
    println!("binary variables          : {}", report.binary_variables);
    println!("coded ROBDD size          : {} nodes", report.coded_robdd_size);
    println!("ROMDD size                : {} nodes", report.romdd_size);
    println!("yield lower bound Y_M     : {:.6}", report.yield_lower_bound);
    println!("guaranteed absolute error : {:.2e}", report.error_bound);

    // 4. Cross-check against the exact subset-lattice baseline...
    let truncation = truncate_at(&lethal, report.truncation)?;
    let exact = exact_yield(&fault_tree, &components, &truncation)?;
    println!("exact truncated yield     : {exact:.6}");

    // 5. ...and against a Monte-Carlo simulation (statistical error only).
    let sim =
        MonteCarloYield::new(&fault_tree, &components, &lethal, SimulationOptions::default())?;
    let estimate = sim.run(200_000, 42);
    let (lo, hi) = estimate.confidence_interval(1.96);
    println!(
        "Monte-Carlo estimate      : {:.6} (95% CI [{lo:.4}, {hi:.4}])",
        estimate.yield_estimate
    );

    // 6. The ROMDD itself can be exported for inspection.
    let dot = analysis.mdd.to_dot(analysis.romdd_root, Some(&analysis.mv_names));
    println!("\nROMDD in Graphviz DOT format ({} lines):", dot.lines().count());
    println!("{dot}");
    Ok(())
}
