//! Design-space exploration: how much redundancy is enough?
//!
//! A designer of an ESEN-based system-on-chip wants to know how the yield
//! responds to the defect density (λ) and to the defect clustering (α),
//! and whether investing area in the redundant switching elements pays
//! off. This example declares both studies as one [`SweepMatrix`] and
//! evaluates it on the parallel sweep engine — the kind of batch workload
//! the paper argues needs "precise error control" rather than simulation.
//!
//! The engine compiles each `(system, ordering)` configuration once (at
//! the largest truncation any of its points needs), answers every point
//! with a linear-time probability evaluation, and returns bit-identical
//! results for every worker count.
//!
//! Run with: `cargo run --release --example design_space -- [--threads N]`

use soc_yield::benchmarks::esen;
use soc_yield::defect::NegativeBinomial;
use soc_yield::ordering::{GroupOrdering, MvOrdering};
use soc_yield::{
    AnalysisOptions, NamedDistribution, OrderingSpec, Pipeline, SweepBlock, SweepMatrix,
    SystemSpec, TruncationRule,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::env::args()
        .skip_while(|a| a != "--threads")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    let system = esen(4, 2);
    let components = system.component_probabilities(1.0)?;
    let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };

    println!("Design-space study on {} (C = {})\n", system.name, system.num_components());

    // Declare both parameter studies as one sweep matrix: a λ grid at
    // fixed clustering and an α grid at fixed defect density.
    let lambdas = [0.25, 0.5, 1.0, 1.5, 2.0];
    let alphas = [0.5, 1.0, 2.0, 4.0, 8.0];
    let mut matrix = SweepMatrix::new();
    let mut lambda_block = SweepBlock::new();
    lambda_block.systems.push(SystemSpec::new(
        system.name.clone(),
        system.fault_tree.clone(),
        components.clone(),
    ));
    for &lambda in &lambdas {
        lambda_block.distributions.push(NamedDistribution::new(
            format!("λ'={lambda}"),
            NegativeBinomial::new(lambda, 4.0)?.thinned(components.lethality())?,
        ));
    }
    lambda_block.specs.push(options.spec);
    lambda_block.rules.push(TruncationRule::Epsilon(options.epsilon));
    matrix.add(lambda_block);
    let mut alpha_block = SweepBlock::new();
    alpha_block.systems.push(SystemSpec::new(
        system.name.clone(),
        system.fault_tree.clone(),
        components.clone(),
    ));
    for &alpha in &alphas {
        alpha_block.distributions.push(NamedDistribution::new(
            format!("α={alpha}"),
            NegativeBinomial::new(1.0, alpha)?.thinned(components.lethality())?,
        ));
    }
    alpha_block.specs.push(options.spec);
    alpha_block.rules.push(TruncationRule::Epsilon(options.epsilon));
    matrix.add(alpha_block);

    let outcome = matrix.run(threads);
    let reports = outcome.reports()?;
    let (lambda_reports, alpha_reports) = reports.split_at(lambdas.len());

    // Sweep the expected number of defects at fixed clustering.
    println!("Yield vs expected lethal defects (α = 4):");
    println!("{:>8} {:>6} {:>10} {:>12}", "λ'", "M", "yield", "error bound");
    for (lambda, report) in lambdas.iter().zip(lambda_reports) {
        println!(
            "{:>8} {:>6} {:>10.4} {:>12.1e}",
            lambda, report.truncation, report.yield_lower_bound, report.error_bound
        );
    }
    println!(
        "(one compiled diagram served all {} points: compiled M = {})",
        lambda_reports.len(),
        lambda_reports[0].compiled_truncation
    );

    // Sweep the clustering parameter at fixed defect density.
    println!("\nYield vs clustering parameter (λ' = 1):");
    println!("{:>8} {:>6} {:>10}", "α", "M", "yield");
    for (alpha, report) in alphas.iter().zip(alpha_reports) {
        println!("{:>8} {:>6} {:>10.4}", alpha, report.truncation, report.yield_lower_bound);
    }
    println!(
        "\nStronger clustering (small α) concentrates defects on fewer dies, which \
         *raises* the yield of the fault-tolerant design for the same defect density — \
         the effect the compound-Poisson defect models the paper builds on capture."
    );
    println!(
        "(engine: {} points in {} chunks on {} worker(s), wall clock {:.3} s — results are \
         bit-identical for any --threads value)",
        outcome.summary.points,
        outcome.summary.chunks,
        outcome.summary.threads,
        outcome.summary.wall_time.as_secs_f64(),
    );

    // Static vs sifted ordering: start from the mediocre `wv/ml` order and
    // let the managed kernel recover a good one by group sifting. (Two
    // evaluations on one serial Pipeline — the engine is overkill here.)
    println!("\nStatic vs dynamically sifted ordering (λ' = 1, base wv/ml):");
    let mut pipeline = Pipeline::new(&system.fault_tree, &components)?;
    let lethal = NegativeBinomial::new(1.0, 4.0)?.thinned(components.lethality())?;
    let base = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst)?;
    let fixed = pipeline.evaluate(&lethal, &AnalysisOptions { spec: base, ..options })?;
    let sifted =
        pipeline.evaluate(&lethal, &AnalysisOptions { spec: base.with_sifting(120), ..options })?;
    println!("{:<28} {:>12} {:>10}", "ordering", "coded ROBDD", "ROMDD");
    println!("{:<28} {:>12} {:>10}", fixed.spec.label(), fixed.coded_robdd_size, fixed.romdd_size);
    println!(
        "{:<28} {:>12} {:>10}",
        sifted.spec.label(),
        sifted.coded_robdd_size,
        sifted.romdd_size
    );
    println!(
        "(sifting shrank the coded ROBDD from {} to {} nodes; the yields agree to {:.1e})",
        sifted.presift_robdd_size.expect("sifted run records the pre-sift size"),
        sifted.coded_robdd_size,
        (fixed.yield_lower_bound - sifted.yield_lower_bound).abs()
    );
    Ok(())
}
