//! Design-space exploration: how much redundancy is enough?
//!
//! A designer of an ESEN-based system-on-chip wants to know how the yield
//! responds to the defect density (λ) and to the defect clustering (α),
//! and whether investing area in the redundant switching elements pays
//! off. This example sweeps both parameters with the combinatorial method
//! and prints yield curves — the kind of study the paper argues needs
//! "precise error control" rather than simulation.
//!
//! Both sweeps run through one [`Pipeline`], which compiles the coded
//! ROBDD / ROMDD once (at the largest truncation any point needs) and
//! answers every point with a linear-time probability evaluation.
//!
//! Run with: `cargo run --release --example design_space`

use soc_yield::benchmarks::esen;
use soc_yield::defect::NegativeBinomial;
use soc_yield::ordering::{GroupOrdering, MvOrdering};
use soc_yield::{AnalysisOptions, DefectDistribution, OrderingSpec, Pipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = esen(4, 2);
    let components = system.component_probabilities(1.0)?;
    let mut pipeline = Pipeline::new(&system.fault_tree, &components)?;
    let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };

    println!("Design-space study on {} (C = {})\n", system.name, system.num_components());

    // Sweep the expected number of defects at fixed clustering.
    println!("Yield vs expected lethal defects (α = 4):");
    println!("{:>8} {:>6} {:>10} {:>12}", "λ'", "M", "yield", "error bound");
    let lambdas = [0.25, 0.5, 1.0, 1.5, 2.0];
    let lambda_dists = lambdas
        .iter()
        .map(|&lambda| Ok(NegativeBinomial::new(lambda, 4.0)?.thinned(components.lethality())?))
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
    let reports = pipeline
        .sweep_distributions(lambda_dists.iter().map(|d| d as &dyn DefectDistribution), &options)?;
    for (lambda, report) in lambdas.iter().zip(&reports) {
        println!(
            "{:>8} {:>6} {:>10.4} {:>12.1e}",
            lambda, report.truncation, report.yield_lower_bound, report.error_bound
        );
    }
    println!(
        "(one compiled diagram served all {} points: compiled M = {})",
        reports.len(),
        reports[0].compiled_truncation
    );

    // Sweep the clustering parameter at fixed defect density.
    println!("\nYield vs clustering parameter (λ' = 1):");
    println!("{:>8} {:>6} {:>10}", "α", "M", "yield");
    let alphas = [0.5, 1.0, 2.0, 4.0, 8.0];
    let alpha_dists = alphas
        .iter()
        .map(|&alpha| Ok(NegativeBinomial::new(1.0, alpha)?.thinned(components.lethality())?))
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?;
    let reports = pipeline
        .sweep_distributions(alpha_dists.iter().map(|d| d as &dyn DefectDistribution), &options)?;
    for (alpha, report) in alphas.iter().zip(&reports) {
        println!("{:>8} {:>6} {:>10.4}", alpha, report.truncation, report.yield_lower_bound);
    }
    println!(
        "\nStronger clustering (small α) concentrates defects on fewer dies, which \
         *raises* the yield of the fault-tolerant design for the same defect density — \
         the effect the compound-Poisson defect models the paper builds on capture."
    );

    // Static vs sifted ordering: start from the mediocre `wv/ml` order and
    // let the managed kernel recover a good one by group sifting.
    println!("\nStatic vs dynamically sifted ordering (λ' = 1, base wv/ml):");
    let lethal = NegativeBinomial::new(1.0, 4.0)?.thinned(components.lethality())?;
    let base = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst)?;
    let fixed = pipeline.evaluate(&lethal, &AnalysisOptions { spec: base, ..options })?;
    let sifted =
        pipeline.evaluate(&lethal, &AnalysisOptions { spec: base.with_sifting(120), ..options })?;
    println!("{:<28} {:>12} {:>10}", "ordering", "coded ROBDD", "ROMDD");
    println!("{:<28} {:>12} {:>10}", fixed.spec.label(), fixed.coded_robdd_size, fixed.romdd_size);
    println!(
        "{:<28} {:>12} {:>10}",
        sifted.spec.label(),
        sifted.coded_robdd_size,
        sifted.romdd_size
    );
    println!(
        "(sifting shrank the coded ROBDD from {} to {} nodes; the yields agree to {:.1e})",
        sifted.presift_robdd_size.expect("sifted run records the pre-sift size"),
        sifted.coded_robdd_size,
        (fixed.yield_lower_bound - sifted.yield_lower_bound).abs()
    );
    Ok(())
}
