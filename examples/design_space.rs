//! Design-space exploration: how much redundancy is enough?
//!
//! A designer of an ESEN-based system-on-chip wants to know how the yield
//! responds to the defect density (λ) and to the defect clustering (α),
//! and whether investing area in the redundant switching elements pays
//! off. This example sweeps both parameters with the combinatorial method
//! and prints yield curves — the kind of study the paper argues needs
//! "precise error control" rather than simulation.
//!
//! Run with: `cargo run --release --example design_space`

use soc_yield::benchmarks::esen;
use soc_yield::defect::NegativeBinomial;
use soc_yield::{analyze, AnalysisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = esen(4, 2);
    let components = system.component_probabilities(1.0)?;

    println!("Design-space study on {} (C = {})\n", system.name, system.num_components());

    // Sweep the expected number of defects at fixed clustering.
    println!("Yield vs expected lethal defects (α = 4):");
    println!("{:>8} {:>6} {:>10} {:>12}", "λ'", "M", "yield", "error bound");
    for lambda in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let lethal = NegativeBinomial::new(lambda, 4.0)?.thinned(components.lethality())?;
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let analysis = analyze(&system.fault_tree, &components, &lethal, &options)?;
        println!(
            "{:>8} {:>6} {:>10.4} {:>12.1e}",
            lambda,
            analysis.report.truncation,
            analysis.report.yield_lower_bound,
            analysis.report.error_bound
        );
    }

    // Sweep the clustering parameter at fixed defect density.
    println!("\nYield vs clustering parameter (λ' = 1):");
    println!("{:>8} {:>6} {:>10}", "α", "M", "yield");
    for alpha in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let lethal = NegativeBinomial::new(1.0, alpha)?.thinned(components.lethality())?;
        let options = AnalysisOptions { epsilon: 1e-3, ..AnalysisOptions::default() };
        let analysis = analyze(&system.fault_tree, &components, &lethal, &options)?;
        println!(
            "{:>8} {:>6} {:>10.4}",
            alpha, analysis.report.truncation, analysis.report.yield_lower_bound
        );
    }
    println!(
        "\nStronger clustering (small α) concentrates defects on fewer dies, which \
         *raises* the yield of the fault-tolerant design for the same defect density — \
         the effect the compound-Poisson defect models the paper builds on capture."
    );
    Ok(())
}
