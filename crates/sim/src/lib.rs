//! Monte-Carlo yield simulation.
//!
//! The paper motivates the combinatorial method by noting that simulation
//! "tends to be expensive and does not provide strict error control". This
//! crate implements that baseline so the claim can be examined: defects are
//! sampled from the lethal-defect model and the fault tree is evaluated on
//! the sampled failure pattern, yielding an estimate of `Y` together with
//! its standard error and a confidence interval — statistical error bars
//! rather than the method's guaranteed absolute bound.
//!
//! # Example
//!
//! ```
//! use socy_faulttree::Netlist;
//! use socy_defect::{ComponentProbabilities, NegativeBinomial};
//! use socy_sim::{MonteCarloYield, SimulationOptions};
//!
//! let mut f = Netlist::new();
//! let a = f.input("a");
//! let b = f.input("b");
//! let both = f.and([a, b]);
//! f.set_output(both);
//! let comps = ComponentProbabilities::new(vec![0.5, 0.5])?;
//! let lethal = NegativeBinomial::new(1.0, 0.25)?;
//! let sim = MonteCarloYield::new(&f, &comps, &lethal, SimulationOptions::default())?;
//! let estimate = sim.run(20_000, 42);
//! assert!(estimate.yield_estimate > 0.0 && estimate.yield_estimate < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use socy_defect::truncation::select_truncation_capped;
use socy_defect::{ComponentProbabilities, DefectDistribution, DefectError};
use socy_faulttree::{Netlist, NetlistError};

/// Options controlling the Monte-Carlo simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationOptions {
    /// Probability mass beyond which the lethal-defect count distribution
    /// is truncated when building the sampling table (the `ε` handed to
    /// [`socy_defect::truncation::select_truncation_capped`]).
    pub tail_tolerance: f64,
    /// Hard cap on the number of lethal defects representable by the
    /// sampling table.
    pub max_defects: usize,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        Self { tail_tolerance: 1e-12, max_defects: 4096 }
    }
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldEstimate {
    /// Fraction of sampled chips that were functioning.
    pub yield_estimate: f64,
    /// Standard error of the estimate (`sqrt(p(1-p)/n)`).
    pub standard_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

impl YieldEstimate {
    /// A symmetric normal-approximation confidence interval at `z` standard
    /// errors (e.g. `z = 1.96` for ~95%), clamped to `[0, 1]`.
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        let half = z * self.standard_error;
        ((self.yield_estimate - half).max(0.0), (self.yield_estimate + half).min(1.0))
    }
}

/// A prepared Monte-Carlo yield simulator for one system.
#[derive(Debug, Clone)]
pub struct MonteCarloYield {
    fault_tree: Netlist,
    /// Cumulative distribution of the lethal-defect count.
    count_cdf: Vec<f64>,
    /// Cumulative distribution of the component hit by a lethal defect.
    component_cdf: Vec<f64>,
}

/// Errors produced when preparing a simulation.
#[derive(Debug)]
pub enum SimError {
    /// The fault tree is malformed.
    FaultTree(NetlistError),
    /// The defect model is malformed.
    Defect(DefectError),
    /// Component count mismatch between fault tree and probability model.
    ComponentCountMismatch {
        /// Inputs of the fault tree.
        fault_tree: usize,
        /// Entries of the component model.
        components: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::FaultTree(e) => write!(f, "fault tree error: {e}"),
            SimError::Defect(e) => write!(f, "defect model error: {e}"),
            SimError::ComponentCountMismatch { fault_tree, components } => write!(
                f,
                "fault tree has {fault_tree} components but the probability model has {components}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::FaultTree(e)
    }
}

impl From<DefectError> for SimError {
    fn from(e: DefectError) -> Self {
        SimError::Defect(e)
    }
}

impl MonteCarloYield {
    /// Prepares a simulator for `fault_tree` under the lethal-defect model
    /// `(lethal, components)`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the fault tree has no output, the
    /// component counts disagree, or the defect-count distribution cannot
    /// be truncated within `options.max_defects`.
    pub fn new(
        fault_tree: &Netlist,
        components: &ComponentProbabilities,
        lethal: &dyn DefectDistribution,
        options: SimulationOptions,
    ) -> Result<Self, SimError> {
        fault_tree.output()?;
        if fault_tree.num_inputs() != components.len() {
            return Err(SimError::ComponentCountMismatch {
                fault_tree: fault_tree.num_inputs(),
                components: components.len(),
            });
        }
        // The sampling table is the truncated lethal-defect distribution; reuse
        // the method's own truncation-point selection instead of re-deriving it.
        let truncation =
            select_truncation_capped(lethal, options.tail_tolerance, options.max_defects)?;
        let mut count_cdf = Vec::with_capacity(truncation.truncation() + 1);
        let mut acc = 0.0;
        for &q in truncation.masses() {
            acc += q;
            count_cdf.push(acc.min(1.0));
        }
        let mut component_cdf = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for i in 0..components.len() {
            acc += components.conditional(i);
            component_cdf.push(acc.min(1.0));
        }
        Ok(Self { fault_tree: fault_tree.clone(), count_cdf, component_cdf })
    }

    /// Draws `samples` chips with the given RNG `seed` and returns the
    /// yield estimate.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn run(&self, samples: usize, seed: u64) -> YieldEstimate {
        assert!(samples > 0, "at least one sample is required");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut functioning = 0usize;
        let mut failed = vec![false; self.fault_tree.num_inputs()];
        for _ in 0..samples {
            failed.iter_mut().for_each(|f| *f = false);
            let defects = sample_cdf(&self.count_cdf, rng.gen::<f64>());
            for _ in 0..defects {
                let component = sample_cdf(&self.component_cdf, rng.gen::<f64>());
                failed[component] = true;
            }
            if !self.fault_tree.eval_output(&failed) {
                functioning += 1;
            }
        }
        let p = functioning as f64 / samples as f64;
        YieldEstimate {
            yield_estimate: p,
            standard_error: (p * (1.0 - p) / samples as f64).sqrt(),
            samples,
        }
    }
}

/// Inverse-CDF sampling: the smallest index whose cumulative probability
/// exceeds `u`.
fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    match cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
        Ok(i) => (i + 1).min(cdf.len() - 1),
        Err(i) => i.min(cdf.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socy_defect::{Empirical, NegativeBinomial, Poisson};

    fn one_of_two() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let f = nl.and([a, b]);
        nl.set_output(f);
        nl
    }

    #[test]
    fn estimates_match_closed_form_for_one_of_two() {
        // With exactly one lethal defect per chip the 1-of-2 system always survives;
        // with a point mass at 2 it fails iff the two defects hit different components.
        let nl = one_of_two();
        let comps = ComponentProbabilities::new(vec![0.5, 0.5]).unwrap();
        let always_one = Empirical::point_mass(1);
        let sim =
            MonteCarloYield::new(&nl, &comps, &always_one, SimulationOptions::default()).unwrap();
        let est = sim.run(5000, 1);
        assert_eq!(est.yield_estimate, 1.0);

        let always_two = Empirical::point_mass(2);
        let sim =
            MonteCarloYield::new(&nl, &comps, &always_two, SimulationOptions::default()).unwrap();
        let est = sim.run(200_000, 2);
        // True yield = P(both defects on the same component) = 0.5.
        assert!((est.yield_estimate - 0.5).abs() < 0.01, "{}", est.yield_estimate);
        assert!(est.standard_error > 0.0);
        let (lo, hi) = est.confidence_interval(3.0);
        assert!(lo <= 0.5 && 0.5 <= hi);
    }

    #[test]
    fn estimate_converges_to_analytic_yield() {
        // Series system of 3 components: yield = Q'_0.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..3).map(|i| nl.input(format!("x{i}"))).collect();
        let f = nl.or(inputs);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![1.0 / 3.0; 3]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.25).unwrap();
        let sim = MonteCarloYield::new(&nl, &comps, &lethal, SimulationOptions::default()).unwrap();
        let est = sim.run(200_000, 7);
        let expect = lethal.pmf(0);
        assert!(
            (est.yield_estimate - expect).abs() < 4.0 * est.standard_error + 1e-3,
            "estimate {} vs expected {expect}",
            est.yield_estimate
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = one_of_two();
        let comps = ComponentProbabilities::new(vec![0.3, 0.7]).unwrap();
        let lethal = Poisson::new(1.5).unwrap();
        let sim = MonteCarloYield::new(&nl, &comps, &lethal, SimulationOptions::default()).unwrap();
        assert_eq!(sim.run(10_000, 99).yield_estimate, sim.run(10_000, 99).yield_estimate);
        // Different seeds (almost surely) differ.
        assert_ne!(sim.run(10_000, 1).yield_estimate, sim.run(10_000, 2).yield_estimate);
    }

    #[test]
    fn validation_errors() {
        let nl = one_of_two();
        let wrong = ComponentProbabilities::new(vec![1.0]).unwrap();
        let lethal = Poisson::new(1.0).unwrap();
        assert!(matches!(
            MonteCarloYield::new(&nl, &wrong, &lethal, SimulationOptions::default()),
            Err(SimError::ComponentCountMismatch { .. })
        ));
        let no_output = Netlist::new();
        let comps = ComponentProbabilities::new(vec![1.0]).unwrap();
        assert!(MonteCarloYield::new(&no_output, &comps, &lethal, SimulationOptions::default())
            .is_err());
        let err = SimError::ComponentCountMismatch { fault_tree: 2, components: 1 };
        assert!(format!("{err}").contains("2"));
    }

    #[test]
    fn sample_cdf_boundaries() {
        let cdf = vec![0.25, 0.75, 1.0];
        assert_eq!(sample_cdf(&cdf, 0.0), 0);
        assert_eq!(sample_cdf(&cdf, 0.2), 0);
        assert_eq!(sample_cdf(&cdf, 0.3), 1);
        assert_eq!(sample_cdf(&cdf, 0.9), 2);
        assert_eq!(sample_cdf(&cdf, 1.0), 2);
    }
}
