//! `serve` — the yield-analysis daemon.
//!
//! Reads line-delimited JSON requests on stdin and writes one JSON
//! response per line on stdout, in request order. A blank input line
//! flushes the pending batch (all uncached requests of a batch run as one
//! parallel sweep); EOF flushes and exits. See the `socy_serve` crate
//! docs and the repository README for the request schema.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use serde::Serialize;
use socy_serve::{CompileOptions, ServiceConfig, YieldService};

const USAGE_HEAD: &str = "\
Usage: serve [--threads N] [--cache-node-budget NODES] [--record PATH]
             [compile options]

Reads line-delimited JSON requests on stdin; a blank line flushes the
pending batch, EOF flushes and exits. Writes one JSON response per line
on stdout, in request order.

  --threads N            worker threads for uncached requests (0 = all cores; default 0)
  --cache-node-budget N  live-node budget of the pipeline cache (0 = unbounded);
                         distinct from --node-budget, which caps each governed
                         compilation
  --record PATH          additionally write every response into PATH as one
                         pretty-printed JSON array (for anchor_check replays)";

fn usage() -> String {
    format!("{USAGE_HEAD}\n{}", CompileOptions::CLI_HELP)
}

fn main() -> ExitCode {
    let mut config = ServiceConfig::default();
    let mut record: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match config.options.parse_cli_flag(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(message) => return usage_error(&message),
        }
        match arg.as_str() {
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.threads = n,
                None => return usage_error("--threads requires an integer"),
            },
            "--cache-node-budget" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(0) => config.node_budget = None,
                Some(n) => config.node_budget = Some(n),
                None => return usage_error("--cache-node-budget requires an integer"),
            },
            "--record" => match args.next() {
                Some(path) => record = Some(path),
                None => return usage_error("--record requires a path"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let mut service = YieldService::new(config);
    let mut recorded: Vec<serde::Value> = Vec::new();
    let mut batch: Vec<String> = Vec::new();
    for line in io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            flush(&mut service, &mut batch, &mut recorded, record.is_some());
        } else {
            batch.push(line);
        }
    }
    flush(&mut service, &mut batch, &mut recorded, record.is_some());

    if let Some(path) = record {
        let text = serde::Value::Array(recorded).to_pretty_string();
        if let Err(error) = std::fs::write(&path, text + "\n") {
            eprintln!("serve: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("serve: {message}\n{}", usage());
    ExitCode::from(2)
}

/// Serves the pending batch: one response line per request, flushed so a
/// pipe-connected client can read the answers before sending more.
fn flush(
    service: &mut YieldService,
    batch: &mut Vec<String>,
    recorded: &mut Vec<serde::Value>,
    record: bool,
) {
    if batch.is_empty() {
        return;
    }
    let responses = {
        let lines: Vec<&str> = batch.iter().map(String::as_str).collect();
        service.handle_batch(&lines)
    };
    batch.clear();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for response in &responses {
        let _ = writeln!(out, "{}", response.to_json_line());
    }
    let _ = out.flush();
    if record {
        recorded.extend(responses.iter().map(Serialize::to_json));
    }
}
