//! The line-delimited JSON wire protocol of the yield service.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line, in request order. The request's `type` field
//! selects the operation (`analyze`, `sweep` or `stats`; `analyze` when
//! absent); the response's `kind` field echoes it (`error` for failures).
//!
//! Everything here is pure wire shape — resolving a request against the
//! benchmark registry and the decision-diagram pipeline lives in
//! [`crate::service`].

use std::time::Duration;

use serde::{DeError, Value};

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Evaluate one system under one truncation rule.
    Analyze(EvalRequest),
    /// Evaluate one system under a list of `ε` values (one compilation,
    /// many linear-time evaluations — the paper's compile-once economics).
    Sweep(EvalRequest),
    /// Evaluate a family of what-if deltas against one base system (one
    /// report per delta). Against a resident base pipeline the family
    /// needs no compilation at all (`"compiled":"delta"`).
    AnalyzeDelta(EvalRequest),
    /// Report service counters and cache statistics.
    Stats {
        /// Client-chosen identifier echoed back in the response.
        id: Option<String>,
    },
    /// Abort the current batch: every uncached evaluation of the batch
    /// fails fast with a `cancelled` error instead of compiling to
    /// completion (answers already produced are unaffected).
    Cancel {
        /// Client-chosen identifier echoed back in the response.
        id: Option<String>,
    },
}

impl serde::Deserialize for Request {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        let kind = match value.get("type") {
            None => "analyze",
            Some(v) => {
                v.as_str().ok_or_else(|| DeError::expected("a string", v).in_field("type"))?
            }
        };
        match kind {
            "analyze" => Ok(Request::Analyze(EvalRequest::from_json(value)?)),
            "sweep" => Ok(Request::Sweep(EvalRequest::from_json(value)?)),
            "analyze_delta" => Ok(Request::AnalyzeDelta(EvalRequest::from_json(value)?)),
            "stats" | "cancel" => {
                let id = match value.get("id") {
                    None => None,
                    Some(v) => Option::<String>::from_json(v).map_err(|e| e.in_field("id"))?,
                };
                Ok(if kind == "stats" { Request::Stats { id } } else { Request::Cancel { id } })
            }
            other => Err(DeError(format!(
                "unknown request type `{other}` (expected `analyze`, `sweep`, `analyze_delta`, \
                 `stats` or `cancel`)"
            ))),
        }
    }
}

/// Body shared by `analyze` and `sweep` requests.
#[derive(Debug, Clone, serde::Deserialize)]
pub struct EvalRequest {
    /// Client-chosen identifier echoed back in the response.
    pub id: Option<String>,
    /// The system under analysis: `{"benchmark": "MS2"}` (optionally with
    /// `"lethality"`) or an inline `{"name", "netlist", "components"}`
    /// object — see [`crate::service::resolve_system`].
    pub system: Value,
    /// The lethal-defect distribution.
    pub distribution: DistributionSpec,
    /// Absolute error requirement `ε` (analyze; default `1e-4`).
    pub epsilon: Option<f64>,
    /// The `ε` values of a sweep (required for `sweep`, one compilation
    /// serves them all).
    pub epsilons: Option<Vec<f64>>,
    /// Analyze exactly `M` lethal defects instead of deriving `M` from
    /// `ε` (analyze only).
    pub fixed_truncation: Option<usize>,
    /// Variable-ordering label, e.g. `w/ml` (default) or `wv/lm+sift` —
    /// the format of [`socy_ordering::OrderingSpec::label`].
    pub ordering: Option<String>,
    /// Sifting growth bound in percent (≥ 100); implies sifting on top of
    /// `ordering`.
    pub sift_max_growth: Option<u32>,
    /// Coded-ROBDD → ROMDD conversion: `top_down` (default) or `layered`.
    pub conversion: Option<String>,
    /// What-if variants of the base system (`analyze_delta` only, one
    /// report per entry). Each entry is
    /// `{"name", "overrides": [{"component": <index|input name>,
    /// "probability": P}], "netlist": <variant fault tree>}` with
    /// `overrides` and `netlist` both optional — see
    /// [`crate::service::resolve_delta`].
    pub deltas: Option<Vec<Value>>,
    /// Per-request wall-clock budget in milliseconds for the compilation
    /// this request may trigger. `0` skips compilation entirely and
    /// answers with Monte-Carlo confidence bounds
    /// (`"fidelity":"bounds"`); a positive budget compiles under a
    /// deadline and degrades to bounds when it expires.
    pub timeout_ms: Option<u64>,
    /// Per-request node budget for the compilation this request may
    /// trigger; over-budget requests degrade to Monte-Carlo bounds.
    pub node_budget: Option<u64>,
}

/// Wire description of a lethal-defect distribution.
#[derive(Debug, Clone, serde::Deserialize)]
pub struct DistributionSpec {
    /// `negative_binomial`, `poisson`, `empirical` or `panic` (a
    /// fault-injection distribution whose `pmf` unwinds, for testing the
    /// daemon's containment).
    pub kind: String,
    /// Mean number of lethal defects (`negative_binomial`, `poisson`).
    pub lambda: Option<f64>,
    /// Clustering parameter `α` (`negative_binomial`).
    pub alpha: Option<f64>,
    /// Explicit probability masses `P[K = k]` (`empirical`).
    pub masses: Option<Vec<f64>>,
}

/// One response line. Every field is always present (absent values are
/// `null`), so replayed sessions diff cleanly against pinned fixtures;
/// `latency_seconds` is volatile by the `*_seconds` convention of the
/// anchor checker.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Response {
    /// The request's `id`, echoed (null for unparseable requests).
    pub id: Option<String>,
    /// `analyze`, `sweep`, `stats` or `error`.
    pub kind: String,
    /// Whether the request succeeded.
    pub ok: bool,
    /// How the evaluation obtained its compiled pipeline: `cold` (compiled
    /// by this request), `cached` (served from the LRU with zero
    /// compilation), `recompiled` (cached pipeline had to extend its
    /// truncation or retain its ROBDD manager) or `delta` (a what-if
    /// family answered entirely on the resident base — zero
    /// compilations). Null for stats/error responses.
    pub compiled: Option<String>,
    /// One report per evaluated design point (one for `analyze`, one per
    /// `ε` for `sweep`).
    pub reports: Option<Vec<ReportBody>>,
    /// The error message of a failed request.
    pub error: Option<String>,
    /// Whether the failure was a caught panic (the daemon survived it).
    pub panicked: Option<bool>,
    /// Total requests the service has accepted (stats responses).
    pub requests_served: Option<u64>,
    /// The service's active [`soc_yield_core::CompileOptions`] knobs
    /// (stats responses).
    pub options: Option<OptionsBody>,
    /// Resource-governor counters (stats responses).
    pub governor: Option<GovernorBody>,
    /// Pipeline-cache counters at response time.
    pub cache: Option<CacheBody>,
    /// Wall-clock time spent serving this request (volatile).
    pub latency_seconds: f64,
}

/// Resource-governance counters carried on stats responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct GovernorBody {
    /// Governed compilations that exceeded a node budget or deadline.
    pub budget_exceeded: u64,
    /// Requests answered at non-exact fidelity (degraded rungs or
    /// Monte-Carlo bounds).
    pub degraded: u64,
    /// Evaluations aborted by a batch cancellation.
    pub cancelled: u64,
}

/// The compile-option knobs echoed on stats responses — the wire view of
/// [`soc_yield_core::CompileOptions`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct OptionsBody {
    /// Worker threads inside each compilation.
    pub compile_threads: usize,
    /// Sequential-grain cutoff of the parallel compile sections
    /// (`0` = manager default).
    pub compile_grain: usize,
    /// Whether compilations use complemented edges in the ROBDD kernel.
    pub complement_edges: bool,
    /// Pinned op-cache capacity in slots (`0` = manager default).
    pub op_cache_capacity: usize,
}

impl From<soc_yield_core::CompileOptions> for OptionsBody {
    fn from(options: soc_yield_core::CompileOptions) -> Self {
        Self {
            compile_threads: options.compile_threads(),
            compile_grain: options.compile_grain(),
            complement_edges: options.complement_edges(),
            op_cache_capacity: options.op_cache_capacity(),
        }
    }
}

impl Response {
    /// A successful evaluation response.
    pub fn eval(
        kind: &str,
        id: Option<String>,
        compiled: &str,
        reports: Vec<ReportBody>,
        cache: CacheBody,
        latency: Duration,
    ) -> Self {
        Response {
            id,
            kind: kind.to_string(),
            ok: true,
            compiled: Some(compiled.to_string()),
            reports: Some(reports),
            error: None,
            panicked: None,
            requests_served: None,
            options: None,
            governor: None,
            cache: Some(cache),
            latency_seconds: latency.as_secs_f64(),
        }
    }

    /// A failure response (parse errors, resolution errors, failed or
    /// panicked evaluations).
    pub fn failure(
        id: Option<String>,
        message: String,
        panicked: bool,
        cache: Option<CacheBody>,
        latency: Duration,
    ) -> Self {
        Response {
            id,
            kind: "error".to_string(),
            ok: false,
            compiled: None,
            reports: None,
            error: Some(message),
            panicked: Some(panicked),
            requests_served: None,
            options: None,
            governor: None,
            cache,
            latency_seconds: latency.as_secs_f64(),
        }
    }

    /// A stats response.
    pub fn stats(
        id: Option<String>,
        requests_served: u64,
        options: OptionsBody,
        governor: GovernorBody,
        cache: CacheBody,
        latency: Duration,
    ) -> Self {
        Response {
            id,
            kind: "stats".to_string(),
            ok: true,
            compiled: None,
            reports: None,
            error: None,
            panicked: None,
            requests_served: Some(requests_served),
            options: Some(options),
            governor: Some(governor),
            cache: Some(cache),
            latency_seconds: latency.as_secs_f64(),
        }
    }

    /// The acknowledgement of a `cancel` request.
    pub fn cancelled(id: Option<String>, cache: CacheBody, latency: Duration) -> Self {
        Response {
            id,
            kind: "cancel".to_string(),
            ok: true,
            compiled: None,
            reports: None,
            error: None,
            panicked: None,
            requests_served: None,
            options: None,
            governor: None,
            cache: Some(cache),
            latency_seconds: latency.as_secs_f64(),
        }
    }

    /// Renders the response as one compact JSON line (no newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("responses serialize infallibly")
    }
}

/// The deterministic subset of a [`soc_yield_core::YieldReport`] carried
/// on the wire (timing fields are omitted — latency is reported at the
/// response level, where the anchor checker knows to ignore it).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReportBody {
    /// Lower bound on the yield, `Σ_{k≤M} P[K=k]·P[system works | k]`.
    pub yield_lower_bound: f64,
    /// Upper bound on the truncation error, `1 − Σ_{k≤M} P[K=k]`.
    pub error_bound: f64,
    /// Truncation point `M` used for this evaluation.
    pub truncation: usize,
    /// Truncation point the resident diagram is compiled at (`≥ M`:
    /// evaluations below it are answered by zero-padding).
    pub compiled_truncation: usize,
    /// Number of components `C`.
    pub num_components: usize,
    /// Gates in the generalized fault tree `G`.
    pub g_gates: usize,
    /// Binary variables of the coded ROBDD.
    pub binary_variables: usize,
    /// Nodes of the coded ROBDD.
    pub coded_robdd_size: usize,
    /// Coded-ROBDD size before dynamic sifting (sifted specs only).
    pub presift_robdd_size: Option<usize>,
    /// Peak node count of the ROBDD manager.
    pub robdd_peak: usize,
    /// Nodes of the ROMDD.
    pub romdd_size: usize,
    /// Live (post-GC) nodes of the ROMDD manager — the quantity the
    /// cache budget charges for.
    pub romdd_live_nodes: usize,
    /// Variable-ordering label (e.g. `w/ml+sift`).
    pub ordering: String,
    /// Conversion algorithm label (`top_down` or `layered`).
    pub conversion: String,
    /// Truncation-rule label (e.g. `ε=1e-3` or `M=6`).
    pub rule: String,
    /// Name of the what-if delta this report evaluates (`analyze_delta`
    /// responses; null otherwise).
    pub delta: Option<String>,
    /// How the answer was obtained: `exact` (the requested options),
    /// `degraded:<rung>` (a cheaper exact variant) or `bounds`
    /// (Monte-Carlo confidence interval — `yield_lower_bound` is the
    /// lower confidence limit and `error_bound` the interval width).
    pub fidelity: String,
}

/// Pipeline-cache and service counters carried on stats (and every
/// evaluation) response.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CacheBody {
    /// Lookups served from a resident pipeline.
    pub hits: u64,
    /// Lookups that required compilation.
    pub misses: u64,
    /// Pipelines inserted.
    pub insertions: u64,
    /// Pipelines evicted by the live-node budget.
    pub evictions: u64,
    /// Pipelines currently resident.
    pub resident: usize,
    /// Summed live (post-GC) ROMDD nodes of the residents.
    pub live_nodes: usize,
    /// The configured live-node budget (null = unbounded).
    pub budget: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn parse(text: &str) -> Result<Request, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        Request::from_json(&value).map_err(|e| e.to_string())
    }

    #[test]
    fn requests_parse_by_type_with_analyze_default() {
        let body = r#""system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":1.0}"#;
        assert!(matches!(parse(&format!("{{{body}}}")).unwrap(), Request::Analyze(_)));
        assert!(matches!(
            parse(&format!(r#"{{"type":"analyze",{body}}}"#)).unwrap(),
            Request::Analyze(_)
        ));
        let sweep =
            parse(&format!(r#"{{"type":"sweep","id":"s1","epsilons":[1e-2,1e-3],{body}}}"#))
                .unwrap();
        match sweep {
            Request::Sweep(req) => {
                assert_eq!(req.id.as_deref(), Some("s1"));
                assert_eq!(req.epsilons, Some(vec![1e-2, 1e-3]));
                assert_eq!(req.distribution.kind, "poisson");
                assert_eq!(req.distribution.lambda, Some(1.0));
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        match parse(r#"{"type":"stats","id":"z"}"#).unwrap() {
            Request::Stats { id } => assert_eq!(id.as_deref(), Some("z")),
            other => panic!("expected stats, got {other:?}"),
        }
        match parse(r#"{"type":"cancel","id":"c"}"#).unwrap() {
            Request::Cancel { id } => assert_eq!(id.as_deref(), Some("c")),
            other => panic!("expected cancel, got {other:?}"),
        }
    }

    #[test]
    fn resource_overrides_parse_on_eval_requests() {
        let body = r#""system":{"benchmark":"MS2"},"distribution":{"kind":"poisson","lambda":1.0}"#;
        let governed =
            parse(&format!(r#"{{"id":"g","timeout_ms":250,"node_budget":4096,{body}}}"#)).unwrap();
        match governed {
            Request::Analyze(req) => {
                assert_eq!(req.timeout_ms, Some(250));
                assert_eq!(req.node_budget, Some(4096));
            }
            other => panic!("expected analyze, got {other:?}"),
        }
        match parse(&format!("{{{body}}}")).unwrap() {
            Request::Analyze(req) => {
                assert_eq!(req.timeout_ms, None);
                assert_eq!(req.node_budget, None);
            }
            other => panic!("expected analyze, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_report_readable_errors() {
        let err = parse(r#"{"type":"frobnicate"}"#).unwrap_err();
        assert!(err.contains("unknown request type"), "{err}");
        let err = parse(r#"{"type":7}"#).unwrap_err();
        assert!(err.contains("field `type`"), "{err}");
        let err = parse(r#"{"type":"analyze","system":{"benchmark":"MS2"}}"#).unwrap_err();
        assert!(err.contains("distribution"), "{err}");
        assert!(parse("not json").is_err());
    }

    #[test]
    fn responses_render_as_single_compact_lines() {
        let cache = CacheBody {
            hits: 1,
            misses: 2,
            insertions: 2,
            evictions: 0,
            resident: 2,
            live_nodes: 64,
            budget: Some(65536),
        };
        let line = Response::eval(
            "analyze",
            Some("r1".to_string()),
            "cached",
            Vec::new(),
            cache,
            Duration::from_millis(3),
        )
        .to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.contains(r#""kind":"analyze""#));
        assert!(line.contains(r#""compiled":"cached""#));
        assert!(line.contains(r#""hits":1"#));
        let err =
            Response::failure(None, "boom".to_string(), true, None, Duration::ZERO).to_json_line();
        assert!(err.contains(r#""ok":false"#));
        assert!(err.contains(r#""panicked":true"#));
        assert!(err.contains(r#""id":null"#));
    }
}
