//! A long-running yield-analysis service over line-delimited JSON.
//!
//! The paper's central economic argument is *compile once, evaluate
//! many*: building the coded ROBDD and converting it to an ROMDD is the
//! expensive step, after which every yield evaluation is a linear-time
//! walk. A batch tool realizes that only within one invocation; this
//! crate turns it into a daemon. The `serve` binary reads JSON requests
//! from stdin (one per line; a blank line flushes a batch, EOF flushes
//! and exits) and answers each on stdout, keeping compiled
//! [`Pipeline`](soc_yield_core::Pipeline)s in an LRU cache keyed by
//! `(system, ordering spec, conversion)` and bounded by the residents'
//! summed live ROMDD nodes.
//!
//! * [`protocol`] — the wire types ([`Request`], [`Response`], …).
//! * [`service`] — [`YieldService`]: resolution, batching, caching and
//!   fault containment (a panicking request yields an `error` response;
//!   the daemon and all concurrent requests keep going).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod service;

pub use protocol::{
    CacheBody, DistributionSpec, EvalRequest, GovernorBody, OptionsBody, ReportBody, Request,
    Response,
};
pub use service::{
    conversion_label, parse_conversion, resolve_delta, resolve_distribution, resolve_system,
    PanicDistribution, PipelineKey, ServiceConfig, YieldService, DEFAULT_NODE_BUDGET,
};
pub use soc_yield_core::{CancelToken, CompileOptions};
