//! The yield service: resolves wire requests against the benchmark
//! registry, batches uncached requests into one [`SweepMatrix`] run, and
//! serves repeated configurations from a compiled-pipeline LRU cache.
//!
//! # Caching
//!
//! Pipelines are keyed by [`PipelineKey`] — the system identity, the
//! variable-ordering specification and the conversion algorithm; exactly
//! the coordinates that determine the compiled diagrams. The defect
//! distribution and the truncation rule are *not* part of the key: a
//! diagram compiled at truncation `M` answers every request with `M' ≤ M`
//! by zero-padding, and larger `M'` extend the resident diagram in place
//! (reported as `recompiled`). Eviction charges each resident its live
//! (post-GC) ROMDD nodes against a configurable budget, least recently
//! used first.
//!
//! # Fault containment
//!
//! Uncached requests run through the executor, which already catches
//! unwinds per chunk; a panicking request yields an `error` response with
//! `panicked: true` while concurrent requests in the same batch complete
//! normally. Cache hits evaluate on the daemon thread inside
//! [`std::panic::catch_unwind`]; a panicked hit additionally drops the
//! resident pipeline, since its diagrams may be half-updated.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use serde::{Deserialize, Value};
use soc_yield_core::{
    AnalysisOptions, CancelToken, CompileOptions, ConversionAlgorithm, CoreError, DdError,
    DegradeLadder, Pipeline, SystemDelta, YieldReport,
};
use socy_benchmarks::paper_benchmarks;
use socy_defect::{
    ComponentProbabilities, DefectDistribution, Empirical, NegativeBinomial, Poisson,
};
use socy_exec::{
    NamedDistribution, PipelineLru, SharedDistribution, SweepBlock, SweepMatrix, SystemSpec,
    TruncationRule,
};
use socy_faulttree::Netlist;
use socy_ordering::OrderingSpec;

use crate::protocol::{
    CacheBody, DistributionSpec, EvalRequest, GovernorBody, OptionsBody, ReportBody, Request,
    Response,
};

/// Default live-node budget of the pipeline cache (the bench harness uses
/// the same bound for its `Runner`).
pub const DEFAULT_NODE_BUDGET: usize = 1 << 16;

/// Construction parameters of a [`YieldService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads for uncached requests (`0` = available parallelism).
    pub threads: usize,
    /// Live-node budget of the pipeline cache (`None` = unbounded).
    pub node_budget: Option<usize>,
    /// The kernel knobs every compilation runs under (compile threads,
    /// parallel grain, complemented edges, op-cache capacity) — one
    /// [`CompileOptions`] value instead of mirrored per-knob fields.
    /// Never part of the cache key: compiled diagrams and yields are
    /// bit-identical at every setting (see [`SweepMatrix::options`]).
    pub options: CompileOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            node_budget: Some(DEFAULT_NODE_BUDGET),
            options: CompileOptions::default(),
        }
    }
}

/// The coordinates that determine a compiled pipeline — the cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PipelineKey {
    /// Canonical system identity: `benchmark:<name>:pl=<bits>` for
    /// registry systems, `inline:<name>:<component bits>:<canonical
    /// netlist>` for inline ones (probabilities enter as exact `f64` bit
    /// patterns, so "the same system" means bit-identical inputs).
    pub system: String,
    /// Variable-ordering specification the pipeline compiles under.
    pub spec: OrderingSpec,
    /// Coded-ROBDD → ROMDD conversion algorithm.
    pub conversion: ConversionAlgorithm,
}

/// A fault-injection distribution whose `pmf` unwinds. Requests naming
/// `{"kind": "panic"}` exercise the daemon's panic containment end to
/// end: the request fails with `panicked: true`, everything else keeps
/// working.
#[derive(Debug, Clone, Copy)]
pub struct PanicDistribution;

impl DefectDistribution for PanicDistribution {
    fn pmf(&self, _k: usize) -> f64 {
        panic!("deliberate fault injection: the `panic` distribution unwound")
    }

    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Resolves the `conversion` wire label.
///
/// # Errors
///
/// Returns a readable message for unknown labels.
pub fn parse_conversion(label: &str) -> Result<ConversionAlgorithm, String> {
    match label {
        "top_down" => Ok(ConversionAlgorithm::TopDown),
        "layered" => Ok(ConversionAlgorithm::Layered),
        other => Err(format!("unknown conversion `{other}` (expected `top_down` or `layered`)")),
    }
}

/// The wire label of a conversion algorithm (inverse of
/// [`parse_conversion`]).
pub fn conversion_label(conversion: ConversionAlgorithm) -> &'static str {
    match conversion {
        ConversionAlgorithm::TopDown => "top_down",
        ConversionAlgorithm::Layered => "layered",
    }
}

/// Resolves a request's `system` object into a [`SystemSpec`] plus its
/// canonical identity string (the system part of the [`PipelineKey`]).
///
/// Accepted shapes: `{"benchmark": "MS2"}` with an optional `"lethality"`
/// (default `1.0`), or an inline `{"name", "netlist", "components"}`
/// object whose netlist uses the `socy-faulttree` textual format.
///
/// # Errors
///
/// Returns a readable message for unknown benchmarks, malformed netlists
/// and invalid probabilities.
pub fn resolve_system(system: &Value) -> Result<(SystemSpec, String), String> {
    if let Some(benchmark) = system.get("benchmark") {
        let name =
            benchmark.as_str().ok_or_else(|| "field `benchmark` must be a string".to_string())?;
        let lethality = match system.get("lethality") {
            None => 1.0,
            Some(v) => {
                v.as_f64().ok_or_else(|| "field `lethality` must be a number".to_string())?
            }
        };
        let found = paper_benchmarks().into_iter().find(|b| b.name == name).ok_or_else(|| {
            let known: Vec<String> = paper_benchmarks().into_iter().map(|b| b.name).collect();
            format!("unknown benchmark `{name}` (expected one of {})", known.join(", "))
        })?;
        let components = found.component_probabilities(lethality).map_err(|e| e.to_string())?;
        let identity = format!("benchmark:{name}:pl={:016x}", lethality.to_bits());
        Ok((SystemSpec::new(found.name.clone(), found.fault_tree, components), identity))
    } else if system.get("netlist").is_some() {
        let name = system.get("name").and_then(Value::as_str).unwrap_or("inline");
        let text = system
            .get("netlist")
            .and_then(Value::as_str)
            .ok_or_else(|| "field `netlist` must be a string".to_string())?;
        let netlist = Netlist::from_text(text).map_err(|e| format!("invalid netlist: {e}"))?;
        let raw: Vec<f64> = match system.get("components") {
            None => return Err("inline systems require a `components` array".to_string()),
            Some(v) => Deserialize::from_json(v).map_err(|e| format!("field `components`: {e}"))?,
        };
        // The identity uses the *re-serialized* netlist, so formatting
        // variations of the same structure share one cache entry.
        let canonical = netlist.to_text().map_err(|e| format!("invalid netlist: {e}"))?;
        let bits: String = raw.iter().map(|p| format!("{:016x}", p.to_bits())).collect();
        let components = ComponentProbabilities::new(raw).map_err(|e| e.to_string())?;
        let identity = format!("inline:{name}:{bits}:{canonical}");
        Ok((SystemSpec::new(name, netlist, components), identity))
    } else {
        Err("field `system` must be {\"benchmark\": <name>} or \
             {\"name\", \"netlist\", \"components\"}"
            .to_string())
    }
}

/// Resolves a wire [`DistributionSpec`] into a boxed distribution plus a
/// display label.
///
/// # Errors
///
/// Returns a readable message for unknown kinds, missing parameters and
/// invalid parameter values.
pub fn resolve_distribution(
    spec: &DistributionSpec,
) -> Result<(Box<dyn SharedDistribution>, String), String> {
    let need = |field: &str, v: Option<f64>| {
        v.ok_or_else(|| format!("distribution `{}` requires `{field}`", spec.kind))
    };
    match spec.kind.as_str() {
        "negative_binomial" => {
            let lambda = need("lambda", spec.lambda)?;
            let alpha = need("alpha", spec.alpha)?;
            let dist = NegativeBinomial::new(lambda, alpha).map_err(|e| e.to_string())?;
            Ok((Box::new(dist), format!("nb(λ'={lambda},α={alpha})")))
        }
        "poisson" => {
            let lambda = need("lambda", spec.lambda)?;
            let dist = Poisson::new(lambda).map_err(|e| e.to_string())?;
            Ok((Box::new(dist), format!("poisson(λ'={lambda})")))
        }
        "empirical" => {
            let masses = spec
                .masses
                .clone()
                .ok_or_else(|| "distribution `empirical` requires `masses`".to_string())?;
            let dist = Empirical::new(masses).map_err(|e| e.to_string())?;
            Ok((Box::new(dist), "empirical".to_string()))
        }
        "panic" => Ok((Box::new(PanicDistribution), "panic".to_string())),
        other => Err(format!(
            "unknown distribution kind `{other}` (expected `negative_binomial`, `poisson`, \
             `empirical` or `panic`)"
        )),
    }
}

/// Resolves one entry of a request's `deltas` array into a
/// [`SystemDelta`] against the base system's fault tree.
///
/// Accepted shape: `{"name": <label>, "overrides": [{"component":
/// <index or input name>, "probability": P}], "netlist": <variant
/// netlist text>}` — `overrides` and `netlist` are both optional (an
/// entry with neither re-evaluates the unmodified base system).
///
/// # Errors
///
/// Returns a readable message for missing names, unknown component
/// names, out-of-range probabilities and malformed variant netlists.
pub fn resolve_delta(value: &Value, base: &Netlist) -> Result<SystemDelta, String> {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| "each delta requires a string `name`".to_string())?;
    let mut delta = SystemDelta::named(name);
    if let Some(overrides) = value.get("overrides") {
        let entries = overrides
            .as_array()
            .ok_or_else(|| "delta field `overrides` must be an array".to_string())?;
        for entry in entries {
            let probability = entry
                .get("probability")
                .and_then(Value::as_f64)
                .ok_or_else(|| "each override requires a numeric `probability`".to_string())?;
            let component = entry
                .get("component")
                .ok_or_else(|| "each override requires a `component`".to_string())?;
            let index = if let Some(i) = component.as_u64() {
                i as usize
            } else if let Some(input) = component.as_str() {
                base.var_by_name(input)
                    .ok_or_else(|| format!("delta `{name}`: unknown component `{input}`"))?
                    .index()
            } else {
                return Err(
                    "override field `component` must be an index or an input name".to_string()
                );
            };
            delta = delta.with_component_probability(index, probability);
        }
    }
    if let Some(netlist) = value.get("netlist") {
        let text =
            netlist.as_str().ok_or_else(|| "delta field `netlist` must be a string".to_string())?;
        let variant = Netlist::from_text(text)
            .map_err(|e| format!("delta `{name}`: invalid netlist: {e}"))?;
        delta = delta.with_fault_tree(variant);
    }
    Ok(delta)
}

/// A fully resolved evaluation request, ready to hit the cache or the
/// executor.
struct EvalPlan {
    id: Option<String>,
    kind: &'static str,
    key: PipelineKey,
    system: SystemSpec,
    distribution: Box<dyn SharedDistribution>,
    dist_label: String,
    /// The wire distribution the request named, kept so a resource-failed
    /// evaluation can re-resolve it for the Monte-Carlo bounds fallback.
    dist_spec: DistributionSpec,
    rules: Vec<TruncationRule>,
    deltas: Vec<SystemDelta>,
    /// Per-request wall-clock budget (`Some(0)` = answer with bounds
    /// without compiling at all).
    timeout_ms: Option<u64>,
    /// Per-request node budget for the triggered compilation.
    node_budget: Option<u64>,
}

impl EvalPlan {
    /// Whether the request carries per-request resource limits and must
    /// take the governed direct path instead of the shared batch matrix.
    fn governed(&self) -> bool {
        self.timeout_ms.is_some() || self.node_budget.is_some()
    }
}

fn resolve(kind: &'static str, req: EvalRequest) -> Result<EvalPlan, String> {
    let (system, identity) = resolve_system(&req.system)?;
    if (req.timeout_ms.is_some() || req.node_budget.is_some()) && kind == "analyze_delta" {
        return Err("per-request `timeout_ms`/`node_budget` are not supported on `analyze_delta` \
             (the Monte-Carlo fallback cannot answer what-if families)"
            .to_string());
    }
    let deltas = match (kind, &req.deltas) {
        ("analyze_delta", Some(entries)) if !entries.is_empty() => entries
            .iter()
            .map(|v| resolve_delta(v, &system.fault_tree))
            .collect::<Result<Vec<_>, String>>()?,
        ("analyze_delta", _) => {
            return Err("analyze_delta requests require a non-empty `deltas` array".to_string())
        }
        (_, Some(_)) => {
            return Err("field `deltas` is only valid on type `analyze_delta`".to_string())
        }
        (_, None) => Vec::new(),
    };
    let (distribution, dist_label) = resolve_distribution(&req.distribution)?;
    let mut spec = OrderingSpec::parse(req.ordering.as_deref().unwrap_or("w/ml"))
        .map_err(|e| e.to_string())?;
    if let Some(growth) = req.sift_max_growth {
        if growth < 100 {
            return Err(format!("sift_max_growth must be at least 100 percent, got {growth}"));
        }
        spec = spec.with_sifting(growth);
    }
    let conversion = match req.conversion.as_deref() {
        None => ConversionAlgorithm::TopDown,
        Some(label) => parse_conversion(label)?,
    };
    let rules = match kind {
        "sweep" => {
            if req.epsilon.is_some() || req.fixed_truncation.is_some() {
                return Err(
                    "sweep requests take `epsilons`, not `epsilon`/`fixed_truncation`".to_string()
                );
            }
            match req.epsilons {
                Some(epsilons) if !epsilons.is_empty() => {
                    epsilons.into_iter().map(TruncationRule::Epsilon).collect()
                }
                _ => return Err("sweep requests require a non-empty `epsilons` array".to_string()),
            }
        }
        _analyze => {
            if req.epsilons.is_some() {
                return Err(
                    "analyze requests take `epsilon`; use type `sweep` for `epsilons`".to_string()
                );
            }
            match (req.fixed_truncation, req.epsilon) {
                (Some(_), Some(_)) => {
                    return Err("specify `epsilon` or `fixed_truncation`, not both".to_string())
                }
                (Some(m), None) => vec![TruncationRule::Fixed(m)],
                (None, epsilon) => vec![TruncationRule::Epsilon(
                    epsilon.unwrap_or(AnalysisOptions::default().epsilon),
                )],
            }
        }
    };
    Ok(EvalPlan {
        id: req.id,
        kind,
        key: PipelineKey { system: identity, spec, conversion },
        system,
        distribution,
        dist_label,
        dist_spec: req.distribution,
        rules,
        deltas,
        timeout_ms: req.timeout_ms,
        node_budget: req.node_budget,
    })
}

fn report_body(
    report: &YieldReport,
    conversion: ConversionAlgorithm,
    rule: &TruncationRule,
    delta: Option<String>,
) -> ReportBody {
    ReportBody {
        yield_lower_bound: report.yield_lower_bound,
        error_bound: report.error_bound,
        truncation: report.truncation,
        compiled_truncation: report.compiled_truncation,
        num_components: report.num_components,
        g_gates: report.g_gates,
        binary_variables: report.binary_variables,
        coded_robdd_size: report.coded_robdd_size,
        presift_robdd_size: report.presift_robdd_size,
        robdd_peak: report.robdd_peak,
        romdd_size: report.romdd_size,
        romdd_live_nodes: report.romdd_stats.live_nodes,
        ordering: report.spec.label(),
        conversion: conversion_label(conversion).to_string(),
        rule: rule.label(),
        delta,
        fidelity: report.fidelity.tag(),
    }
}

/// Extracts the human-readable message of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Bookkeeping for one uncached request while its block runs through the
/// executor. Carries enough of the resolved request (system, wire
/// distribution, rules) to retry a resource-failed evaluation as a
/// Monte-Carlo bounds fallback without the consumed plan.
struct MissMeta {
    at: usize,
    id: Option<String>,
    kind: &'static str,
    key: PipelineKey,
    points: usize,
    system: SystemSpec,
    dist_spec: DistributionSpec,
    rules: Vec<TruncationRule>,
    has_deltas: bool,
}

/// The long-running yield-analysis service behind the `serve` binary: a
/// [`PipelineLru`] of compiled pipelines plus the batching logic that
/// turns concurrent uncached requests into one parallel
/// [`SweepMatrix`] run.
pub struct YieldService {
    cache: PipelineLru<PipelineKey>,
    threads: usize,
    options: CompileOptions,
    requests_served: u64,
    governor: GovernorBody,
    /// Cancellation token of the batch currently being served; a `cancel`
    /// request (or an external holder of [`YieldService::cancel_token`])
    /// cancels it, failing the batch's in-flight and pending governed
    /// compilations fast. Re-armed at the start of every batch.
    batch_cancel: CancelToken,
}

impl YieldService {
    /// Creates a service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            cache: PipelineLru::new(config.node_budget),
            threads: config.threads,
            options: config.options,
            requests_served: 0,
            governor: GovernorBody::default(),
            batch_cancel: CancelToken::new(),
        }
    }

    /// The cancellation token of the batch currently being served.
    /// Cancelling it (e.g. from a signal handler when the client hangs
    /// up mid-batch) aborts the batch's governed compilations; the
    /// affected requests answer with `cancelled` errors. The token is
    /// replaced at the start of every batch, so a cancelled batch does
    /// not poison the next one.
    pub fn cancel_token(&self) -> CancelToken {
        self.batch_cancel.clone()
    }

    /// Resource-governance counters accumulated over the service's
    /// lifetime (also carried on `stats` responses).
    pub fn governor_counters(&self) -> GovernorBody {
        self.governor
    }

    /// The compile options every compilation runs under.
    pub fn options(&self) -> CompileOptions {
        self.options
    }

    /// The pipeline cache (for inspection; the service owns mutation).
    pub fn cache(&self) -> &PipelineLru<PipelineKey> {
        &self.cache
    }

    /// Total requests accepted so far, including malformed ones.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Serves one request line (a single-request batch).
    pub fn handle_line(&mut self, line: &str) -> Response {
        self.handle_batch(&[line]).pop().expect("one response per request")
    }

    /// Serves a batch of request lines, returning one response per line
    /// in request order.
    ///
    /// Within a batch: cache hits are answered on the calling thread;
    /// all misses are gathered into one [`SweepMatrix`] (one block per
    /// request, so a failing request cannot affect the others) and
    /// executed on the worker pool; `stats` requests are answered last,
    /// so their counters reflect the whole batch.
    pub fn handle_batch(&mut self, lines: &[&str]) -> Vec<Response> {
        // Fresh token per batch: a cancelled batch must not poison the
        // next one.
        self.batch_cancel = CancelToken::new();
        let mut responses: Vec<Option<Response>> = Vec::new();
        responses.resize_with(lines.len(), || None);
        let mut misses: Vec<(usize, EvalPlan)> = Vec::new();
        let mut stats_requests: Vec<(usize, Option<String>, Instant)> = Vec::new();
        for (at, line) in lines.iter().enumerate() {
            let started = Instant::now();
            self.requests_served += 1;
            let request =
                serde_json::from_str(line).map_err(|e| format!("invalid request: {e}")).and_then(
                    |value| Request::from_json(&value).map_err(|e| format!("invalid request: {e}")),
                );
            match request {
                Err(message) => {
                    responses[at] = Some(Response::failure(
                        None,
                        message,
                        false,
                        Some(self.cache_body()),
                        started.elapsed(),
                    ));
                }
                Ok(Request::Stats { id }) => stats_requests.push((at, id, started)),
                Ok(Request::Cancel { id }) => {
                    self.batch_cancel.cancel();
                    responses[at] =
                        Some(Response::cancelled(id, self.cache_body(), started.elapsed()));
                }
                Ok(Request::Analyze(req)) => {
                    self.route(at, "analyze", req, started, &mut responses, &mut misses);
                }
                Ok(Request::Sweep(req)) => {
                    self.route(at, "sweep", req, started, &mut responses, &mut misses);
                }
                Ok(Request::AnalyzeDelta(req)) => {
                    self.route(at, "analyze_delta", req, started, &mut responses, &mut misses);
                }
            }
        }
        self.run_misses(misses, &mut responses);
        for (at, id, started) in stats_requests {
            responses[at] = Some(Response::stats(
                id,
                self.requests_served,
                OptionsBody::from(self.options),
                self.governor,
                self.cache_body(),
                started.elapsed(),
            ));
        }
        responses.into_iter().map(|r| r.expect("every request receives a response")).collect()
    }

    fn cache_body(&self) -> CacheBody {
        let stats = self.cache.stats();
        CacheBody {
            hits: stats.hits,
            misses: stats.misses,
            insertions: stats.insertions,
            evictions: stats.evictions,
            resident: self.cache.len(),
            live_nodes: self.cache.live_nodes(),
            budget: self.cache.budget(),
        }
    }

    fn route(
        &mut self,
        at: usize,
        kind: &'static str,
        req: EvalRequest,
        started: Instant,
        responses: &mut [Option<Response>],
        misses: &mut Vec<(usize, EvalPlan)>,
    ) {
        let id = req.id.clone();
        match resolve(kind, req) {
            Err(message) => {
                responses[at] = Some(Response::failure(
                    id,
                    message,
                    false,
                    Some(self.cache_body()),
                    started.elapsed(),
                ));
            }
            // A zero time budget asks for statistical bounds without
            // touching the diagrams at all — not even a cache hit.
            Ok(plan) if plan.timeout_ms == Some(0) => {
                responses[at] = Some(self.evaluate_governed(&plan, started));
            }
            // `get` counts the request's one hit or miss and refreshes
            // the LRU position; later accesses go through the uncounted
            // `peek` path.
            Ok(plan) => {
                if self.cache.get(&plan.key).is_some() {
                    responses[at] = Some(self.evaluate_hit(&plan, started));
                } else if plan.governed() {
                    // Per-request limits cannot ride the shared batch
                    // matrix (its compilations share one CompileOptions);
                    // compile under the request's own governor instead.
                    responses[at] = Some(self.evaluate_governed(&plan, started));
                } else {
                    misses.push((at, plan));
                }
            }
        }
    }

    /// Evaluates a request under its own resource limits, degrading to
    /// Monte-Carlo confidence bounds when the governed compilation
    /// exceeds them (`timeout_ms: 0` goes straight to bounds). The
    /// compiled pipeline is deliberately not cached: a budget-truncated
    /// compile is not representative of the configuration.
    fn evaluate_governed(&mut self, plan: &EvalPlan, started: Instant) -> Response {
        let mut options = self.options;
        if let Some(budget) = plan.node_budget {
            options = options.with_node_budget(budget as usize);
        }
        if let Some(deadline) = plan.timeout_ms {
            options = options.with_deadline_ms(deadline);
        }
        // Bounds-only ladder: whether an intermediate exact rung fits a
        // budget depends on thread count and machine speed, but the
        // Monte-Carlo bounds are deterministic — so governed responses
        // can be pinned as fixtures.
        let ladder = DegradeLadder::bounds_only();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut pipeline =
                Pipeline::with_options(&plan.system.fault_tree, &plan.system.components, options)?;
            pipeline.set_cancel_token(Some(self.batch_cancel.clone()));
            let lethal: &dyn DefectDistribution = &*plan.distribution;
            let mut reports = Vec::with_capacity(plan.rules.len());
            for rule in &plan.rules {
                let analysis = rule.options(plan.key.spec, plan.key.conversion);
                let report = if plan.timeout_ms == Some(0) {
                    pipeline.evaluate_bounds(lethal, &analysis, &ladder)?
                } else {
                    pipeline.evaluate_governed(lethal, &analysis, &ladder)?
                };
                reports.push(report_body(&report, plan.key.conversion, rule, None));
            }
            Ok::<Vec<ReportBody>, CoreError>(reports)
        }));
        match outcome {
            Ok(Ok(reports)) => {
                let degraded = reports.iter().filter(|r| r.fidelity != "exact").count() as u64;
                self.governor.degraded += degraded;
                if degraded > 0 && plan.timeout_ms != Some(0) {
                    // A non-exact answer under a positive budget means a
                    // governed compile tripped its limit.
                    self.governor.budget_exceeded += 1;
                }
                Response::eval(
                    plan.kind,
                    plan.id.clone(),
                    "governed",
                    reports,
                    self.cache_body(),
                    started.elapsed(),
                )
            }
            Ok(Err(error)) => {
                if matches!(error, CoreError::Resource(DdError::Cancelled)) {
                    self.governor.cancelled += 1;
                }
                Response::failure(
                    plan.id.clone(),
                    error.to_string(),
                    false,
                    Some(self.cache_body()),
                    started.elapsed(),
                )
            }
            Err(payload) => Response::failure(
                plan.id.clone(),
                panic_message(payload.as_ref()),
                true,
                Some(self.cache_body()),
                started.elapsed(),
            ),
        }
    }

    /// Evaluates a request on the resident pipeline — no compilation
    /// unless the request's truncation exceeds what the diagram was
    /// compiled at (then the extension is reported as `recompiled`).
    /// Delta requests that resolve entirely against the resident diagram
    /// (incremental rebuilds and swap-only re-evaluations) are reported
    /// as `delta`.
    fn evaluate_hit(&mut self, plan: &EvalPlan, started: Instant) -> Response {
        let compiles_before = self.cache.peek(&plan.key).map_or(0, Pipeline::compiles);
        let outcome = {
            let pipeline = self.cache.peek_mut(&plan.key).expect("hit: the key was just found");
            let lethal: &dyn DefectDistribution = &*plan.distribution;
            catch_unwind(AssertUnwindSafe(|| {
                plan.rules
                    .iter()
                    .map(|rule| {
                        let options = rule.options(plan.key.spec, plan.key.conversion);
                        if plan.deltas.is_empty() {
                            pipeline
                                .evaluate(lethal, &options)
                                .map(|report| {
                                    vec![report_body(&report, plan.key.conversion, rule, None)]
                                })
                                .map_err(|e| e.to_string())
                        } else {
                            pipeline
                                .sweep_deltas(lethal, &options, &plan.deltas)
                                .map(|reports| {
                                    reports
                                        .iter()
                                        .zip(&plan.deltas)
                                        .map(|(report, delta)| {
                                            report_body(
                                                report,
                                                plan.key.conversion,
                                                rule,
                                                Some(delta.name().to_string()),
                                            )
                                        })
                                        .collect()
                                })
                                .map_err(|e| e.to_string())
                        }
                    })
                    .collect::<Result<Vec<Vec<_>>, String>>()
                    .map(|nested| nested.into_iter().flatten().collect::<Vec<_>>())
            }))
        };
        match outcome {
            Ok(Ok(reports)) => {
                let compiles_after = self.cache.peek(&plan.key).map_or(0, Pipeline::compiles);
                let compiled = if compiles_after != compiles_before {
                    "recompiled"
                } else if plan.deltas.is_empty() {
                    "cached"
                } else {
                    "delta"
                };
                Response::eval(
                    plan.kind,
                    plan.id.clone(),
                    compiled,
                    reports,
                    self.cache_body(),
                    started.elapsed(),
                )
            }
            Ok(Err(message)) => Response::failure(
                plan.id.clone(),
                message,
                false,
                Some(self.cache_body()),
                started.elapsed(),
            ),
            Err(payload) => {
                // A panicked evaluation may leave the resident diagrams
                // half-updated; drop the pipeline rather than trust it.
                self.cache.remove(&plan.key);
                Response::failure(
                    plan.id.clone(),
                    panic_message(payload.as_ref()),
                    true,
                    Some(self.cache_body()),
                    started.elapsed(),
                )
            }
        }
    }

    /// Runs every uncached request of the batch as one [`SweepMatrix`] —
    /// one block per request, so the executor's per-chunk containment
    /// maps failures back to exactly one response — and inserts the kept
    /// pipelines into the cache.
    fn run_misses(&mut self, misses: Vec<(usize, EvalPlan)>, responses: &mut [Option<Response>]) {
        if misses.is_empty() {
            return;
        }
        let started = Instant::now();
        let mut matrix = SweepMatrix::new();
        matrix.options = self.options;
        matrix.cancel = Some(self.batch_cancel.clone());
        let mut metas: Vec<MissMeta> = Vec::with_capacity(misses.len());
        for (at, plan) in misses {
            let EvalPlan {
                id,
                kind,
                key,
                system,
                distribution,
                dist_label,
                dist_spec,
                rules,
                deltas,
                ..
            } = plan;
            let mut block = SweepBlock::new();
            block.systems.push(system.clone());
            block.distributions.push(NamedDistribution { name: dist_label, distribution });
            block.specs.push(key.spec);
            block.conversions.push(key.conversion);
            metas.push(MissMeta {
                at,
                id,
                kind,
                key,
                points: rules.len() * deltas.len().max(1),
                system,
                dist_spec,
                rules: rules.clone(),
                has_deltas: !deltas.is_empty(),
            });
            block.rules = rules;
            block.deltas = deltas;
            matrix.add(block);
        }
        let (outcome, pipelines) = matrix.run_keeping_pipelines(self.threads);
        let elapsed = started.elapsed();
        for kept in pipelines {
            // Blocks are 1:1 with misses, so the block index recovers the
            // request's key.
            self.cache.insert(metas[kept.block].key.clone(), kept.pipeline);
        }
        let mut offset = 0;
        for (block, meta) in metas.iter().enumerate() {
            let points = &outcome.points[offset..offset + meta.points];
            offset += meta.points;
            let chunk_error = outcome.summary.chunk_errors.iter().find(|c| c.block == block);
            let response = if let Some(chunk) = chunk_error {
                if chunk.resource && self.batch_cancel.is_cancelled() {
                    self.governor.cancelled += 1;
                } else if chunk.resource {
                    self.governor.budget_exceeded += 1;
                }
                // An over-budget (but not cancelled) compilation degrades
                // to Monte-Carlo bounds instead of failing the request.
                let fallback = if chunk.resource && !self.batch_cancel.is_cancelled() {
                    self.bounds_fallback(meta, elapsed)
                } else {
                    None
                };
                fallback.unwrap_or_else(|| {
                    Response::failure(
                        meta.id.clone(),
                        chunk.message.clone(),
                        chunk.panicked,
                        Some(self.cache_body()),
                        elapsed,
                    )
                })
            } else {
                match points.iter().map(|p| p.result.as_ref()).collect::<Result<Vec<_>, _>>() {
                    Ok(reports) => Response::eval(
                        meta.kind,
                        meta.id.clone(),
                        "cold",
                        reports
                            .iter()
                            .zip(points)
                            .map(|(r, p)| {
                                report_body(
                                    r,
                                    meta.key.conversion,
                                    &p.labels.rule,
                                    p.labels.delta.clone(),
                                )
                            })
                            .collect(),
                        self.cache_body(),
                        elapsed,
                    ),
                    Err(error) => Response::failure(
                        meta.id.clone(),
                        error.message.clone(),
                        false,
                        Some(self.cache_body()),
                        elapsed,
                    ),
                }
            };
            responses[meta.at] = Some(response);
        }
    }

    /// Answers a resource-failed uncached request with Monte-Carlo
    /// confidence bounds (`"fidelity":"bounds"`). Returns `None` when the
    /// fallback itself cannot apply — what-if families have no
    /// simulation equivalent, and a distribution that no longer resolves
    /// should surface the original resource error.
    fn bounds_fallback(
        &mut self,
        meta: &MissMeta,
        elapsed: std::time::Duration,
    ) -> Option<Response> {
        if meta.has_deltas {
            return None;
        }
        let (distribution, _) = resolve_distribution(&meta.dist_spec).ok()?;
        let pipeline = Pipeline::new(&meta.system.fault_tree, &meta.system.components).ok()?;
        let ladder = DegradeLadder::bounds_only();
        let lethal: &dyn DefectDistribution = &*distribution;
        let mut reports = Vec::with_capacity(meta.rules.len());
        for rule in &meta.rules {
            let analysis = rule.options(meta.key.spec, meta.key.conversion);
            let report = pipeline.evaluate_bounds(lethal, &analysis, &ladder).ok()?;
            reports.push(report_body(&report, meta.key.conversion, rule, None));
        }
        self.governor.degraded += reports.len() as u64;
        Some(Response::eval(
            meta.kind,
            meta.id.clone(),
            "bounds",
            reports,
            self.cache_body(),
            elapsed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_labels_round_trip() {
        for conversion in [ConversionAlgorithm::TopDown, ConversionAlgorithm::Layered] {
            assert_eq!(parse_conversion(conversion_label(conversion)).unwrap(), conversion);
        }
        assert!(parse_conversion("sideways").unwrap_err().contains("unknown conversion"));
    }

    #[test]
    fn system_resolution_builds_canonical_identities() {
        let bench = serde_json::from_str(r#"{"benchmark":"MS2"}"#).unwrap();
        let (spec, identity) = resolve_system(&bench).unwrap();
        assert_eq!(spec.name, "MS2");
        assert_eq!(identity, format!("benchmark:MS2:pl={:016x}", 1.0f64.to_bits()));

        let inline = serde_json::from_str(
            r#"{"name":"pair","netlist":"input a\ninput b\nf = and a b\noutput f",
                "components":[0.5,0.5]}"#,
        )
        .unwrap();
        let (spec, identity) = resolve_system(&inline).unwrap();
        assert_eq!(spec.name, "pair");
        assert_eq!(spec.fault_tree.num_inputs(), 2);
        assert!(identity.starts_with("inline:pair:"), "{identity}");

        let unknown = serde_json::from_str(r#"{"benchmark":"MS99"}"#).unwrap();
        assert!(resolve_system(&unknown).unwrap_err().contains("unknown benchmark"));
        let empty = serde_json::from_str("{}").unwrap();
        assert!(resolve_system(&empty).unwrap_err().contains("field `system`"));
    }

    #[test]
    fn distribution_resolution_validates_parameters() {
        let ok = DistributionSpec {
            kind: "negative_binomial".to_string(),
            lambda: Some(1.0),
            alpha: Some(4.0),
            masses: None,
        };
        let (_, label) = resolve_distribution(&ok).unwrap();
        assert!(label.contains("λ'=1"), "{label}");
        let missing = DistributionSpec { alpha: None, ..ok.clone() };
        let err = resolve_distribution(&missing).map(|_| ()).unwrap_err();
        assert!(err.contains("requires `alpha`"), "{err}");
        let unknown = DistributionSpec { kind: "zeta".to_string(), ..ok };
        let err = resolve_distribution(&unknown).map(|_| ()).unwrap_err();
        assert!(err.contains("unknown distribution"), "{err}");
    }
}
