//! The [`DdCtx`] abstraction the engine apply/conversion machines run
//! against.
//!
//! `socy-bdd` and `socy-mdd` implement their explicit-stack apply and
//! conversion loops as free functions generic over this trait, so the
//! exact same leaf code drives both the classic sequential kernel
//! ([`DdKernel`] implements `DdCtx` by forwarding to its inherent
//! methods — zero-cost, bit-identical to the pre-trait engines) and a
//! worker's view of a concurrent parallel section
//! ([`crate::par::ParRef`]).

use crate::cache::OpKey;
use crate::kernel::DdKernel;

/// Node construction, traversal and operation-cache access as seen by a
/// decision-diagram operation in flight.
///
/// Implementations must keep [`mk`](DdCtx::mk) canonicalising (the
/// redundant-node rule plus hash-consing), and the cache is allowed to
/// be lossy: `cache_get` may miss on a key that was inserted earlier,
/// and `cache_insert` may be dropped. Correctness of the engines only
/// relies on *hits being right*, never on hits happening.
pub trait DdCtx {
    /// The raw level word of `id` ([`crate::arena::TERMINAL_LEVEL`] for
    /// terminals).
    fn raw_level(&self, id: u32) -> u32;
    /// The `value`-th child of non-terminal node `id`.
    fn child(&self, id: u32, value: usize) -> u32;
    /// Domain size (child count) of the variable at `level`.
    fn arity(&self, level: usize) -> usize;
    /// Canonical node constructor: reduces redundant nodes and
    /// hash-conses the rest.
    fn mk(&mut self, level: u32, children: &[u32]) -> u32;
    /// Memoized-result lookup (may spuriously miss).
    fn cache_get(&mut self, key: OpKey) -> Option<u32>;
    /// Memoizes an operation result (may be dropped).
    fn cache_insert(&mut self, key: OpKey, result: u32);
    /// Whether complemented-edge mode is on (see
    /// [`DdKernel::set_complement`]). The engines gate every negation
    /// normalization on this, so complement-off runs stay bit-identical
    /// to the pre-complement kernel.
    fn complement(&self) -> bool {
        false
    }
    /// Records one op-cache hit obtained through negation normalization
    /// (counted into [`crate::DdStats::complement_hits`]).
    fn note_complement_hit(&mut self) {}
}

impl DdCtx for DdKernel {
    fn raw_level(&self, id: u32) -> u32 {
        DdKernel::raw_level(self, id)
    }

    fn child(&self, id: u32, value: usize) -> u32 {
        DdKernel::child(self, id, value)
    }

    fn arity(&self, level: usize) -> usize {
        DdKernel::arity(self, level)
    }

    fn mk(&mut self, level: u32, children: &[u32]) -> u32 {
        DdKernel::mk(self, level, children)
    }

    fn cache_get(&mut self, key: OpKey) -> Option<u32> {
        DdKernel::cache_get(self, key)
    }

    fn cache_insert(&mut self, key: OpKey, result: u32) {
        DdKernel::cache_insert(self, key, result);
    }

    fn complement(&self) -> bool {
        self.complement_enabled()
    }

    fn note_complement_hit(&mut self) {
        self.complement_hits += 1;
    }
}
