//! The struct-of-arrays node arena.
//!
//! Nodes are addressed by dense `u32` ids; ids `0` and `1` are reserved
//! for the FALSE and TRUE terminals. Every node stores its variable level
//! and a range into one shared flat edge array, so a traversal touches
//! three cache-friendly `Vec`s instead of chasing per-node allocations.
//! The number of children of a node is a function of its level alone
//! (2 everywhere for ROBDDs, the domain size for ROMDDs), which is what
//! lets one arena serve both engines.

/// Level used internally for the two terminal nodes (greater than every
/// variable level, so terminals sort below all variables).
pub const TERMINAL_LEVEL: u32 = u32::MAX;

/// A struct-of-arrays arena of decision-diagram nodes.
#[derive(Debug, Clone)]
pub struct NodeArena {
    /// Number of children of a node at each level.
    arity: Vec<u32>,
    /// Level of every node (`TERMINAL_LEVEL` for the two terminals).
    levels: Vec<u32>,
    /// Start of every node's children in `edges`.
    edge_offset: Vec<u32>,
    /// Flattened children of all non-terminal nodes.
    edges: Vec<u32>,
}

impl NodeArena {
    /// Creates an arena over levels with the given arities, containing
    /// only the FALSE (id 0) and TRUE (id 1) terminals.
    ///
    /// # Panics
    ///
    /// Panics if any arity is zero.
    pub fn new(arities: Vec<u32>) -> Self {
        assert!(arities.iter().all(|&a| a >= 1), "every level needs at least one child slot");
        Self {
            arity: arities,
            levels: vec![TERMINAL_LEVEL; 2],
            edge_offset: vec![0; 2],
            edges: Vec::new(),
        }
    }

    /// Number of variable levels.
    pub fn num_levels(&self) -> usize {
        self.arity.len()
    }

    /// Number of children of a node at `level`.
    pub fn arity(&self, level: usize) -> usize {
        self.arity[level] as usize
    }

    /// Appends additional levels (after the existing ones) with the given
    /// arities. Existing nodes are unaffected.
    pub fn add_levels(&mut self, arities: impl IntoIterator<Item = u32>) {
        for a in arities {
            assert!(a >= 1, "every level needs at least one child slot");
            self.arity.push(a);
        }
    }

    /// Total number of nodes, including the two terminals.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Always false: the arena contains at least the terminals.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Raw level of a node (`TERMINAL_LEVEL` for terminals).
    pub fn raw_level(&self, id: u32) -> u32 {
        self.levels[id as usize]
    }

    /// The level tested by a node, or `None` for terminals.
    pub fn level(&self, id: u32) -> Option<usize> {
        let l = self.levels[id as usize];
        if l == TERMINAL_LEVEL {
            None
        } else {
            Some(l as usize)
        }
    }

    /// The children of a node (empty for terminals).
    pub fn children(&self, id: u32) -> &[u32] {
        let level = self.levels[id as usize];
        if level == TERMINAL_LEVEL {
            &[]
        } else {
            let start = self.edge_offset[id as usize] as usize;
            &self.edges[start..start + self.arity[level as usize] as usize]
        }
    }

    /// The child followed when the node's variable takes `value`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal or `value` is outside the level's
    /// arity.
    pub fn child(&self, id: u32, value: usize) -> u32 {
        self.children(id)[value]
    }

    /// Appends a node without any canonicity check (the unique table is
    /// responsible for calling this at most once per key).
    pub(crate) fn push(&mut self, level: u32, children: &[u32]) -> u32 {
        debug_assert_eq!(children.len(), self.arity(level as usize), "arity mismatch at push");
        let id = self.levels.len() as u32;
        self.levels.push(level);
        self.edge_offset.push(self.edges.len() as u32);
        self.edges.extend_from_slice(children);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_only_at_birth() {
        let arena = NodeArena::new(vec![2, 3]);
        assert_eq!(arena.len(), 2);
        assert!(!arena.is_empty());
        assert_eq!(arena.num_levels(), 2);
        assert_eq!(arena.arity(1), 3);
        assert_eq!(arena.raw_level(0), TERMINAL_LEVEL);
        assert_eq!(arena.level(1), None);
        assert!(arena.children(0).is_empty());
    }

    #[test]
    fn push_and_read_back() {
        let mut arena = NodeArena::new(vec![2, 3]);
        let n = arena.push(1, &[0, 1, 1]);
        let m = arena.push(0, &[n, 0]);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.level(n), Some(1));
        assert_eq!(arena.children(n), &[0, 1, 1]);
        assert_eq!(arena.children(m), &[n, 0]);
        assert_eq!(arena.child(m, 0), n);
    }

    #[test]
    fn add_levels_extends() {
        let mut arena = NodeArena::new(vec![2]);
        arena.add_levels([4, 2]);
        assert_eq!(arena.num_levels(), 3);
        assert_eq!(arena.arity(1), 4);
    }

    #[test]
    #[should_panic]
    fn zero_arity_rejected() {
        let _ = NodeArena::new(vec![2, 0]);
    }
}
