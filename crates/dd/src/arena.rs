//! The struct-of-arrays node arena.
//!
//! Nodes are addressed by dense `u32` ids; ids `0` and `1` are reserved
//! for the FALSE and TRUE terminals. Every node stores a packed 16-byte
//! header carrying its variable level and its children: nodes with at
//! most two children — every node of a coded ROBDD — keep them **inline
//! in the header**, so the hot paths (unique-table compares, cofactor
//! reads, traversals) touch exactly one memory location per node; wider
//! multi-valued nodes spill into one shared flat edge array. The number
//! of children of a node is a function of its level alone (2 everywhere
//! for ROBDDs, the domain size for ROMDDs), which is what lets one arena
//! serve both engines.

use crate::edge::{strip, CPL_BIT};

/// Level used internally for the two terminal nodes (greater than every
/// variable level, so terminals sort below all variables).
pub const TERMINAL_LEVEL: u32 = u32::MAX;

/// Number of children stored inline in a node's header.
const INLINE_CHILDREN: usize = 2;

/// Per-node header, packed into 16 bytes. Nodes whose arity is at most
/// [`INLINE_CHILDREN`] store their children in `inline` and never touch
/// the edge array; wider nodes store the start of their children in
/// `edge_offset`.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Level of the node (`TERMINAL_LEVEL` for the two terminals).
    level: u32,
    /// Start of the node's children in `edges` (wide nodes only).
    edge_offset: u32,
    /// The children themselves, for nodes of arity ≤ 2.
    inline: [u32; INLINE_CHILDREN],
}

impl Meta {
    #[inline]
    fn new(level: u32) -> Self {
        Self { level, edge_offset: 0, inline: [0; INLINE_CHILDREN] }
    }
}

/// A struct-of-arrays arena of decision-diagram nodes.
#[derive(Debug, Clone)]
pub struct NodeArena {
    /// Number of children of a node at each level.
    arity: Vec<u32>,
    /// Packed per-node headers (level + edge offset).
    meta: Vec<Meta>,
    /// Flattened children of all non-terminal nodes.
    edges: Vec<u32>,
}

impl NodeArena {
    /// Creates an arena over levels with the given arities, containing
    /// only the FALSE (id 0) and TRUE (id 1) terminals.
    ///
    /// # Panics
    ///
    /// Panics if any arity is zero.
    pub fn new(arities: Vec<u32>) -> Self {
        assert!(arities.iter().all(|&a| a >= 1), "every level needs at least one child slot");
        Self { arity: arities, meta: vec![Meta::new(TERMINAL_LEVEL); 2], edges: Vec::new() }
    }

    /// Number of variable levels.
    pub fn num_levels(&self) -> usize {
        self.arity.len()
    }

    /// Number of children of a node at `level`.
    pub fn arity(&self, level: usize) -> usize {
        self.arity[level] as usize
    }

    /// Appends additional levels (after the existing ones) with the given
    /// arities. Existing nodes are unaffected.
    pub fn add_levels(&mut self, arities: impl IntoIterator<Item = u32>) {
        for a in arities {
            assert!(a >= 1, "every level needs at least one child slot");
            self.arity.push(a);
        }
    }

    /// Total number of nodes, including the two terminals.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Always false: the arena contains at least the terminals.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Raw level of a node (`TERMINAL_LEVEL` for terminals). Accepts
    /// complemented edges: a function and its negation share one
    /// physical node, hence one level.
    pub fn raw_level(&self, id: u32) -> u32 {
        self.meta[strip(id) as usize].level
    }

    /// The level tested by a node, or `None` for terminals. Accepts
    /// complemented edges.
    pub fn level(&self, id: u32) -> Option<usize> {
        let l = self.meta[strip(id) as usize].level;
        if l == TERMINAL_LEVEL {
            None
        } else {
            Some(l as usize)
        }
    }

    /// The *stored* children of a node (empty for terminals) — the raw
    /// edge values, without applying any complement parity of `id`.
    pub fn children(&self, id: u32) -> &[u32] {
        let meta = &self.meta[strip(id) as usize];
        if meta.level == TERMINAL_LEVEL {
            return &[];
        }
        let width = self.arity[meta.level as usize] as usize;
        if width <= INLINE_CHILDREN {
            &meta.inline[..width]
        } else {
            let start = meta.edge_offset as usize;
            &self.edges[start..start + width]
        }
    }

    /// The child followed when the node's variable takes `value`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal or `value` is outside the level's
    /// arity.
    pub fn child(&self, id: u32, value: usize) -> u32 {
        self.children(id)[value]
    }

    /// Appends a node without any canonicity check (the unique table is
    /// responsible for calling this at most once per key).
    pub(crate) fn push(&mut self, level: u32, children: &[u32]) -> u32 {
        debug_assert_eq!(children.len(), self.arity(level as usize), "arity mismatch at push");
        let id = self.meta.len() as u32;
        let mut meta = Meta::new(level);
        if children.len() <= INLINE_CHILDREN {
            meta.inline[..children.len()].copy_from_slice(children);
        } else {
            meta.edge_offset = self.edges.len() as u32;
            self.edges.extend_from_slice(children);
        }
        self.meta.push(meta);
        id
    }

    /// Relabels a node to `level` without touching its children (used by
    /// the adjacent-level swap when a node merely changes position). The
    /// caller must ensure the child count matches the new level's arity.
    pub(crate) fn set_level(&mut self, id: u32, level: u32) {
        self.meta[id as usize].level = level;
    }

    /// Swaps the arities of levels `l` and `l + 1` (the bookkeeping half of
    /// an adjacent-level swap).
    pub(crate) fn swap_arities(&mut self, l: usize) {
        self.arity.swap(l, l + 1);
    }

    /// Rewrites a node in place with a new level and children. The new
    /// children are appended to the edge array (the old slot is leaked
    /// until the next [`NodeArena::compact`]), so the node's id — and with
    /// it every parent reference — stays valid.
    pub(crate) fn set_node(&mut self, id: u32, level: u32, children: &[u32]) {
        debug_assert_eq!(children.len(), self.arity(level as usize), "arity mismatch at rewrite");
        let mut meta = Meta::new(level);
        if children.len() <= INLINE_CHILDREN {
            meta.inline[..children.len()].copy_from_slice(children);
        } else {
            meta.edge_offset = self.edges.len() as u32;
            self.edges.extend_from_slice(children);
        }
        self.meta[id as usize] = meta;
    }

    /// Compacts the arena to the nodes marked in `live`, renumbering the
    /// survivors downward while preserving their relative order (so a
    /// collection never changes iteration determinism). Returns the id
    /// remap table: `remap[old] = new` for survivors, `u32::MAX` for
    /// reclaimed nodes.
    ///
    /// `live` must be closed under the child relation and mark both
    /// terminals. Ids are renumbered first and edges rewritten second:
    /// after level swaps a parent can carry a *larger* id than a freshly
    /// hash-consed child, so a single increasing pass would be wrong.
    pub(crate) fn compact(&mut self, live: &[bool]) -> Vec<u32> {
        debug_assert_eq!(live.len(), self.meta.len());
        debug_assert!(live[0] && live[1], "terminals are always live");
        let mut remap = vec![u32::MAX; self.meta.len()];
        let mut next = 0u32;
        for (old, &alive) in live.iter().enumerate() {
            if alive {
                remap[old] = next;
                next += 1;
            }
        }
        let mut meta = Vec::with_capacity(next as usize);
        let mut edges = Vec::with_capacity(self.edges.len());
        for (old, &alive) in live.iter().enumerate() {
            if !alive {
                continue;
            }
            let level = self.meta[old].level;
            let mut new_meta = Meta::new(level);
            if level != TERMINAL_LEVEL {
                let width = self.arity[level as usize] as usize;
                if width <= INLINE_CHILDREN {
                    for (slot, &child) in
                        new_meta.inline[..width].iter_mut().zip(&self.meta[old].inline[..width])
                    {
                        let new_child = remap[strip(child) as usize];
                        debug_assert_ne!(
                            new_child,
                            u32::MAX,
                            "live set must be closed under children"
                        );
                        *slot = new_child | (child & CPL_BIT);
                    }
                } else {
                    new_meta.edge_offset = edges.len() as u32;
                    let start = self.meta[old].edge_offset as usize;
                    for &child in &self.edges[start..start + width] {
                        let new_child = remap[strip(child) as usize];
                        debug_assert_ne!(
                            new_child,
                            u32::MAX,
                            "live set must be closed under children"
                        );
                        edges.push(new_child | (child & CPL_BIT));
                    }
                }
            }
            meta.push(new_meta);
        }
        self.meta = meta;
        self.edges = edges;
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_only_at_birth() {
        let arena = NodeArena::new(vec![2, 3]);
        assert_eq!(arena.len(), 2);
        assert!(!arena.is_empty());
        assert_eq!(arena.num_levels(), 2);
        assert_eq!(arena.arity(1), 3);
        assert_eq!(arena.raw_level(0), TERMINAL_LEVEL);
        assert_eq!(arena.level(1), None);
        assert!(arena.children(0).is_empty());
    }

    #[test]
    fn push_and_read_back() {
        let mut arena = NodeArena::new(vec![2, 3]);
        let n = arena.push(1, &[0, 1, 1]);
        let m = arena.push(0, &[n, 0]);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.level(n), Some(1));
        assert_eq!(arena.children(n), &[0, 1, 1]);
        assert_eq!(arena.children(m), &[n, 0]);
        assert_eq!(arena.child(m, 0), n);
    }

    #[test]
    fn add_levels_extends() {
        let mut arena = NodeArena::new(vec![2]);
        arena.add_levels([4, 2]);
        assert_eq!(arena.num_levels(), 3);
        assert_eq!(arena.arity(1), 4);
    }

    #[test]
    #[should_panic]
    fn zero_arity_rejected() {
        let _ = NodeArena::new(vec![2, 0]);
    }

    #[test]
    fn rewrite_and_relabel() {
        let mut arena = NodeArena::new(vec![2, 2]);
        let n = arena.push(1, &[0, 1]);
        arena.set_level(n, 0);
        assert_eq!(arena.level(n), Some(0));
        assert_eq!(arena.children(n), &[0, 1]);
        arena.set_node(n, 1, &[1, 0]);
        assert_eq!(arena.level(n), Some(1));
        assert_eq!(arena.children(n), &[1, 0]);
        arena.swap_arities(0);
        assert_eq!(arena.arity(0), 2);
    }

    #[test]
    fn compact_renumbers_survivors_in_order() {
        let mut arena = NodeArena::new(vec![2, 2, 2]);
        let a = arena.push(2, &[0, 1]);
        let dead = arena.push(2, &[1, 0]);
        let b = arena.push(1, &[a, 1]);
        let c = arena.push(0, &[b, a]);
        let mut live = vec![true; arena.len()];
        live[dead as usize] = false;
        let remap = arena.compact(&live);
        assert_eq!(remap[dead as usize], u32::MAX);
        assert_eq!(remap[0], 0);
        assert_eq!(remap[1], 1);
        assert_eq!(remap[a as usize], 2);
        assert_eq!(remap[b as usize], 3);
        assert_eq!(remap[c as usize], 4);
        assert_eq!(arena.len(), 5);
        // Children were remapped consistently.
        assert_eq!(arena.children(remap[c as usize]), &[remap[b as usize], remap[a as usize]]);
        assert_eq!(arena.children(remap[b as usize]), &[remap[a as usize], 1]);
        assert_eq!(arena.children(remap[a as usize]), &[0, 1]);
    }
}
