//! The memoization cache for recursive operations.
//!
//! One cache serves every operation of an engine: entries are keyed on an
//! operation tag plus up to three operand node ids (binary operations
//! leave the third operand `0`; ITE uses all three). The cache counts hits
//! and misses so the analysis layer can report memoization effectiveness
//! alongside the paper's size metrics.

use crate::hash::FxHashMap;

/// Cache key: operation tag plus up to three operand node ids.
pub type OpKey = (u8, u32, u32, u32);

/// A memoization cache with hit/miss accounting.
#[derive(Debug, Clone, Default)]
pub struct OpCache {
    map: FxHashMap<OpKey, u32>,
    hits: u64,
    misses: u64,
}

impl OpCache {
    /// Looks up a previously memoized result, counting the hit or miss.
    pub fn get(&mut self, key: OpKey) -> Option<u32> {
        let result = self.map.get(&key).copied();
        if result.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        result
    }

    /// Memoizes the result of an operation.
    pub fn insert(&mut self, key: OpKey, result: u32) {
        self.map.insert(key, result);
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found a memoized result.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed (each typically followed by a recursive
    /// computation and an [`OpCache::insert`]).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops all memoized entries (the hit/miss counters are kept, since
    /// they describe the workload, not the current contents).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Rewrites every entry through a garbage-collection id remap
    /// (`remap[old] = new`, `u32::MAX` for reclaimed nodes). Entries
    /// mentioning a reclaimed node are dropped — their ids may be reused
    /// by future, unrelated nodes. Returns `(kept, dropped)` entry counts.
    pub fn remap(&mut self, remap: &[u32]) -> (usize, usize) {
        let before = self.map.len();
        let old = std::mem::take(&mut self.map);
        for ((op, a, b, c), r) in old {
            let (Some(&a), Some(&b), Some(&c), Some(&r)) = (
                remap.get(a as usize),
                remap.get(b as usize),
                remap.get(c as usize),
                remap.get(r as usize),
            ) else {
                continue;
            };
            if a == u32::MAX || b == u32::MAX || c == u32::MAX || r == u32::MAX {
                continue;
            }
            self.map.insert((op, a, b, c), r);
        }
        (self.map.len(), before - self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let mut cache = OpCache::default();
        assert!(cache.is_empty());
        assert_eq!(cache.get((0, 2, 3, 0)), None);
        cache.insert((0, 2, 3, 0), 7);
        assert_eq!(cache.get((0, 2, 3, 0)), Some(7));
        assert_eq!(cache.get((1, 2, 3, 0)), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1, "stats survive a clear");
    }

    #[test]
    fn remap_drops_dead_entries_and_rewrites_live_ones() {
        let mut cache = OpCache::default();
        cache.insert((0, 2, 3, 0), 4); // all live
        cache.insert((1, 5, 2, 0), 3); // operand 5 dies
        cache.insert((2, 2, 2, 3), 5); // result 5 dies
                                       // Nodes 0..=4 survive, 5 is reclaimed; 2 <-> 3 swap is impossible in
                                       // a real compaction but exercises the rewrite.
        let remap = [0, 1, 2, 3, 4, u32::MAX];
        let (kept, dropped) = cache.remap(&remap);
        assert_eq!((kept, dropped), (1, 2));
        assert_eq!(cache.get((0, 2, 3, 0)), Some(4));
        assert_eq!(cache.get((1, 5, 2, 0)), None);
    }
}
