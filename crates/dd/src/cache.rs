//! The memoization cache for recursive operations.
//!
//! One cache serves every operation of an engine: entries are keyed on an
//! operation tag plus up to three operand node ids (binary operations
//! leave the third operand `0`; ITE uses all three). The cache counts hits
//! and misses so the analysis layer can report memoization effectiveness
//! alongside the paper's size metrics.

use crate::hash::FxHashMap;

/// Cache key: operation tag plus up to three operand node ids.
pub type OpKey = (u8, u32, u32, u32);

/// A memoization cache with hit/miss accounting.
#[derive(Debug, Clone, Default)]
pub struct OpCache {
    map: FxHashMap<OpKey, u32>,
    hits: u64,
    misses: u64,
}

impl OpCache {
    /// Looks up a previously memoized result, counting the hit or miss.
    pub fn get(&mut self, key: OpKey) -> Option<u32> {
        let result = self.map.get(&key).copied();
        if result.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        result
    }

    /// Memoizes the result of an operation.
    pub fn insert(&mut self, key: OpKey, result: u32) {
        self.map.insert(key, result);
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found a memoized result.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed (each typically followed by a recursive
    /// computation and an [`OpCache::insert`]).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops all memoized entries (the hit/miss counters are kept, since
    /// they describe the workload, not the current contents).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let mut cache = OpCache::default();
        assert!(cache.is_empty());
        assert_eq!(cache.get((0, 2, 3, 0)), None);
        cache.insert((0, 2, 3, 0), 7);
        assert_eq!(cache.get((0, 2, 3, 0)), Some(7));
        assert_eq!(cache.get((1, 2, 3, 0)), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1, "stats survive a clear");
    }
}
