//! The lossy, generation-tagged memoization cache for recursive
//! operations.
//!
//! One cache serves every operation of an engine: entries are keyed on an
//! operation tag plus up to three operand node ids (binary operations
//! leave the third operand `0`; ITE uses all three). The table is
//! **direct-mapped**: every key hashes to exactly one slot, and inserting
//! over a live slot with a different key simply evicts it. Losing an
//! entry never changes results — a later lookup misses and the operation
//! is recomputed, producing the identical canonical node — so the cache
//! trades a bounded, allocation-free footprint and O(1) worst-case probes
//! for occasional recomputation, exactly like the computed tables of
//! mature BDD packages.
//!
//! Each slot packs the full key and result into 16 bytes
//! (`a, b, c, result`), with a parallel array of 16-bit **generation
//! tags** carrying the operation tag (3 bits) and the cache generation
//! (13 bits). Invalidating the whole cache — which the kernel's
//! compacting GC must do, because node ids are renumbered — is a single
//! generation bump instead of a full-table walk; stale slots die lazily
//! because their tag no longer matches. When the 13-bit generation
//! wraps, the tag array is cleared once so stale tags can never alias a
//! live generation.
//!
//! The cache counts hits, misses, insertions and evictions — in total
//! and per operation tag — so the analysis layer can report memoization
//! effectiveness alongside the paper's size metrics, and it grows itself
//! (power-of-two, up to a bounded maximum) when sustained conflict
//! pressure shows the working set has outgrown the table.

/// Cache key: operation tag plus up to three operand node ids.
pub type OpKey = (u8, u32, u32, u32);

/// Number of distinct operation tags the cache distinguishes (tags must
/// be `< NUM_OP_TAGS`; the tag occupies 3 bits of a slot's metadata).
pub const NUM_OP_TAGS: usize = 8;

/// Default initial slot count (power of two).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Default upper bound for the automatic growth (power of two).
pub const DEFAULT_MAX_CAPACITY: usize = 1 << 21;

/// Largest representable generation (13 bits); bumping past it clears
/// the tag array and restarts at 1.
const GENERATION_MAX: u16 = (1 << 13) - 1;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hit/miss/eviction counters for one operation tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpTagStats {
    /// Lookups with this tag that found a live entry.
    pub hits: u64,
    /// Lookups with this tag that missed.
    pub misses: u64,
    /// Insertions with this tag that displaced a live entry of a
    /// different key.
    pub evictions: u64,
}

/// One packed 16-byte key/result slot (the operation tag and liveness
/// live in the parallel generation-tag array).
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

/// A lossy, direct-mapped memoization cache with generation-tag
/// invalidation and hit/miss/eviction accounting.
#[derive(Debug, Clone)]
pub struct OpCache {
    slots: Vec<Slot>,
    /// `(generation << 3) | op` of each slot; `0` marks a never-written
    /// slot (live generations start at 1).
    tags: Vec<u16>,
    generation: u16,
    /// Entries written under the current generation and not yet evicted.
    live: usize,
    max_capacity: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    /// Eviction count at the last resize (or creation), for the
    /// sustained-conflict growth trigger.
    evictions_at_resize: u64,
    per_op: [OpTagStats; NUM_OP_TAGS],
}

impl Default for OpCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY, DEFAULT_MAX_CAPACITY)
    }
}

#[inline]
fn hash_key(op: u8, a: u32, b: u32, c: u32) -> u64 {
    let mut state = (u64::from(a) | (u64::from(b) << 32)).wrapping_mul(SEED);
    state = (state.rotate_left(5) ^ (u64::from(c) | (u64::from(op) << 32))).wrapping_mul(SEED);
    state ^ (state >> 32)
}

impl OpCache {
    /// Creates a cache with `capacity` slots, allowed to grow up to
    /// `max_capacity` under sustained conflict pressure. Both bounds are
    /// rounded up to powers of two; `max_capacity` is clamped to at
    /// least `capacity` (equal bounds pin the size — useful for tests
    /// exercising the lossy behaviour, e.g. a capacity-1 cache).
    pub fn with_capacity(capacity: usize, max_capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let max_capacity = max_capacity.max(capacity).next_power_of_two();
        Self {
            slots: vec![Slot::default(); capacity],
            tags: vec![0; capacity],
            generation: 1,
            live: 0,
            max_capacity,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            evictions_at_resize: 0,
            per_op: [OpTagStats::default(); NUM_OP_TAGS],
        }
    }

    /// Current number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn index(&self, op: u8, a: u32, b: u32, c: u32) -> usize {
        hash_key(op, a, b, c) as usize & (self.slots.len() - 1)
    }

    #[inline]
    fn live_tag(&self, op: u8) -> u16 {
        (self.generation << 3) | u16::from(op)
    }

    /// Looks up a previously memoized result, counting the hit or miss.
    #[inline]
    pub fn get(&mut self, key: OpKey) -> Option<u32> {
        let (op, a, b, c) = key;
        debug_assert!((op as usize) < NUM_OP_TAGS, "operation tag {op} out of range");
        let idx = self.index(op, a, b, c);
        // Probe the (small, cache-resident) tag array first: a stale or
        // mismatched tag skips the 16-byte slot load entirely.
        if self.tags[idx] == self.live_tag(op) {
            let slot = self.slots[idx];
            if slot.a == a && slot.b == b && slot.c == c {
                self.hits += 1;
                self.per_op[op as usize].hits += 1;
                return Some(slot.result);
            }
        }
        self.misses += 1;
        self.per_op[op as usize].misses += 1;
        None
    }

    /// Read-only probe that mutates no counters, usable through a shared
    /// reference while the cache is frozen (the parallel sections of
    /// [`crate::par`] consult the pre-section cache this way; hits and
    /// misses on that path are accounted separately and folded back in
    /// via [`OpCache::add_external`]).
    #[inline]
    pub fn peek(&self, key: OpKey) -> Option<u32> {
        let (op, a, b, c) = key;
        debug_assert!((op as usize) < NUM_OP_TAGS, "operation tag {op} out of range");
        let idx = self.index(op, a, b, c);
        if self.tags[idx] == self.live_tag(op) {
            let slot = self.slots[idx];
            if slot.a == a && slot.b == b && slot.c == c {
                return Some(slot.result);
            }
        }
        None
    }

    /// Folds externally accounted lookup/insertion counts into the
    /// totals. The parallel apply sections run their own session cache
    /// (plus read-only [`OpCache::peek`]s of this one) and tally traffic
    /// in worker-local counters; absorbing a session adds them here so
    /// the aggregate hit/miss statistics still describe the whole
    /// workload. The per-operation breakdown intentionally stays
    /// sequential-only.
    pub fn add_external(&mut self, hits: u64, misses: u64, insertions: u64) {
        self.hits += hits;
        self.misses += misses;
        self.insertions += insertions;
    }

    /// Memoizes the result of an operation, evicting whatever live entry
    /// occupied the key's slot.
    #[inline]
    pub fn insert(&mut self, key: OpKey, result: u32) {
        let (op, a, b, c) = key;
        debug_assert!((op as usize) < NUM_OP_TAGS, "operation tag {op} out of range");
        let idx = self.index(op, a, b, c);
        self.insertions += 1;
        let tag = self.tags[idx];
        if tag >> 3 == self.generation {
            let slot = self.slots[idx];
            if tag != self.live_tag(op) || slot.a != a || slot.b != b || slot.c != c {
                self.evictions += 1;
                self.per_op[op as usize].evictions += 1;
            }
        } else {
            self.live += 1;
        }
        self.slots[idx] = Slot { a, b, c, result };
        self.tags[idx] = self.live_tag(op);
        self.maybe_grow();
    }

    /// Doubles the table when the conflict evictions since the last
    /// resize exceed the slot count — sustained pressure that a larger
    /// table would absorb — re-placing the live entries under the new
    /// mask. Deterministic: the trigger depends only on the operation
    /// sequence.
    fn maybe_grow(&mut self) {
        if self.slots.len() >= self.max_capacity
            || (self.evictions - self.evictions_at_resize) as usize <= self.slots.len()
        {
            return;
        }
        self.evictions_at_resize = self.evictions;
        let new_capacity = (self.slots.len() * 2).min(self.max_capacity);
        let old_slots = std::mem::replace(&mut self.slots, vec![Slot::default(); new_capacity]);
        let old_tags = std::mem::replace(&mut self.tags, vec![0; new_capacity]);
        self.live = 0;
        let mask = new_capacity - 1;
        for (slot, tag) in old_slots.into_iter().zip(old_tags) {
            if tag >> 3 != self.generation {
                continue;
            }
            let op = (tag & 0x7) as u8;
            let idx = hash_key(op, slot.a, slot.b, slot.c) as usize & mask;
            if self.tags[idx] >> 3 != self.generation {
                self.live += 1;
            }
            self.slots[idx] = slot;
            self.tags[idx] = tag;
        }
    }

    /// Number of live memoized entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if nothing is currently memoized.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Lookups that found a memoized result.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed (each typically followed by a recursive
    /// computation and an [`OpCache::insert`]).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Insertions performed (a superset of the misses that completed).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Insertions that displaced a live entry of a different key.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit/miss/eviction counters broken down by operation tag.
    pub fn per_op_stats(&self) -> &[OpTagStats; NUM_OP_TAGS] {
        &self.per_op
    }

    /// Fraction of lookups that hit, as a percentage in `[0, 100]`
    /// (`0` when no lookups happened).
    pub fn hit_rate_percent(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// Fraction of insertions that evicted a live entry, as a percentage
    /// in `[0, 100]` (`0` when nothing was inserted).
    pub fn evict_rate_percent(&self) -> f64 {
        if self.insertions == 0 {
            0.0
        } else {
            100.0 * self.evictions as f64 / self.insertions as f64
        }
    }

    /// Drops all memoized entries by bumping the generation (the
    /// hit/miss counters are kept, since they describe the workload, not
    /// the current contents). Returns the number of entries invalidated.
    ///
    /// This is how the kernel's compacting GC invalidates the cache: ids
    /// are renumbered by the sweep, so every entry keyed on old ids must
    /// die — one tag bump instead of a full-table remap. When the 13-bit
    /// generation wraps, the tag array is cleared so stale tags can
    /// never alias a future generation.
    pub fn invalidate_all(&mut self) -> usize {
        let dropped = self.live;
        self.live = 0;
        if self.generation == GENERATION_MAX {
            self.tags.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
        dropped
    }

    /// Drops all memoized entries (alias of [`OpCache::invalidate_all`]
    /// kept for the manager-facing "clear the caches" API).
    pub fn clear(&mut self) {
        self.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hits_and_misses() {
        let mut cache = OpCache::default();
        assert!(cache.is_empty());
        assert_eq!(cache.get((0, 2, 3, 0)), None);
        cache.insert((0, 2, 3, 0), 7);
        assert_eq!(cache.get((0, 2, 3, 0)), Some(7));
        assert_eq!(cache.get((1, 2, 3, 0)), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insertions(), 1);
        assert_eq!(cache.evictions(), 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1, "stats survive a clear");
        assert_eq!(cache.get((0, 2, 3, 0)), None, "cleared entries are gone");
    }

    #[test]
    fn peek_is_stat_free_and_add_external_folds_in() {
        let mut cache = OpCache::default();
        cache.insert((0, 2, 3, 0), 7);
        assert_eq!(cache.peek((0, 2, 3, 0)), Some(7));
        assert_eq!(cache.peek((1, 2, 3, 0)), None);
        assert_eq!(cache.hits(), 0, "peek counts nothing");
        assert_eq!(cache.misses(), 0, "peek counts nothing");
        cache.add_external(10, 20, 5);
        assert_eq!(cache.hits(), 10);
        assert_eq!(cache.misses(), 20);
        assert_eq!(cache.insertions(), 6);
    }

    #[test]
    fn per_op_stats_are_separated() {
        let mut cache = OpCache::default();
        cache.insert((0, 2, 3, 0), 7);
        assert_eq!(cache.get((0, 2, 3, 0)), Some(7));
        assert_eq!(cache.get((4, 2, 3, 5)), None);
        let per_op = cache.per_op_stats();
        assert_eq!(per_op[0], OpTagStats { hits: 1, misses: 0, evictions: 0 });
        assert_eq!(per_op[4], OpTagStats { hits: 0, misses: 1, evictions: 0 });
        assert!((cache.hit_rate_percent() - 50.0).abs() < 1e-12);
        assert_eq!(cache.evict_rate_percent(), 0.0);
    }

    #[test]
    fn capacity_one_cache_is_correct_but_forgetful() {
        let mut cache = OpCache::with_capacity(1, 1);
        assert_eq!(cache.capacity(), 1);
        cache.insert((0, 2, 3, 0), 7);
        assert_eq!(cache.get((0, 2, 3, 0)), Some(7));
        // A different key lands in the same (only) slot and evicts.
        cache.insert((1, 4, 5, 0), 9);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get((0, 2, 3, 0)), None, "evicted entry must miss");
        assert_eq!(cache.get((1, 4, 5, 0)), Some(9));
        // The pinned capacity never grows, however hard it thrashes.
        for i in 0..10_000u32 {
            cache.insert((2, i, i, 0), i);
        }
        assert_eq!(cache.capacity(), 1);
        assert!(cache.evict_rate_percent() > 99.0);
    }

    #[test]
    fn generation_bump_invalidates_everything_at_once() {
        let mut cache = OpCache::default();
        for i in 0..100u32 {
            cache.insert((0, i, i + 1, 0), i);
        }
        let live = cache.len();
        assert!(live > 0);
        assert_eq!(cache.invalidate_all(), live);
        assert!(cache.is_empty());
        for i in 0..100u32 {
            assert_eq!(cache.get((0, i, i + 1, 0)), None, "stale generation must miss");
        }
        // Re-inserting under the new generation works normally.
        cache.insert((0, 1, 2, 0), 3);
        assert_eq!(cache.get((0, 1, 2, 0)), Some(3));
    }

    #[test]
    fn generation_wrap_clears_stale_tags() {
        let mut cache = OpCache::with_capacity(8, 8);
        cache.insert((0, 1, 2, 0), 3);
        // Wrap the 13-bit generation completely, twice over.
        for _ in 0..(2 * GENERATION_MAX as usize + 5) {
            cache.invalidate_all();
        }
        assert_eq!(cache.get((0, 1, 2, 0)), None, "wrapped generations must not alias");
        cache.insert((0, 1, 2, 0), 9);
        assert_eq!(cache.get((0, 1, 2, 0)), Some(9));
    }

    #[test]
    fn sustained_conflicts_grow_the_table_up_to_the_bound() {
        let mut cache = OpCache::with_capacity(8, 64);
        // Hammer far more distinct keys than slots; the conflict pressure
        // must push the capacity to (and not past) the maximum.
        for round in 0..50u32 {
            for i in 0..512u32 {
                cache.insert((0, i, round, 0), i);
            }
        }
        assert_eq!(cache.capacity(), 64, "growth stops at max_capacity");
        assert!(cache.evictions() > 0);
        // Entries surviving the final writes still resolve.
        let mut found = 0;
        for i in 0..512u32 {
            if cache.get((0, i, 49, 0)) == Some(i) {
                found += 1;
            }
        }
        assert!(found > 0, "some recent entries survive in the grown table");
    }

    #[test]
    fn growth_preserves_live_entries_when_roomy() {
        let mut cache = OpCache::with_capacity(4, 1024);
        // Insert a small working set, then force growth via conflicts.
        cache.insert((3, 10, 20, 30), 42);
        for round in 0..200u32 {
            for i in 0..64u32 {
                cache.insert((0, i, round, 0), i);
            }
        }
        assert!(cache.capacity() > 4);
        // The grown table still answers with the packed key compare
        // (either the entry survived the conflicts or it misses — it must
        // never answer with a wrong result).
        if let Some(result) = cache.get((3, 10, 20, 30)) {
            assert_eq!(result, 42);
        }
    }
}
