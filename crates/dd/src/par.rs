//! Intra-compilation parallel sections: a concurrent overlay on a frozen
//! [`DdKernel`].
//!
//! A *parallel section* runs one apply/ITE/conversion on N threads while
//! the kernel itself is only borrowed shared (`&DdKernel`). New nodes are
//! hash-consed into a [`ParSession`]: a sharded, independently-locked
//! unique table plus a lossy seqlock operation cache. Ids handed out by a
//! session carry [`PAR_BIT`] so they can never be mistaken for frozen
//! arena ids; when the section finishes, [`DdKernel::absorb_par`] folds
//! the session nodes back into the kernel (deepest level first, so
//! children are always remapped before their parents) and rewrites the
//! section's roots to ordinary arena ids.
//!
//! # Canonicity and determinism
//!
//! The session `mk` applies the same redundant-node rule as
//! the kernel, first probes the frozen unique table lock-free when every
//! child is frozen, and only then hash-conses into a shard. By induction
//! over depth, every session entry is a *new* canonical node: an entry
//! whose children are all frozen was checked against the frozen table at
//! creation, and an entry with a session child cannot semantically equal
//! any frozen node (frozen nodes only reference frozen children). The
//! set of session entries is therefore exactly the closure of new
//! canonical nodes over the distinct subproblems reached — independent
//! of scheduling, lock timing and lost cache updates. Node counts, peak
//! sizes, unique-table entries, yields and probabilities are bit-identical
//! at every thread count; only cache hit/miss counters and the
//! steal/contention counters vary run to run, and raw node ids may be
//! assigned in a different order (nothing downstream depends on ids).
//!
//! The kernel is structurally quiesced during a section: the session
//! holds `&DdKernel` while workers run, and absorbing requires
//! `&mut DdKernel`, so the borrow checker rules out GC or a sifting swap
//! overlapping a parallel section.

use std::collections::VecDeque;
use std::hash::Hasher;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Mutex, TryLockError};

use crate::cache::OpKey;
use crate::ctx::DdCtx;
use crate::edge::{is_complemented, negate, negate_if, CPL_BIT};
use crate::govern::{Governor, GovernorAbort};
use crate::hash::{FxHashMap, FxHasher};
use crate::kernel::{DdKernel, ZERO};

/// Bit 31 marks an id as session-local (frozen arena ids stay well below
/// `2^31`: at 16 bytes per node header that would be a 32 GiB arena).
pub const PAR_BIT: u32 = 1 << 31;
const SHARD_BITS: u32 = 6;
/// Number of independently-locked unique-table shards per session.
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;
/// Session-id layout: `PAR_BIT | CPL_BIT? | shard << IDX_BITS | idx`.
/// 24 index bits leave bit 30 free for [`crate::edge::CPL_BIT`], so a
/// session id can carry a complement exactly like a frozen id.
const IDX_BITS: u32 = 24;
const IDX_MASK: u32 = (1 << IDX_BITS) - 1;
const EMPTY: u32 = u32::MAX;
/// Smallest seqlock op-cache size: `2^15` slots of 24 bytes.
const MIN_CACHE_BITS: u32 = 15;
/// Largest seqlock op-cache size (`2^21` slots, 48 MiB), matching the
/// growth ceiling of the sequential [`crate::cache::OpCache`]. A
/// direct-mapped cache much smaller than the operand diagrams thrashes,
/// and a thrashing op cache makes apply superlinear — the cache is what
/// keeps DD operations polynomial in the first place.
const MAX_CACHE_BITS: u32 = 21;

/// Whether `id` is a session-local id produced by a session `mk`
/// (as opposed to a frozen arena id).
#[inline]
pub fn is_par(id: u32) -> bool {
    id & PAR_BIT != 0
}

#[inline]
fn encode(shard: usize, idx: u32) -> u32 {
    debug_assert!(idx <= IDX_MASK, "session shard overflow: {idx} entries");
    PAR_BIT | ((shard as u32) << IDX_BITS) | idx
}

#[inline]
fn decode(id: u32) -> (usize, usize) {
    debug_assert!(is_par(id));
    // The shard mask and the index mask both exclude CPL_BIT (bit 30),
    // so complemented session ids decode to the same physical entry.
    ((id >> IDX_BITS) as usize & (SHARD_COUNT - 1), (id & IDX_MASK) as usize)
}

fn hash_node(level: u32, children: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(level);
    for &c in children {
        h.write_u32(c);
    }
    h.finish()
}

#[inline]
fn fold32(h: u64) -> u32 {
    (h ^ (h >> 32)) as u32
}

// ---- sharded session unique table ----------------------------------------

/// One shard: an open-addressed, linear-probed index over entries stored
/// in flat arrays (level + flattened children per entry).
#[derive(Default)]
struct Shard {
    /// `(hash, slot)` buckets; `slot == EMPTY` means vacant. Capacity is
    /// a power of two, kept under 3/4 load.
    buckets: Vec<(u32, u32)>,
    levels: Vec<u32>,
    /// Prefix offsets into `children`; `starts.len() == levels.len() + 1`.
    starts: Vec<u32>,
    children: Vec<u32>,
}

impl Shard {
    fn len(&self) -> usize {
        self.levels.len()
    }

    fn key(&self, slot: usize) -> (u32, &[u32]) {
        let lo = self.starts[slot] as usize;
        let hi = self.starts[slot + 1] as usize;
        (self.levels[slot], &self.children[lo..hi])
    }

    fn get_or_insert(&mut self, level: u32, children: &[u32], hash: u32) -> u32 {
        if self.buckets.is_empty() {
            self.starts.push(0);
            self.buckets = vec![(0, EMPTY); 16];
        } else if (self.len() + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let (h, slot) = self.buckets[i];
            if slot == EMPTY {
                let new = self.len() as u32;
                self.levels.push(level);
                self.children.extend_from_slice(children);
                self.starts.push(self.children.len() as u32);
                self.buckets[i] = (hash, new);
                return new;
            }
            if h == hash && self.key(slot as usize) == (level, children) {
                return slot;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let mut buckets = vec![(0u32, EMPTY); self.buckets.len() * 2];
        let mask = buckets.len() - 1;
        for &(h, slot) in self.buckets.iter().filter(|&&(_, s)| s != EMPTY) {
            let mut i = h as usize & mask;
            while buckets[i].1 != EMPTY {
                i = (i + 1) & mask;
            }
            buckets[i] = (h, slot);
        }
        self.buckets = buckets;
    }
}

// ---- seqlock operation cache ---------------------------------------------

/// One lossy, direct-mapped cache slot published with a seqlock so
/// concurrent readers never observe a torn entry.
///
/// Packing: `seq = version | result << 32` (version even when stable,
/// odd while a writer holds the slot, `0` meaning never written — the
/// cache is fresh per section, so no generation tag is needed),
/// `lo = a | b << 32`, `hi = c | op << 32`. Readers double-check `seq`
/// around the payload loads and compare the *full* key, so a lost or
/// racing update can only cause a miss, never a wrong hit.
#[derive(Default)]
struct CacheSlot {
    seq: AtomicU64,
    lo: AtomicU64,
    hi: AtomicU64,
}

// ---- session --------------------------------------------------------------

/// Per-worker plain counters, folded into the session totals once per
/// worker (shared atomics on the lookup hot path would ping-pong cache
/// lines between cores).
#[derive(Default)]
struct ParLocalStats {
    cache_hits: u64,
    cache_misses: u64,
    cache_insertions: u64,
    contention: u64,
    complement_hits: u64,
}

/// A parallel section over a frozen kernel: the sharded unique table,
/// the seqlock op cache and the section counters.
///
/// Create one per operation, run work through [`ParRef`] handles (one
/// per worker), then convert with [`ParSession::into_parts`] and fold
/// back via [`DdKernel::absorb_par`].
pub struct ParSession<'k> {
    kernel: &'k DdKernel,
    shards: Vec<Mutex<Shard>>,
    cache: Vec<CacheSlot>,
    cache_mask: usize,
    tasks: AtomicU64,
    steals: AtomicU64,
    contention: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_insertions: AtomicU64,
    complement_hits: AtomicU64,
}

/// Counters accumulated by one parallel section, reported by
/// [`ParSession::into_parts`] and folded into the kernel's statistics by
/// [`DdKernel::absorb_par`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ParRunStats {
    /// Task-tree nodes built by the driver (leaves plus splits);
    /// deterministic for a fixed input.
    pub tasks: u64,
    /// Leaf tasks a worker stole from another worker's deque
    /// (scheduling-dependent).
    pub steals: u64,
    /// Shard-lock acquisitions that found the lock contended
    /// (scheduling-dependent).
    pub contention: u64,
    /// Session op-cache hits (includes frozen-cache peeks that hit).
    pub cache_hits: u64,
    /// Session op-cache misses.
    pub cache_misses: u64,
    /// Session op-cache insertion attempts.
    pub cache_insertions: u64,
    /// Cache hits obtained through complemented-edge negation
    /// normalization (see [`crate::DdStats::complement_hits`]).
    pub complement_hits: u64,
}

/// The owned remains of a finished section: every shard's entries plus
/// the section counters, ready for [`DdKernel::absorb_par`].
pub struct ParParts {
    shards: Vec<Shard>,
    stats: ParRunStats,
}

impl<'k> ParSession<'k> {
    /// Opens a parallel section over `kernel` with an op-cache sized to
    /// the kernel: at least one slot per allocated arena node and no
    /// smaller than the kernel's own (adaptively grown) sequential op
    /// cache, clamped to `2^15..=2^21` slots. The size depends only on
    /// kernel state at section open — never on scheduling — so it does
    /// not perturb the determinism argument; it only moves cache hit
    /// rates, which are volatile counters anyway.
    pub fn new(kernel: &'k DdKernel) -> Self {
        let want = kernel.allocated_nodes().max(kernel.op_cache_capacity()).max(1);
        let bits = (usize::BITS - (want - 1).leading_zeros()).clamp(MIN_CACHE_BITS, MAX_CACHE_BITS);
        Self::with_cache_bits(kernel, bits)
    }

    /// Opens a parallel section with `2^bits` op-cache slots.
    pub fn with_cache_bits(kernel: &'k DdKernel, bits: u32) -> Self {
        let slots = 1usize << bits;
        ParSession {
            kernel,
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect(),
            cache: (0..slots).map(|_| CacheSlot::default()).collect(),
            cache_mask: slots - 1,
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            contention: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_insertions: AtomicU64::new(0),
            complement_hits: AtomicU64::new(0),
        }
    }

    /// The frozen kernel this section runs over.
    pub fn kernel(&self) -> &'k DdKernel {
        self.kernel
    }

    /// A fresh worker handle onto this session.
    pub fn make_ref<'s>(&'s self) -> ParRef<'s, 'k> {
        ParRef { session: self, stats: ParLocalStats::default() }
    }

    /// Canonical node constructor for the section: redundant-node rule,
    /// then a lock-free probe of the frozen unique table when every
    /// child is frozen, then hash-consing into the owning shard.
    fn mk(&self, level: u32, children: &[u32], stats: &mut ParLocalStats) -> u32 {
        debug_assert_eq!(
            children.len(),
            self.kernel.arity(level as usize),
            "mk expects exactly one child per domain value"
        );
        let first = children[0];
        if children.iter().all(|&c| c == first) {
            return first;
        }
        // Complemented-edge canonical form, mirroring the kernel's
        // `cons`: a complemented-or-ZERO high child flips both children
        // and returns a complemented edge, so the frozen-table probe
        // below always looks up the stored (regular-high) form.
        if self.kernel.complement_enabled()
            && children.len() == 2
            && (is_complemented(children[1]) || children[1] == ZERO)
        {
            let flipped = [negate(children[0]), negate(children[1])];
            return self.cons(level, &flipped, stats) | CPL_BIT;
        }
        self.cons(level, children, stats)
    }

    fn cons(&self, level: u32, children: &[u32], stats: &mut ParLocalStats) -> u32 {
        if children.iter().all(|&c| !is_par(c)) {
            if let Some(id) = self.kernel.unique.find(&self.kernel.arena, level, children) {
                return id;
            }
        }
        let h = hash_node(level, children);
        let shard = (h >> (64 - SHARD_BITS)) as usize;
        let (id, grown) = {
            let mut guard = match self.shards[shard].try_lock() {
                Ok(guard) => guard,
                Err(TryLockError::WouldBlock) => {
                    stats.contention += 1;
                    self.shards[shard].lock().unwrap_or_else(|poison| poison.into_inner())
                }
                Err(TryLockError::Poisoned(poison)) => poison.into_inner(),
            };
            let before = guard.len();
            let id = encode(shard, guard.get_or_insert(level, children, fold32(h)));
            (id, guard.len() - before)
        };
        // Governed materialisations report *after* the shard lock drops
        // (a governor abort unwinding while the guard is held would
        // poison the shard for the other workers) and *after* the entry
        // is fully inserted, so an aborted session is merely dropped
        // un-absorbed — the frozen kernel was never touched.
        if grown > 0 {
            if let Some(governor) = &self.kernel.governor {
                governor.on_alloc(grown as u64);
            }
        }
        id
    }

    fn cache_index(&self, key: OpKey) -> usize {
        let (op, a, b, c) = key;
        let mut h = FxHasher::default();
        h.write_u8(op);
        h.write_u32(a);
        h.write_u32(b);
        h.write_u32(c);
        h.finish() as usize & self.cache_mask
    }

    fn cache_get(&self, key: OpKey) -> Option<u32> {
        let slot = &self.cache[self.cache_index(key)];
        let s1 = slot.seq.load(SeqCst);
        if s1 & 1 == 1 || s1 as u32 == 0 {
            return None;
        }
        let lo = slot.lo.load(SeqCst);
        let hi = slot.hi.load(SeqCst);
        if slot.seq.load(SeqCst) != s1 {
            return None;
        }
        let (op, a, b, c) = key;
        if lo == (a as u64 | (b as u64) << 32) && hi == (c as u64 | (op as u64) << 32) {
            Some((s1 >> 32) as u32)
        } else {
            None
        }
    }

    fn cache_insert(&self, key: OpKey, result: u32) {
        let slot = &self.cache[self.cache_index(key)];
        let s = slot.seq.load(SeqCst);
        if s & 1 == 1 {
            return; // another writer owns the slot: the cache is lossy.
        }
        if slot.seq.compare_exchange(s, s | 1, SeqCst, SeqCst).is_err() {
            return;
        }
        let (op, a, b, c) = key;
        slot.lo.store(a as u64 | (b as u64) << 32, SeqCst);
        slot.hi.store(c as u64 | (op as u64) << 32, SeqCst);
        let mut version = (s as u32).wrapping_add(2);
        if version == 0 {
            version = 2;
        }
        slot.seq.store(version as u64 | (result as u64) << 32, SeqCst);
    }

    /// Closes the section, returning the owned shard contents and the
    /// accumulated counters.
    pub fn into_parts(self) -> ParParts {
        ParParts {
            shards: self
                .shards
                .into_iter()
                .map(|m| m.into_inner().unwrap_or_else(|poison| poison.into_inner()))
                .collect(),
            stats: ParRunStats {
                tasks: self.tasks.load(SeqCst),
                steals: self.steals.load(SeqCst),
                contention: self.contention.load(SeqCst),
                cache_hits: self.cache_hits.load(SeqCst),
                cache_misses: self.cache_misses.load(SeqCst),
                cache_insertions: self.cache_insertions.load(SeqCst),
                complement_hits: self.complement_hits.load(SeqCst),
            },
        }
    }
}

/// One worker's handle onto a [`ParSession`]: implements [`DdCtx`] so the
/// engines' explicit-stack machines run on it unchanged, and carries the
/// worker-local counters.
pub struct ParRef<'s, 'k> {
    session: &'s ParSession<'k>,
    stats: ParLocalStats,
}

impl ParRef<'_, '_> {
    /// Folds the worker-local counters into the session totals. Call
    /// once per worker when it finishes.
    pub fn finish(self) {
        let s = self.session;
        s.cache_hits.fetch_add(self.stats.cache_hits, SeqCst);
        s.cache_misses.fetch_add(self.stats.cache_misses, SeqCst);
        s.cache_insertions.fetch_add(self.stats.cache_insertions, SeqCst);
        s.contention.fetch_add(self.stats.contention, SeqCst);
        s.complement_hits.fetch_add(self.stats.complement_hits, SeqCst);
    }
}

impl DdCtx for ParRef<'_, '_> {
    fn raw_level(&self, id: u32) -> u32 {
        debug_assert!(!is_par(id), "session ids are never descended into");
        self.session.kernel.raw_level(id)
    }

    fn child(&self, id: u32, value: usize) -> u32 {
        debug_assert!(!is_par(id), "session ids are never descended into");
        self.session.kernel.child(id, value)
    }

    fn arity(&self, level: usize) -> usize {
        self.session.kernel.arity(level)
    }

    fn mk(&mut self, level: u32, children: &[u32]) -> u32 {
        self.session.mk(level, children, &mut self.stats)
    }

    fn cache_get(&mut self, key: OpKey) -> Option<u32> {
        let (_, a, b, c) = key;
        if !is_par(a) && !is_par(b) && !is_par(c) {
            if let Some(r) = self.session.kernel.cache_peek(key) {
                self.stats.cache_hits += 1;
                return Some(r);
            }
        }
        match self.session.cache_get(key) {
            Some(r) => {
                self.stats.cache_hits += 1;
                Some(r)
            }
            None => {
                self.stats.cache_misses += 1;
                None
            }
        }
    }

    fn cache_insert(&mut self, key: OpKey, result: u32) {
        self.stats.cache_insertions += 1;
        self.session.cache_insert(key, result);
    }

    fn complement(&self) -> bool {
        self.session.kernel.complement_enabled()
    }

    fn note_complement_hit(&mut self) {
        self.stats.complement_hits += 1;
    }
}

// ---- absorbing a finished section ----------------------------------------

impl DdKernel {
    /// Folds a finished parallel section back into the kernel: re-conses
    /// every session node deepest-level-first (children are strictly
    /// deeper than their parents, so they are always remapped before any
    /// parent references them), rewrites `roots` from session ids to
    /// arena ids, and accumulates the section counters into the kernel
    /// statistics.
    pub fn absorb_par(&mut self, parts: ParParts, roots: &mut [u32]) {
        let ParParts { shards, stats } = parts;
        let mut order: Vec<(u32, u32, u32)> = Vec::new();
        for (s, shard) in shards.iter().enumerate() {
            for i in 0..shard.len() {
                order.push((shard.levels[i], s as u32, i as u32));
            }
        }
        // Deepest (largest) level first; shard/idx break ties so the
        // pass is well-defined for a given session layout.
        order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut maps: Vec<Vec<u32>> = shards.iter().map(|s| vec![u32::MAX; s.len()]).collect();
        let mut scratch: Vec<u32> = Vec::new();
        for &(level, s, i) in &order {
            let (_, children) = shards[s as usize].key(i as usize);
            scratch.clear();
            for &c in children {
                scratch.push(if is_par(c) {
                    let (cs, ci) = decode(c);
                    let mapped = maps[cs][ci];
                    debug_assert_ne!(mapped, u32::MAX, "children absorb before parents");
                    // Session children may carry a complement; the map
                    // holds plain ids, so reapply the edge's parity.
                    negate_if(is_complemented(c), mapped)
                } else {
                    c
                });
            }
            let children = std::mem::take(&mut scratch);
            let id = self.mk(level, &children);
            // Session entries are stored in canonical regular-high form,
            // which the remap preserves, so re-consing never flips and
            // the map entry is always a plain arena id.
            debug_assert!(!is_complemented(id), "absorbed session entries stay plain");
            scratch = children;
            maps[s as usize][i as usize] = id;
        }
        for root in roots.iter_mut() {
            if is_par(*root) {
                let (s, i) = decode(*root);
                let mapped = maps[s][i];
                debug_assert_ne!(mapped, u32::MAX, "roots resolve after the absorb pass");
                *root = negate_if(is_complemented(*root), mapped);
            }
        }
        self.par_sections += 1;
        self.par_tasks += stats.tasks;
        self.par_steals += stats.steals;
        self.par_shard_contention += stats.contention;
        self.complement_hits += stats.complement_hits;
        self.op_cache_mut().add_external(
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_insertions,
        );
    }
}

// ---- work-stealing task driver -------------------------------------------

/// How the splitter decomposes one task of type `T`.
pub enum Split<T> {
    /// The task resolves immediately to this (frozen) node id — a
    /// terminal rule fired or the frozen op cache already held the
    /// answer.
    Done(u32),
    /// The task reduces to another task with the same result (e.g. an
    /// XOR-with-one redirecting to NOT).
    Chain(T),
    /// Shannon expansion at `level`: one subtask per domain value, whose
    /// results become the children of `mk(level, …)`.
    Branch {
        /// The top variable the task splits on.
        level: u32,
        /// One subtask per domain value of `level`, in value order.
        tasks: Vec<T>,
    },
}

enum Kind {
    Resolved(u32),
    Leaf,
    Chain(usize),
    Branch { level: u32, children: Vec<usize> },
}

struct TaskNode<T> {
    task: T,
    kind: Kind,
}

fn intern<T: Clone + Eq + std::hash::Hash>(
    task: T,
    nodes: &mut Vec<TaskNode<T>>,
    map: &mut FxHashMap<T, usize>,
    queue: &mut VecDeque<usize>,
) -> usize {
    *map.entry(task.clone()).or_insert_with(|| {
        nodes.push(TaskNode { task, kind: Kind::Leaf });
        queue.push_back(nodes.len() - 1);
        nodes.len() - 1
    })
}

/// Runs one parallel operation over `session`.
///
/// Phase 1 (sequential): breadth-first expansion of the deduplicated
/// task tree via `split` until at least `target_leaves` unexpanded tasks
/// are pending (or the tree is exhausted); whatever remains unexpanded
/// becomes the worker leaves. Phase 2: `threads` workers (the calling
/// thread participates) drain round-robin-loaded deques, stealing from
/// the back of other workers' deques when their own runs dry, and run
/// `leaf` — typically a whole sequential explicit-stack engine — on each
/// leaf with a per-worker `new_state()` scratch. Phase 3 (sequential):
/// the task tree is combined bottom-up through the session `mk`.
///
/// Returns the session id of the root result (a frozen id when the root
/// resolved to an existing node).
pub fn run_tasks<T, S, FS, FN, FL>(
    session: &ParSession<'_>,
    threads: usize,
    target_leaves: usize,
    root: T,
    mut split: FS,
    new_state: FN,
    leaf: FL,
) -> u32
where
    T: Clone + Eq + std::hash::Hash + Send + Sync,
    FS: FnMut(&T) -> Split<T>,
    FN: Fn() -> S + Sync,
    FL: Fn(&mut ParRef<'_, '_>, &mut S, &T) -> u32 + Sync,
{
    let threads = threads.max(1);
    let mut nodes: Vec<TaskNode<T>> = Vec::new();
    let mut map: FxHashMap<T, usize> = FxHashMap::default();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let root_idx = intern(root, &mut nodes, &mut map, &mut queue);
    while queue.len() < target_leaves {
        let Some(idx) = queue.pop_front() else { break };
        let task = nodes[idx].task.clone();
        let kind = match split(&task) {
            Split::Done(id) => Kind::Resolved(id),
            Split::Chain(t) => Kind::Chain(intern(t, &mut nodes, &mut map, &mut queue)),
            Split::Branch { level, tasks } => Kind::Branch {
                level,
                children: tasks
                    .into_iter()
                    .map(|t| intern(t, &mut nodes, &mut map, &mut queue))
                    .collect(),
            },
        };
        nodes[idx].kind = kind;
    }
    session.tasks.fetch_add(nodes.len() as u64, SeqCst);

    let results: Vec<AtomicU64> = (0..nodes.len()).map(|_| AtomicU64::new(0)).collect();
    let leaves: Vec<usize> =
        (0..nodes.len()).filter(|&i| matches!(nodes[i].kind, Kind::Leaf)).collect();
    if !leaves.is_empty() {
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (n, &idx) in leaves.iter().enumerate() {
            deques[n % threads].lock().unwrap_or_else(|p| p.into_inner()).push_back(idx);
        }
        let nodes = &nodes;
        let results = &results;
        let deques = &deques;
        let new_state = &new_state;
        let leaf = &leaf;
        let worker = move |me: usize| {
            let mut ctx = session.make_ref();
            let mut state = new_state();
            let mut stolen = 0u64;
            let governor = session.kernel.governor.as_ref();
            loop {
                // A trip on any worker drains the whole pool: finishing
                // the remaining leaves could only burn more budget.
                if governor.is_some_and(Governor::is_tripped) {
                    break;
                }
                let mut next = deques[me].lock().unwrap_or_else(|p| p.into_inner()).pop_front();
                if next.is_none() {
                    for other in 1..threads {
                        let victim = (me + other) % threads;
                        next = deques[victim].lock().unwrap_or_else(|p| p.into_inner()).pop_back();
                        if next.is_some() {
                            stolen += 1;
                            break;
                        }
                    }
                }
                let Some(idx) = next else { break };
                // Catch governor aborts locally — `std::thread::scope`
                // replaces a spawned thread's payload with its own
                // message — and re-raise the trip on the driving thread
                // after the scope (the `poll` below). Ordinary panics
                // keep propagating unchanged.
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| leaf(&mut ctx, &mut state, &nodes[idx].task)));
                match outcome {
                    Ok(r) => results[idx].store(r as u64 + 1, SeqCst),
                    Err(payload) if payload.is::<GovernorAbort>() => break,
                    Err(payload) => resume_unwind(payload),
                }
            }
            session.steals.fetch_add(stolen, SeqCst);
            ctx.finish();
        };
        let worker = &worker;
        std::thread::scope(|scope| {
            for w in 1..threads {
                scope.spawn(move || worker(w));
            }
            worker(0);
        });
    }
    // Re-raise a worker-side trip on the calling thread before the
    // combine phase touches the (incomplete) leaf results.
    if let Some(governor) = &session.kernel.governor {
        governor.poll();
    }

    // Bottom-up combine. Reverse creation order is not a topological
    // order once tasks deduplicate (a shared subtask may precede one of
    // its parents), so resolve with an explicit dependency stack.
    //
    // Work bound (the cycle check): every node has at most one unready
    // visit — copies pushed by other parents sit below it on the stack,
    // so by the time they surface it has resolved and they pop in one
    // step. Hence total visits ≤ nodes + edges (a branch's children vec
    // counts the SAME deduplicated subtask once per domain value, so
    // edges — not nodes² — is the right scale), and pushes ≤ edges.
    let edges: u64 = nodes
        .iter()
        .map(|n| match &n.kind {
            Kind::Branch { children, .. } => children.len() as u64,
            Kind::Chain(_) => 1,
            _ => 0,
        })
        .sum();
    let mut ctx = session.make_ref();
    let mut stack = vec![root_idx];
    let mut vals: Vec<u32> = Vec::new();
    let mut budget = (nodes.len() as u64 + edges + 1).saturating_mul(3);
    while let Some(&idx) = stack.last() {
        budget -= 1;
        assert!(budget > 0, "cycle in parallel task graph");
        if results[idx].load(SeqCst) != 0 {
            stack.pop();
            continue;
        }
        match &nodes[idx].kind {
            Kind::Resolved(id) => {
                results[idx].store(*id as u64 + 1, SeqCst);
                stack.pop();
            }
            Kind::Leaf => unreachable!("leaf results are filled by the worker phase"),
            Kind::Chain(c) => {
                let rv = results[*c].load(SeqCst);
                if rv != 0 {
                    results[idx].store(rv, SeqCst);
                    stack.pop();
                } else {
                    stack.push(*c);
                }
            }
            Kind::Branch { level, children } => {
                let mut ready = true;
                vals.clear();
                for &c in children {
                    let rv = results[c].load(SeqCst);
                    if rv == 0 {
                        ready = false;
                        stack.push(c);
                    } else if ready {
                        vals.push((rv - 1) as u32);
                    }
                }
                if ready {
                    let r = ctx.mk(*level, &vals);
                    results[idx].store(r as u64 + 1, SeqCst);
                    stack.pop();
                }
            }
        }
    }
    let out = (results[root_idx].load(SeqCst) - 1) as u32;
    ctx.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{DdKernel, ONE, ZERO};

    fn seeded_kernel() -> (DdKernel, Vec<u32>) {
        let mut dd = DdKernel::new(vec![2; 8]);
        let mut frozen = Vec::new();
        for level in (4..8).rev() {
            let lo = *frozen.last().unwrap_or(&ZERO);
            frozen.push(dd.mk(level, &[lo, ONE]));
        }
        (dd, frozen)
    }

    #[test]
    fn session_mk_hits_frozen_table_and_dedups_new_nodes() {
        let (dd, frozen) = seeded_kernel();
        let session = ParSession::new(&dd);
        let mut ctx = session.make_ref();
        // Redundancy rule.
        assert_eq!(ctx.mk(0, &[frozen[0], frozen[0]]), frozen[0]);
        // Lock-free frozen hit: level 7 node [ZERO, ONE] already exists.
        assert_eq!(ctx.mk(7, &[ZERO, ONE]), frozen[0]);
        // New node: stable session id with PAR_BIT, deduplicated.
        let a = ctx.mk(3, &[frozen[0], frozen[1]]);
        assert!(is_par(a));
        assert_eq!(ctx.mk(3, &[frozen[0], frozen[1]]), a);
        // A node referencing a session child also dedups.
        let b = ctx.mk(2, &[a, ZERO]);
        assert_eq!(ctx.mk(2, &[a, ZERO]), b);
        ctx.finish();

        let parts = session.into_parts();
        let mut dd = dd;
        let mut roots = [b, a, frozen[0]];
        let before = dd.allocated_nodes();
        dd.absorb_par(parts, &mut roots);
        assert_eq!(dd.allocated_nodes(), before + 2, "exactly the two new nodes materialize");
        assert_eq!(roots[2], frozen[0], "frozen roots pass through unchanged");
        assert!(!is_par(roots[0]) && !is_par(roots[1]));
        // Structure survives the remap.
        assert_eq!(dd.child(roots[1], 0), frozen[0]);
        assert_eq!(dd.child(roots[1], 1), frozen[1]);
        assert_eq!(dd.child(roots[0], 0), roots[1]);
        assert_eq!(dd.child(roots[0], 1), ZERO);
        // Re-consing is canonical: the same keys now hit the frozen table.
        assert_eq!(dd.mk(3, &[frozen[0], frozen[1]]), roots[1]);
        let stats = dd.stats();
        assert_eq!(stats.par_sections, 1);
    }

    #[test]
    fn seqlock_cache_roundtrip_and_full_key_check() {
        let (dd, _) = seeded_kernel();
        let session = ParSession::with_cache_bits(&dd, 4);
        session.cache_insert((1, 10, 20, 30), 99);
        assert_eq!(session.cache_get((1, 10, 20, 30)), Some(99));
        // Same slot, different key: full-key compare rejects it.
        assert_eq!(session.cache_get((2, 10, 20, 30)), None);
        // Overwrite through the same (or another) slot still reads back.
        session.cache_insert((1, 10, 20, 30), 7);
        assert_eq!(session.cache_get((1, 10, 20, 30)), Some(7));
    }

    #[test]
    fn shard_stress_many_threads_hammer_shared_keys() {
        let (dd, frozen) = seeded_kernel();
        let session = ParSession::new(&dd);
        const THREADS: usize = 8;
        const ROUNDS: usize = 400;
        // Every thread builds the same key set (including one single hot
        // key hammered every round, which lands in one shard) and records
        // the ids it observed.
        let observed: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let session = &session;
            let frozen = &frozen;
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    scope.spawn(move || {
                        let mut ctx = session.make_ref();
                        let mut ids = Vec::new();
                        for round in 0..ROUNDS {
                            // The hot key: identical for every thread and round.
                            ids.push(ctx.mk(3, &[frozen[0], frozen[1]]));
                            // A small rotating set shared across threads.
                            let k = (round + t) % 4;
                            ids.push(ctx.mk(2, &[frozen[k], ZERO]));
                            ids.push(ctx.cache_get((0, round as u32, t as u32, 0)).unwrap_or(ZERO));
                            ctx.cache_insert((0, round as u32, t as u32, 0), ONE);
                        }
                        ctx.finish();
                        ids
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("stress worker panicked")).collect()
        });
        // All threads agree on every id: the hot key got exactly one id.
        let hot = observed[0][0];
        assert!(is_par(hot));
        for ids in &observed {
            assert_eq!(ids[0], hot);
        }
        let mut distinct: Vec<u32> =
            observed.iter().flatten().copied().filter(|&id| is_par(id)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 5, "one hot key plus four rotating keys");

        let parts = session.into_parts();
        let mut dd = dd;
        let before = dd.allocated_nodes();
        let mut roots = [hot];
        dd.absorb_par(parts, &mut roots);
        assert_eq!(dd.allocated_nodes(), before + 5, "absorb materializes exactly 5 nodes");
        assert_eq!(dd.child(roots[0], 0), frozen[0]);
    }

    #[test]
    fn driver_matches_sequential_reference() {
        // Build the same diagram through the parallel driver and through
        // direct sequential mk calls; they must agree node for node.
        let dd = DdKernel::new(vec![2; 6]);
        fn reference(dd: &mut DdKernel, level: u32, seed: u32) -> u32 {
            if level == 4 {
                return if seed.is_multiple_of(3) { ONE } else { ZERO };
            }
            let lo = reference(dd, level + 1, seed * 2);
            let hi = reference(dd, level + 1, seed * 2 + 1);
            dd.mk(level, &[lo, hi])
        }
        for threads in [1usize, 2, 4] {
            let dd = dd.clone();
            let session = ParSession::new(&dd);
            let got = run_tasks(
                &session,
                threads,
                threads * 8,
                (0u32, 1u32),
                |&(level, seed)| {
                    if level == 4 {
                        Split::Done(if seed.is_multiple_of(3) { ONE } else { ZERO })
                    } else {
                        Split::Branch {
                            level,
                            tasks: vec![(level + 1, seed * 2), (level + 1, seed * 2 + 1)],
                        }
                    }
                },
                || (),
                |ctx, (), &(level, seed)| {
                    fn go(ctx: &mut ParRef<'_, '_>, level: u32, seed: u32) -> u32 {
                        if level == 4 {
                            return if seed.is_multiple_of(3) { ONE } else { ZERO };
                        }
                        let lo = go(ctx, level + 1, seed * 2);
                        let hi = go(ctx, level + 1, seed * 2 + 1);
                        ctx.mk(level, &[lo, hi])
                    }
                    go(ctx, level, seed)
                },
            );
            let parts = session.into_parts();
            let mut dd = dd;
            let mut roots = [got];
            dd.absorb_par(parts, &mut roots);
            let mut check = dd.clone();
            assert_eq!(
                reference(&mut check, 0, 1),
                roots[0],
                "driver at {threads} threads reproduces the sequential diagram"
            );
            assert_eq!(check.allocated_nodes(), dd.allocated_nodes(), "no extra nodes");
            let stats = dd.stats();
            assert_eq!(stats.par_sections, 1);
            assert!(stats.par_tasks > 0);
        }
    }
}
