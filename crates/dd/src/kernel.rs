//! The [`DdKernel`]: arena + unique table + op cache behind the
//! canonicalising `mk` constructor, plus the shared memoized traversals,
//! external root protection and the mark-and-sweep collector.

use crate::arena::{NodeArena, TERMINAL_LEVEL};
use crate::cache::{OpCache, OpKey, OpTagStats, NUM_OP_TAGS};
use crate::edge::{is_complemented, negate, negate_if, strip, CPL_BIT};
use crate::govern::Governor;
use crate::unique::UniqueTable;

/// Node id of the FALSE terminal.
pub const ZERO: u32 = 0;
/// Node id of the TRUE terminal.
pub const ONE: u32 = 1;

/// Aggregate statistics of a kernel, reported by the analysis layer
/// alongside the paper's Table-4 size metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DdStats {
    /// Largest number of simultaneously allocated nodes observed so far,
    /// including the two terminals — the memory-limiting quantity of the
    /// method. Until the first [`DdKernel::gc`] this equals the total
    /// nodes ever allocated.
    pub peak_nodes: usize,
    /// Nodes currently allocated (live roots' closures plus any garbage
    /// not yet collected), including the two terminals.
    pub live_nodes: usize,
    /// Entries in the unique table (= non-terminal nodes).
    pub unique_entries: usize,
    /// Operation-cache lookups that found a memoized result.
    pub op_cache_hits: u64,
    /// Operation-cache lookups that missed.
    pub op_cache_misses: u64,
    /// Operation-cache insertions (each completed miss inserts once).
    pub op_cache_insertions: u64,
    /// Operation-cache insertions that displaced a live entry of a
    /// different key (the cache is lossy and direct-mapped; evicted
    /// results are recomputed on demand, never wrong).
    pub op_cache_evictions: u64,
    /// Hit/miss/eviction counters broken down by operation tag (the
    /// engines' `op` bytes index this array).
    pub per_op: [OpTagStats; NUM_OP_TAGS],
    /// Number of garbage collections run so far.
    pub gc_runs: u64,
    /// Total nodes reclaimed across all collections.
    pub gc_reclaimed: u64,
    /// Parallel apply/conversion sections run (see [`crate::par`]). Zero
    /// whenever the engines compile with one thread, so single-thread
    /// statistics stay bit-identical to the pre-parallel kernel.
    pub par_sections: u64,
    /// Leaf tasks executed by the work-stealing pool across all parallel
    /// sections. Deterministic for a fixed input (the task tree is built
    /// before the workers start).
    pub par_tasks: u64,
    /// Tasks a pool worker stole from another worker's deque.
    /// Scheduling-dependent, hence nondeterministic across runs.
    pub par_steals: u64,
    /// Times a session unique-table shard lock was observed contended
    /// (`try_lock` failed and the thread had to wait). Scheduling-
    /// dependent, hence nondeterministic across runs.
    pub par_shard_contention: u64,
    /// Operation-cache hits obtained through complemented-edge negation
    /// normalization (the memoized result answered the negated form of
    /// the query and was flipped for free). Zero whenever complement
    /// mode is off (see [`DdKernel::set_complement`]).
    pub complement_hits: u64,
}

impl DdStats {
    /// Fraction of operation-cache lookups that hit, as a percentage in
    /// `[0, 100]` (`0` when no lookups happened).
    pub fn op_cache_hit_rate_percent(&self) -> f64 {
        let total = self.op_cache_hits + self.op_cache_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.op_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of operation-cache insertions that evicted a live entry,
    /// as a percentage in `[0, 100]` (`0` when nothing was inserted).
    pub fn op_cache_evict_rate_percent(&self) -> f64 {
        if self.op_cache_insertions == 0 {
            0.0
        } else {
            100.0 * self.op_cache_evictions as f64 / self.op_cache_insertions as f64
        }
    }
}

/// Outcome of one [`DdKernel::gc`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Nodes surviving the sweep (including the two terminals).
    pub live_nodes: usize,
    /// Nodes reclaimed by the sweep.
    pub reclaimed_nodes: usize,
    /// Operation-cache entries invalidated by the collection's generation
    /// bump (the sweep renumbers node ids, so every memoized result keyed
    /// on old ids must die; the bump retires them all in O(1)).
    pub cache_entries_dropped: usize,
}

/// A stable handle to a protected root, issued by [`DdKernel::protect`].
///
/// Handles survive garbage collection: a collection renumbers node ids,
/// but [`DdKernel::resolve`] always returns the root's *current* id.
/// Handles are `Copy` for convenience; releasing the same handle twice
/// panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ref {
    slot: u32,
}

/// RAII guard protecting one root for the guard's lifetime.
///
/// Dereferences to the kernel, so operations — including [`DdKernel::gc`]
/// — can run while the guard is alive; [`Protect::root`] always yields the
/// root's current id. Dropping the guard releases the protection.
#[derive(Debug)]
pub struct Protect<'k> {
    kernel: &'k mut DdKernel,
    handle: Ref,
}

impl Protect<'_> {
    /// The underlying slot handle (valid while the guard is alive; do not
    /// release it manually — the guard does so on drop).
    pub fn handle(&self) -> Ref {
        self.handle
    }

    /// Current id of the protected root (tracks collections).
    pub fn root(&self) -> u32 {
        self.kernel.resolve(self.handle)
    }
}

impl std::ops::Deref for Protect<'_> {
    type Target = DdKernel;

    fn deref(&self) -> &DdKernel {
        self.kernel
    }
}

impl std::ops::DerefMut for Protect<'_> {
    fn deref_mut(&mut self) -> &mut DdKernel {
        self.kernel
    }
}

impl Drop for Protect<'_> {
    fn drop(&mut self) {
        self.kernel.unprotect(self.handle);
    }
}

/// A hash-consed decision-diagram kernel.
///
/// The kernel knows nothing about boolean connectives or multi-valued
/// semantics; it provides canonical node construction ([`DdKernel::mk`]),
/// memoization storage ([`DdKernel::cache_get`] /
/// [`DdKernel::cache_insert`]) and the structural traversals shared by
/// the ROBDD and ROMDD engines.
#[derive(Debug, Clone)]
pub struct DdKernel {
    pub(crate) arena: NodeArena,
    pub(crate) unique: UniqueTable,
    op_cache: OpCache,
    /// Protected external roots (`None` marks a free slot).
    roots: Vec<Option<u32>>,
    free_root_slots: Vec<u32>,
    /// Largest arena length observed at a collection (the arena only
    /// shrinks at collections, so the overall peak is the maximum of this
    /// and the current length).
    peak_snapshot: usize,
    gc_runs: u64,
    gc_reclaimed: u64,
    /// Counters of the parallel sections absorbed into this kernel (see
    /// [`crate::par`] and [`DdStats`] for the field meanings).
    pub(crate) par_sections: u64,
    pub(crate) par_tasks: u64,
    pub(crate) par_steals: u64,
    pub(crate) par_shard_contention: u64,
    /// Complement-normalized cache hits (see [`DdStats::complement_hits`]).
    pub(crate) complement_hits: u64,
    /// Complemented-edge mode: when on, [`DdKernel::mk`] enforces the
    /// regular-high canonical form of [`crate::edge`] and returns
    /// complemented edges where that halves the diagram. Only meaningful
    /// for all-binary kernels (the ROBDD engine); the ROMDD engine leaves
    /// it off.
    complement: bool,
    /// Reusable buffers of the memoized probability traversal, so a
    /// design-space sweep evaluating thousands of points on one diagram
    /// allocates nothing per point.
    prob: ProbScratch,
    /// Resource governor checked at every node materialisation (`None` —
    /// the default — means unbounded). Clones of a kernel share the
    /// governor's counters, matching the budget's per-compilation scope.
    pub(crate) governor: Option<Governor>,
}

/// Scratch of [`DdKernel::probability`]: a dense per-node value array
/// validated by epoch stamps (no clearing between evaluations) plus the
/// explicit traversal stack.
#[derive(Debug, Clone, Default)]
struct ProbScratch {
    values: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
}

impl DdKernel {
    /// Creates a kernel over levels with the given arities (2 for every
    /// binary level, the domain size for multi-valued levels).
    ///
    /// # Panics
    ///
    /// Panics if any arity is zero.
    pub fn new(arities: Vec<u32>) -> Self {
        Self::with_op_cache(arities, OpCache::default())
    }

    /// Creates a kernel whose operation cache starts with `capacity`
    /// slots and may grow up to `max_capacity` under sustained conflict
    /// pressure (both rounded to powers of two; pass `capacity ==
    /// max_capacity` to pin the size). See [`OpCache::with_capacity`].
    ///
    /// # Panics
    ///
    /// Panics if any arity is zero.
    pub fn with_cache_capacity(arities: Vec<u32>, capacity: usize, max_capacity: usize) -> Self {
        Self::with_op_cache(arities, OpCache::with_capacity(capacity, max_capacity))
    }

    fn with_op_cache(arities: Vec<u32>, op_cache: OpCache) -> Self {
        Self {
            arena: NodeArena::new(arities),
            unique: UniqueTable::default(),
            op_cache,
            roots: Vec::new(),
            free_root_slots: Vec::new(),
            peak_snapshot: 0,
            gc_runs: 0,
            gc_reclaimed: 0,
            par_sections: 0,
            par_tasks: 0,
            par_steals: 0,
            par_shard_contention: 0,
            complement_hits: 0,
            complement: false,
            prob: ProbScratch::default(),
            governor: None,
        }
    }

    /// Arms (or, with `None`, disarms) the resource governor every
    /// subsequent node materialisation reports to. Arm clones of one
    /// [`Governor`] on every manager of a logical compilation so one
    /// budget bounds their combined growth; disarm before reusing a
    /// manager outside the governed run.
    pub fn set_governor(&mut self, governor: Option<Governor>) {
        self.governor = governor;
    }

    /// The currently armed resource governor, if any.
    pub fn governor(&self) -> Option<&Governor> {
        self.governor.as_ref()
    }

    /// Switches complemented-edge mode on or off. Must be called before
    /// any non-terminal node exists: flipping the canonical form under
    /// live nodes would silently break id-equality-is-function-equality.
    ///
    /// # Panics
    ///
    /// Panics if the arena already holds non-terminal nodes, or if any
    /// level has arity other than 2 while enabling (complement edges are
    /// a binary-diagram notion).
    pub fn set_complement(&mut self, on: bool) {
        assert!(self.arena.len() == 2, "complement mode must be chosen before nodes are created");
        if on {
            assert!(
                (0..self.num_levels()).all(|l| self.arity(l) == 2),
                "complement edges require an all-binary kernel"
            );
        }
        self.complement = on;
    }

    /// Whether complemented-edge mode is on (see
    /// [`DdKernel::set_complement`]).
    pub fn complement_enabled(&self) -> bool {
        self.complement
    }

    /// Returns (creating if necessary) the canonical node
    /// `(level, children)`.
    ///
    /// Applies the shared reduction rule: a node whose children are all
    /// identical is redundant and the child is returned directly. The
    /// caller is responsible for the ordering invariant (children must
    /// test strictly greater levels).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the child count does not match the
    /// level's arity.
    pub fn mk(&mut self, level: u32, children: &[u32]) -> u32 {
        debug_assert_eq!(
            children.len(),
            self.arena.arity(level as usize),
            "child count must equal the arity of level {level}"
        );
        if children.iter().all(|&c| c == children[0]) {
            return children[0];
        }
        self.cons(level, children)
    }

    /// Hash-conses `(level, children)` after the redundancy check,
    /// enforcing the complemented-edge canonical form when the mode is
    /// on: a node whose high child is complemented or `ZERO` is stored
    /// with both children negated and returned as a complemented edge
    /// (see [`crate::edge`]).
    pub(crate) fn cons(&mut self, level: u32, children: &[u32]) -> u32 {
        let before = self.arena.len();
        let id = if self.complement
            && children.len() == 2
            && (is_complemented(children[1]) || children[1] == ZERO)
        {
            let flipped = [negate(children[0]), negate(children[1])];
            self.unique.get_or_insert(&mut self.arena, level, &flipped) | CPL_BIT
        } else {
            self.unique.get_or_insert(&mut self.arena, level, children)
        };
        // Report to the governor only after the node is fully inserted:
        // an abort unwinding from here leaves the arena and unique table
        // consistent (the node is ordinary garbage for the next gc).
        if let Some(governor) = &self.governor {
            let grown = self.arena.len() - before;
            if grown > 0 {
                governor.on_alloc(grown as u64);
            }
        }
        id
    }

    /// Number of variable levels.
    pub fn num_levels(&self) -> usize {
        self.arena.num_levels()
    }

    /// Arity (number of children) of nodes at `level`.
    pub fn arity(&self, level: usize) -> usize {
        self.arena.arity(level)
    }

    /// Appends additional levels with the given arities.
    pub fn add_levels(&mut self, arities: impl IntoIterator<Item = u32>) {
        self.arena.add_levels(arities);
    }

    /// Largest number of simultaneously allocated nodes observed so far,
    /// including the two terminals. Without collections this equals the
    /// total nodes ever created; [`DdKernel::gc`] reclaims nodes but never
    /// lowers the recorded peak.
    pub fn peak_nodes(&self) -> usize {
        self.peak_snapshot.max(self.arena.len())
    }

    /// Nodes currently allocated, including the two terminals (live
    /// closures of all roots plus any garbage not yet collected).
    pub fn allocated_nodes(&self) -> usize {
        self.arena.len()
    }

    /// Raw level of a node (`TERMINAL_LEVEL` for terminals).
    pub fn raw_level(&self, id: u32) -> u32 {
        self.arena.raw_level(id)
    }

    /// The level tested by a node, or `None` for terminals.
    pub fn level(&self, id: u32) -> Option<usize> {
        self.arena.level(id)
    }

    /// The *stored* children of a node (empty for terminals) — raw edge
    /// values as they sit in the arena, without the complement parity of
    /// `id` applied. Structural traversals (marking, counting) want this
    /// view; semantic cofactors want [`DdKernel::child`].
    pub fn children(&self, id: u32) -> &[u32] {
        self.arena.children(id)
    }

    /// The child followed when the node's variable takes `value`, with
    /// the complement parity of `id` propagated: the returned edge
    /// denotes the cofactor of the *function* `id` denotes.
    pub fn child(&self, id: u32, value: usize) -> u32 {
        negate_if(is_complemented(id), self.arena.child(id, value))
    }

    /// Looks up a memoized operation result (counted in the statistics).
    pub fn cache_get(&mut self, key: OpKey) -> Option<u32> {
        self.op_cache.get(key)
    }

    /// Memoizes an operation result.
    pub fn cache_insert(&mut self, key: OpKey, result: u32) {
        self.op_cache.insert(key, result);
    }

    /// Read-only cache probe that mutates no counters (usable through a
    /// shared reference; the parallel sections of [`crate::par`] consult
    /// the frozen pre-section cache this way).
    pub fn cache_peek(&self, key: OpKey) -> Option<u32> {
        self.op_cache.peek(key)
    }

    /// Shared access to the operation cache for the parallel session
    /// machinery (stats folding at absorb time).
    pub(crate) fn op_cache_mut(&mut self) -> &mut OpCache {
        &mut self.op_cache
    }

    /// Drops all memoized operation results (the unique table is kept, so
    /// canonicity is unaffected). With the generation-tagged cache this is
    /// a single tag bump, not a table walk.
    pub fn clear_op_cache(&mut self) {
        self.op_cache.clear();
    }

    /// Current slot count of the operation cache (it may have grown from
    /// its initial capacity under conflict pressure).
    pub fn op_cache_capacity(&self) -> usize {
        self.op_cache.capacity()
    }

    /// Current kernel statistics.
    pub fn stats(&self) -> DdStats {
        DdStats {
            peak_nodes: self.peak_nodes(),
            live_nodes: self.arena.len(),
            unique_entries: self.unique.len(),
            op_cache_hits: self.op_cache.hits(),
            op_cache_misses: self.op_cache.misses(),
            op_cache_insertions: self.op_cache.insertions(),
            op_cache_evictions: self.op_cache.evictions(),
            per_op: *self.op_cache.per_op_stats(),
            gc_runs: self.gc_runs,
            gc_reclaimed: self.gc_reclaimed,
            par_sections: self.par_sections,
            par_tasks: self.par_tasks,
            par_steals: self.par_steals,
            par_shard_contention: self.par_shard_contention,
            complement_hits: self.complement_hits,
        }
    }

    // ---- garbage collection ------------------------------------------------

    /// Registers `id` as an external root: it (and everything reachable
    /// from it) survives every [`DdKernel::gc`] until the returned handle
    /// is passed to [`DdKernel::unprotect`].
    pub fn protect(&mut self, id: u32) -> Ref {
        assert!((strip(id) as usize) < self.arena.len(), "cannot protect unknown node {id}");
        match self.free_root_slots.pop() {
            Some(slot) => {
                self.roots[slot as usize] = Some(id);
                Ref { slot }
            }
            None => {
                self.roots.push(Some(id));
                Ref { slot: (self.roots.len() - 1) as u32 }
            }
        }
    }

    /// Protects `id` for the lifetime of the returned guard (RAII form of
    /// [`DdKernel::protect`]). The guard dereferences to the kernel.
    pub fn protect_scoped(&mut self, id: u32) -> Protect<'_> {
        let handle = self.protect(id);
        Protect { kernel: self, handle }
    }

    /// Releases a protection and returns the root's current id.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already released.
    pub fn unprotect(&mut self, handle: Ref) -> u32 {
        let id = self.roots[handle.slot as usize].take().expect("root handle was already released");
        self.free_root_slots.push(handle.slot);
        id
    }

    /// Current id of a protected root. Collections renumber node ids; this
    /// always reflects the latest numbering.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already released.
    pub fn resolve(&self, handle: Ref) -> u32 {
        self.roots[handle.slot as usize].expect("root handle was already released")
    }

    /// Currently protected root ids.
    pub fn protected_roots(&self) -> Vec<u32> {
        self.roots.iter().flatten().copied().collect()
    }

    /// Marks every node reachable from the given roots (terminals are
    /// always marked) and returns the mark vector.
    pub(crate) fn mark(&self, roots: &[u32]) -> Vec<bool> {
        let mut live = vec![false; self.arena.len()];
        live[ZERO as usize] = true;
        live[ONE as usize] = true;
        let mut stack: Vec<u32> = roots.to_vec();
        while let Some(id) = stack.pop() {
            let id = strip(id);
            if std::mem::replace(&mut live[id as usize], true) {
                continue;
            }
            stack.extend_from_slice(self.arena.children(id));
        }
        live
    }

    /// Number of distinct nodes (terminals included) reachable from the
    /// union of `roots` — the size metric the sifting driver minimises.
    pub fn live_size(&self, roots: &[u32]) -> usize {
        let mut seen = vec![false; self.arena.len()];
        let mut stack: Vec<u32> = roots.to_vec();
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            let id = strip(id);
            if std::mem::replace(&mut seen[id as usize], true) {
                continue;
            }
            count += 1;
            stack.extend_from_slice(self.arena.children(id));
        }
        count
    }

    /// Mark-and-sweep garbage collection over the protected roots.
    ///
    /// Marks everything reachable from the roots registered via
    /// [`DdKernel::protect`], sweeps the arena (compacting the surviving
    /// ids downward while preserving their relative order), rebuilds the
    /// unique table, and invalidates the operation cache with a single
    /// generation bump — the sweep renumbers node ids, so every memoized
    /// result keyed on old ids is retired at once (a later lookup misses
    /// and recomputes, which reproduces the identical canonical node).
    ///
    /// **All node ids obtained before the collection are invalidated**;
    /// use root handles ([`DdKernel::resolve`]) to carry diagrams across a
    /// collection. The recorded peak ([`DdKernel::peak_nodes`]) is
    /// unaffected.
    pub fn gc(&mut self) -> GcStats {
        self.peak_snapshot = self.peak_snapshot.max(self.arena.len());
        let live = self.mark(&self.protected_roots());
        let before = self.arena.len();
        let remap = self.arena.compact(&live);
        let after = self.arena.len();
        self.unique.rebuild(&self.arena);
        let dropped = self.op_cache.invalidate_all();
        for slot in self.roots.iter_mut().flatten() {
            let phys = remap[strip(*slot) as usize];
            debug_assert_ne!(phys, u32::MAX, "protected roots survive the sweep");
            *slot = phys | (*slot & CPL_BIT);
        }
        self.gc_runs += 1;
        self.gc_reclaimed += (before - after) as u64;
        GcStats {
            live_nodes: after,
            reclaimed_nodes: before - after,
            cache_entries_dropped: dropped,
        }
    }

    // ---- shared traversals -------------------------------------------------

    /// All *physical* nodes reachable from `root` (each exactly once,
    /// complement bits stripped), root first. With complement edges a
    /// node and its negation share one physical entry, so this is the
    /// stored-size view — the metric the paper's node counts report.
    pub fn reachable(&self, root: u32) -> Vec<u32> {
        // Dense visited bitmap: node ids are arena indices, so a flat
        // Vec<bool> beats any hash set on these traversals.
        let mut seen = vec![false; self.arena.len()];
        let mut order = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let id = strip(id);
            if std::mem::replace(&mut seen[id as usize], true) {
                continue;
            }
            order.push(id);
            stack.extend_from_slice(self.arena.children(id));
        }
        order
    }

    /// Number of nodes reachable from `root`, including terminals (the
    /// usual "decision-diagram size" metric).
    pub fn node_count(&self, root: u32) -> usize {
        self.reachable(root).len()
    }

    /// Number of non-terminal nodes reachable from `root`.
    pub fn inner_node_count(&self, root: u32) -> usize {
        self.reachable(root).iter().filter(|&&id| id > ONE).count()
    }

    /// Number of distinct nodes reachable from the union of `roots`,
    /// but stopping as soon as the count reaches `cap`. The parallel
    /// engines use this to decide whether an operand set is large enough
    /// to be worth a parallel section without paying a full traversal on
    /// small diagrams.
    pub fn node_count_capped(&self, roots: &[u32], cap: usize) -> usize {
        let mut seen = vec![false; self.arena.len()];
        let mut stack: Vec<u32> = roots.to_vec();
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            let id = strip(id);
            if std::mem::replace(&mut seen[id as usize], true) {
                continue;
            }
            count += 1;
            if count >= cap {
                return count;
            }
            stack.extend_from_slice(self.arena.children(id));
        }
        count
    }

    /// The set of variable levels appearing in `root`, in increasing
    /// order.
    pub fn support(&self, root: u32) -> Vec<usize> {
        let mut levels: Vec<usize> =
            self.reachable(root).iter().filter_map(|&id| self.arena.level(id)).collect();
        levels.sort_unstable();
        levels.dedup();
        levels
    }

    /// Follows one path from `root` to a terminal, choosing the branch
    /// `pick(level)` at every decision node, and returns whether the TRUE
    /// terminal was reached.
    pub fn eval<P: FnMut(usize) -> usize>(&self, root: u32, mut pick: P) -> bool {
        let mut cur = root;
        while cur > ONE {
            let level = self.arena.raw_level(cur) as usize;
            debug_assert_ne!(self.arena.raw_level(cur), TERMINAL_LEVEL);
            // Propagate the edge's complement parity into the cofactor;
            // terminals normalize exactly, so the loop test stays `> ONE`.
            cur = negate_if(is_complemented(cur), self.arena.child(cur, pick(level)));
        }
        cur == ONE
    }

    /// Probability that the function rooted at `root` evaluates to 1 when
    /// the variable at each level `l` independently takes value `v` with
    /// probability `weight(l, v)`.
    ///
    /// This is the computation at the heart of the yield method: one
    /// memoized depth-first traversal, linear in the number of nodes.
    /// Levels skipped by the diagram contribute a factor of 1 provided
    /// each level's weights sum to 1; zero-weight branches are never
    /// descended into.
    ///
    /// The traversal is iterative (explicit stack) and memoizes into a
    /// dense epoch-stamped scratch array owned by the kernel, so repeated
    /// evaluations — a design-space sweep re-weighting one compiled
    /// diagram thousands of times — allocate nothing per call.
    pub fn probability<W: Fn(usize, usize) -> f64>(&mut self, root: u32, weight: W) -> f64 {
        if root == ONE {
            return 1.0;
        }
        if root == ZERO {
            return 0.0;
        }
        let scratch = &mut self.prob;
        if scratch.epoch == u32::MAX {
            scratch.stamp.fill(0);
            scratch.epoch = 0;
        }
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        let n = self.arena.len();
        if scratch.values.len() < n {
            scratch.values.resize(n, 0.0);
            scratch.stamp.resize(n, 0);
        }
        // Memoization is per *physical* node: the value stored is the
        // probability of the stored (uncomplemented) function, and each
        // complemented edge crossed contributes `1 - p` on the way out.
        scratch.stack.clear();
        scratch.stack.push(strip(root));
        while let Some(&node) = scratch.stack.last() {
            if scratch.stamp[node as usize] == epoch {
                scratch.stack.pop();
                continue;
            }
            let level = self.arena.raw_level(node) as usize;
            let children = self.arena.children(node);
            let before = scratch.stack.len();
            for (value, &child) in children.iter().enumerate() {
                let phys = strip(child);
                if phys > ONE
                    && scratch.stamp[phys as usize] != epoch
                    && weight(level, value) != 0.0
                {
                    scratch.stack.push(phys);
                }
            }
            if scratch.stack.len() > before {
                continue; // resolve the pending children first
            }
            scratch.stack.pop();
            let mut p = 0.0;
            for (value, &child) in children.iter().enumerate() {
                let w = weight(level, value);
                if w == 0.0 {
                    continue;
                }
                let pv = match child {
                    ONE => 1.0,
                    ZERO => 0.0,
                    _ => {
                        let stored = scratch.values[strip(child) as usize];
                        if is_complemented(child) {
                            1.0 - stored
                        } else {
                            stored
                        }
                    }
                };
                p += w * pv;
            }
            scratch.values[node as usize] = p;
            scratch.stamp[node as usize] = epoch;
        }
        let p = scratch.values[strip(root) as usize];
        if is_complemented(root) {
            1.0 - p
        } else {
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mk_is_canonical_and_reducing() {
        let mut dd = DdKernel::new(vec![2, 3]);
        let a = dd.mk(1, &[ZERO, ONE, ONE]);
        let b = dd.mk(1, &[ZERO, ONE, ONE]);
        assert_eq!(a, b);
        assert_eq!(dd.peak_nodes(), 3);
        assert_eq!(dd.mk(1, &[ONE, ONE, ONE]), ONE, "redundant node must reduce");
        assert_eq!(dd.mk(0, &[a, a]), a);
        assert_eq!(dd.level(a), Some(1));
        assert_eq!(dd.raw_level(ONE), TERMINAL_LEVEL);
        assert_eq!(dd.children(a), &[ZERO, ONE, ONE]);
        assert_eq!(dd.child(a, 2), ONE);
        assert_eq!(dd.arity(1), 3);
        assert_eq!(dd.num_levels(), 2);
    }

    #[test]
    fn traversals() {
        let mut dd = DdKernel::new(vec![2, 3]);
        let a = dd.mk(1, &[ZERO, ONE, ONE]);
        let f = dd.mk(0, &[ZERO, a]);
        assert_eq!(dd.node_count(f), 4);
        assert_eq!(dd.inner_node_count(f), 2);
        assert_eq!(dd.node_count(ONE), 1);
        assert_eq!(dd.inner_node_count(ZERO), 0);
        assert_eq!(dd.support(f), vec![0, 1]);
        assert!(dd.support(ONE).is_empty());
        let reach = dd.reachable(f);
        assert_eq!(reach[0], f);
        assert_eq!(reach.len(), 4);
        assert!(dd.eval(f, |l| if l == 0 { 1 } else { 2 }));
        assert!(!dd.eval(f, |_| 0));
    }

    #[test]
    fn probability_matches_enumeration() {
        let mut dd = DdKernel::new(vec![2, 3]);
        let a = dd.mk(1, &[ZERO, ONE, ONE]); // x1 >= 1
        let f = dd.mk(0, &[ZERO, a]); // x0 == 1 && x1 >= 1
        let w = [vec![0.4, 0.6], vec![0.2, 0.3, 0.5]];
        let p = dd.probability(f, |l, v| w[l][v]);
        assert!((p - 0.6 * 0.8).abs() < 1e-12);
        assert_eq!(dd.probability(ONE, |_, _| 0.0), 1.0);
        assert_eq!(dd.probability(ZERO, |_, _| 1.0), 0.0);
    }

    #[test]
    fn zero_weight_branches_are_skipped() {
        let mut dd = DdKernel::new(vec![3]);
        let f = dd.mk(0, &[ZERO, ONE, ZERO]);
        // Value 2 has weight 0; its branch must not contribute.
        let p = dd.probability(f, |_, v| [0.5, 0.5, 0.0][v]);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_and_stats() {
        let mut dd = DdKernel::new(vec![2]);
        assert_eq!(dd.cache_get((0, 2, 3, 0)), None);
        dd.cache_insert((0, 2, 3, 0), 5);
        assert_eq!(dd.cache_get((0, 2, 3, 0)), Some(5));
        let n = dd.mk(0, &[ZERO, ONE]);
        let stats = dd.stats();
        assert_eq!(stats.peak_nodes, 3);
        assert_eq!(stats.unique_entries, 1);
        assert_eq!(stats.op_cache_hits, 1);
        assert_eq!(stats.op_cache_misses, 1);
        assert_eq!(stats.op_cache_insertions, 1);
        assert_eq!(stats.op_cache_evictions, 0);
        assert_eq!(stats.per_op[0].hits, 1);
        assert_eq!(stats.per_op[0].misses, 1);
        assert!((stats.op_cache_hit_rate_percent() - 50.0).abs() < 1e-12);
        assert_eq!(stats.op_cache_evict_rate_percent(), 0.0);
        dd.clear_op_cache();
        assert_eq!(dd.cache_get((0, 2, 3, 0)), None);
        assert_eq!(dd.mk(0, &[ZERO, ONE]), n);
        // add_levels makes room for more variables.
        dd.add_levels([4]);
        assert_eq!(dd.num_levels(), 2);
        let _ = dd.mk(1, &[ZERO, ONE, ONE, ZERO]);
    }

    #[test]
    fn gc_reclaims_unprotected_nodes_and_keeps_roots_valid() {
        let mut dd = DdKernel::new(vec![2, 2, 2]);
        let c = dd.mk(2, &[ZERO, ONE]);
        let b = dd.mk(1, &[c, ONE]);
        let f = dd.mk(0, &[b, c]);
        // Garbage: a second diagram that is never protected.
        let g1 = dd.mk(2, &[ONE, ZERO]);
        let _g2 = dd.mk(0, &[g1, ONE]);
        assert_eq!(dd.allocated_nodes(), 7);
        let expected: Vec<bool> = (0..8).map(|row| dd.eval(f, |l| (row >> l) & 1)).collect();

        let handle = dd.protect(f);
        let stats = dd.gc();
        assert_eq!(stats.reclaimed_nodes, 2);
        assert_eq!(stats.live_nodes, 5);
        assert_eq!(dd.allocated_nodes(), 5);
        assert_eq!(dd.peak_nodes(), 7, "collections never lower the peak");
        let f = dd.unprotect(handle);
        for (row, &want) in expected.iter().enumerate() {
            assert_eq!(dd.eval(f, |l| (row >> l) & 1), want);
        }
        // The unique table was rebuilt consistently: re-making the live
        // nodes allocates nothing new.
        let before = dd.allocated_nodes();
        let c2 = dd.mk(2, &[ZERO, ONE]);
        let b2 = dd.mk(1, &[c2, ONE]);
        assert_eq!(dd.mk(0, &[b2, c2]), f);
        assert_eq!(dd.allocated_nodes(), before);
        let stats = dd.stats();
        assert_eq!(stats.gc_runs, 1);
        assert_eq!(stats.gc_reclaimed, 2);
        assert_eq!(stats.live_nodes, 5);
        assert_eq!(stats.peak_nodes, 7);
    }

    #[test]
    fn gc_generation_bump_invalidates_op_cache() {
        let mut dd = DdKernel::new(vec![2, 2]);
        let a = dd.mk(1, &[ZERO, ONE]);
        let dead = dd.mk(1, &[ONE, ZERO]);
        let f = dd.mk(0, &[a, ONE]);
        dd.cache_insert((7, f, a, 0), a);
        dd.cache_insert((7, dead, a, 0), a);
        let handle = dd.protect(f);
        let stats = dd.gc();
        assert_eq!(stats.reclaimed_nodes, 1);
        // The sweep renumbers ids, so the generation bump retires every
        // memoized entry — the stale results must be unreachable under
        // both the old and the refreshed keys.
        assert_eq!(stats.cache_entries_dropped, 2);
        let f = dd.resolve(handle);
        let a = dd.child(f, 0);
        assert_eq!(dd.cache_get((7, f, a, 0)), None, "generation bump drops all entries");
        // The cache works normally under the new generation.
        dd.cache_insert((7, f, a, 0), a);
        assert_eq!(dd.cache_get((7, f, a, 0)), Some(a));
        dd.unprotect(handle);
    }

    #[test]
    fn protect_scoped_guard_tracks_collections() {
        let mut dd = DdKernel::new(vec![2]);
        let f = dd.mk(0, &[ZERO, ONE]);
        {
            let mut guard = dd.protect_scoped(f);
            let _ = guard.gc();
            assert_eq!(guard.children(guard.root()), &[ZERO, ONE]);
            assert_eq!(guard.protected_roots().len(), 1);
        }
        assert!(dd.protected_roots().is_empty(), "guard releases on drop");
    }

    #[test]
    #[should_panic]
    fn double_unprotect_panics() {
        let mut dd = DdKernel::new(vec![2]);
        let f = dd.mk(0, &[ZERO, ONE]);
        let handle = dd.protect(f);
        dd.unprotect(handle);
        dd.unprotect(handle);
    }

    #[test]
    fn live_size_counts_the_union() {
        let mut dd = DdKernel::new(vec![2, 2]);
        let a = dd.mk(1, &[ZERO, ONE]);
        let f = dd.mk(0, &[a, ONE]);
        let g = dd.mk(0, &[ONE, a]);
        assert_eq!(dd.live_size(&[f]), 4);
        assert_eq!(dd.live_size(&[f, g]), 5, "shared structure is counted once");
        assert_eq!(dd.live_size(&[]), 0);
    }
}
