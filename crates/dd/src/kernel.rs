//! The [`DdKernel`]: arena + unique table + op cache behind the
//! canonicalising `mk` constructor, plus the shared memoized traversals.

use crate::arena::{NodeArena, TERMINAL_LEVEL};
use crate::cache::{OpCache, OpKey};
use crate::hash::FxHashMap;
use crate::unique::UniqueTable;

/// Node id of the FALSE terminal.
pub const ZERO: u32 = 0;
/// Node id of the TRUE terminal.
pub const ONE: u32 = 1;

/// Aggregate statistics of a kernel, reported by the analysis layer
/// alongside the paper's Table-4 size metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DdStats {
    /// Total nodes ever allocated, including the two terminals. The
    /// kernel never garbage-collects, so this is the *peak* live node
    /// count — the memory-limiting quantity of the method.
    pub peak_nodes: usize,
    /// Entries in the unique table (= non-terminal nodes).
    pub unique_entries: usize,
    /// Operation-cache lookups that found a memoized result.
    pub op_cache_hits: u64,
    /// Operation-cache lookups that missed.
    pub op_cache_misses: u64,
}

/// A hash-consed decision-diagram kernel.
///
/// The kernel knows nothing about boolean connectives or multi-valued
/// semantics; it provides canonical node construction ([`DdKernel::mk`]),
/// memoization storage ([`DdKernel::cache_get`] /
/// [`DdKernel::cache_insert`]) and the structural traversals shared by
/// the ROBDD and ROMDD engines.
#[derive(Debug, Clone)]
pub struct DdKernel {
    arena: NodeArena,
    unique: UniqueTable,
    op_cache: OpCache,
}

impl DdKernel {
    /// Creates a kernel over levels with the given arities (2 for every
    /// binary level, the domain size for multi-valued levels).
    ///
    /// # Panics
    ///
    /// Panics if any arity is zero.
    pub fn new(arities: Vec<u32>) -> Self {
        Self {
            arena: NodeArena::new(arities),
            unique: UniqueTable::default(),
            op_cache: OpCache::default(),
        }
    }

    /// Returns (creating if necessary) the canonical node
    /// `(level, children)`.
    ///
    /// Applies the shared reduction rule: a node whose children are all
    /// identical is redundant and the child is returned directly. The
    /// caller is responsible for the ordering invariant (children must
    /// test strictly greater levels).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the child count does not match the
    /// level's arity.
    pub fn mk(&mut self, level: u32, children: &[u32]) -> u32 {
        debug_assert_eq!(
            children.len(),
            self.arena.arity(level as usize),
            "child count must equal the arity of level {level}"
        );
        if children.iter().all(|&c| c == children[0]) {
            return children[0];
        }
        self.unique.get_or_insert(&mut self.arena, level, children)
    }

    /// Number of variable levels.
    pub fn num_levels(&self) -> usize {
        self.arena.num_levels()
    }

    /// Arity (number of children) of nodes at `level`.
    pub fn arity(&self, level: usize) -> usize {
        self.arena.arity(level)
    }

    /// Appends additional levels with the given arities.
    pub fn add_levels(&mut self, arities: impl IntoIterator<Item = u32>) {
        self.arena.add_levels(arities);
    }

    /// Total number of nodes ever created, including the two terminals
    /// (the peak, since the kernel never garbage-collects).
    pub fn peak_nodes(&self) -> usize {
        self.arena.len()
    }

    /// Raw level of a node (`TERMINAL_LEVEL` for terminals).
    pub fn raw_level(&self, id: u32) -> u32 {
        self.arena.raw_level(id)
    }

    /// The level tested by a node, or `None` for terminals.
    pub fn level(&self, id: u32) -> Option<usize> {
        self.arena.level(id)
    }

    /// The children of a node (empty for terminals).
    pub fn children(&self, id: u32) -> &[u32] {
        self.arena.children(id)
    }

    /// The child followed when the node's variable takes `value`.
    pub fn child(&self, id: u32, value: usize) -> u32 {
        self.arena.child(id, value)
    }

    /// Looks up a memoized operation result (counted in the statistics).
    pub fn cache_get(&mut self, key: OpKey) -> Option<u32> {
        self.op_cache.get(key)
    }

    /// Memoizes an operation result.
    pub fn cache_insert(&mut self, key: OpKey, result: u32) {
        self.op_cache.insert(key, result);
    }

    /// Drops all memoized operation results (the unique table is kept, so
    /// canonicity is unaffected).
    pub fn clear_op_cache(&mut self) {
        self.op_cache.clear();
    }

    /// Current kernel statistics.
    pub fn stats(&self) -> DdStats {
        DdStats {
            peak_nodes: self.arena.len(),
            unique_entries: self.unique.len(),
            op_cache_hits: self.op_cache.hits(),
            op_cache_misses: self.op_cache.misses(),
        }
    }

    // ---- shared traversals -------------------------------------------------

    /// All nodes reachable from `root` (each exactly once), root first.
    pub fn reachable(&self, root: u32) -> Vec<u32> {
        let mut seen: FxHashMap<u32, ()> = FxHashMap::default();
        let mut order = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen.insert(id, ()).is_some() {
                continue;
            }
            order.push(id);
            stack.extend_from_slice(self.arena.children(id));
        }
        order
    }

    /// Number of nodes reachable from `root`, including terminals (the
    /// usual "decision-diagram size" metric).
    pub fn node_count(&self, root: u32) -> usize {
        self.reachable(root).len()
    }

    /// Number of non-terminal nodes reachable from `root`.
    pub fn inner_node_count(&self, root: u32) -> usize {
        self.reachable(root).iter().filter(|&&id| id > ONE).count()
    }

    /// The set of variable levels appearing in `root`, in increasing
    /// order.
    pub fn support(&self, root: u32) -> Vec<usize> {
        let mut levels: Vec<usize> =
            self.reachable(root).iter().filter_map(|&id| self.arena.level(id)).collect();
        levels.sort_unstable();
        levels.dedup();
        levels
    }

    /// Follows one path from `root` to a terminal, choosing the branch
    /// `pick(level)` at every decision node, and returns whether the TRUE
    /// terminal was reached.
    pub fn eval<P: FnMut(usize) -> usize>(&self, root: u32, mut pick: P) -> bool {
        let mut cur = root;
        while cur > ONE {
            let level = self.arena.raw_level(cur) as usize;
            debug_assert_ne!(self.arena.raw_level(cur), TERMINAL_LEVEL);
            cur = self.arena.child(cur, pick(level));
        }
        cur == ONE
    }

    /// Probability that the function rooted at `root` evaluates to 1 when
    /// the variable at each level `l` independently takes value `v` with
    /// probability `weight(l, v)`.
    ///
    /// This is the computation at the heart of the yield method: one
    /// memoized depth-first traversal, linear in the number of nodes.
    /// Levels skipped by the diagram contribute a factor of 1 provided
    /// each level's weights sum to 1; zero-weight branches are never
    /// descended into.
    pub fn probability<W: Fn(usize, usize) -> f64>(&self, root: u32, weight: W) -> f64 {
        let mut cache: FxHashMap<u32, f64> = FxHashMap::default();
        self.probability_memo(root, &weight, &mut cache)
    }

    fn probability_memo<W: Fn(usize, usize) -> f64>(
        &self,
        node: u32,
        weight: &W,
        cache: &mut FxHashMap<u32, f64>,
    ) -> f64 {
        if node == ONE {
            return 1.0;
        }
        if node == ZERO {
            return 0.0;
        }
        if let Some(&p) = cache.get(&node) {
            return p;
        }
        let level = self.arena.raw_level(node) as usize;
        let mut p = 0.0;
        for (value, &child) in self.arena.children(node).iter().enumerate() {
            let w = weight(level, value);
            if w == 0.0 {
                continue;
            }
            p += w * self.probability_memo(child, weight, cache);
        }
        cache.insert(node, p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mk_is_canonical_and_reducing() {
        let mut dd = DdKernel::new(vec![2, 3]);
        let a = dd.mk(1, &[ZERO, ONE, ONE]);
        let b = dd.mk(1, &[ZERO, ONE, ONE]);
        assert_eq!(a, b);
        assert_eq!(dd.peak_nodes(), 3);
        assert_eq!(dd.mk(1, &[ONE, ONE, ONE]), ONE, "redundant node must reduce");
        assert_eq!(dd.mk(0, &[a, a]), a);
        assert_eq!(dd.level(a), Some(1));
        assert_eq!(dd.raw_level(ONE), TERMINAL_LEVEL);
        assert_eq!(dd.children(a), &[ZERO, ONE, ONE]);
        assert_eq!(dd.child(a, 2), ONE);
        assert_eq!(dd.arity(1), 3);
        assert_eq!(dd.num_levels(), 2);
    }

    #[test]
    fn traversals() {
        let mut dd = DdKernel::new(vec![2, 3]);
        let a = dd.mk(1, &[ZERO, ONE, ONE]);
        let f = dd.mk(0, &[ZERO, a]);
        assert_eq!(dd.node_count(f), 4);
        assert_eq!(dd.inner_node_count(f), 2);
        assert_eq!(dd.node_count(ONE), 1);
        assert_eq!(dd.inner_node_count(ZERO), 0);
        assert_eq!(dd.support(f), vec![0, 1]);
        assert!(dd.support(ONE).is_empty());
        let reach = dd.reachable(f);
        assert_eq!(reach[0], f);
        assert_eq!(reach.len(), 4);
        assert!(dd.eval(f, |l| if l == 0 { 1 } else { 2 }));
        assert!(!dd.eval(f, |_| 0));
    }

    #[test]
    fn probability_matches_enumeration() {
        let mut dd = DdKernel::new(vec![2, 3]);
        let a = dd.mk(1, &[ZERO, ONE, ONE]); // x1 >= 1
        let f = dd.mk(0, &[ZERO, a]); // x0 == 1 && x1 >= 1
        let w = [vec![0.4, 0.6], vec![0.2, 0.3, 0.5]];
        let p = dd.probability(f, |l, v| w[l][v]);
        assert!((p - 0.6 * 0.8).abs() < 1e-12);
        assert_eq!(dd.probability(ONE, |_, _| 0.0), 1.0);
        assert_eq!(dd.probability(ZERO, |_, _| 1.0), 0.0);
    }

    #[test]
    fn zero_weight_branches_are_skipped() {
        let mut dd = DdKernel::new(vec![3]);
        let f = dd.mk(0, &[ZERO, ONE, ZERO]);
        // Value 2 has weight 0; its branch must not contribute.
        let p = dd.probability(f, |_, v| [0.5, 0.5, 0.0][v]);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_and_stats() {
        let mut dd = DdKernel::new(vec![2]);
        assert_eq!(dd.cache_get((0, 2, 3, 0)), None);
        dd.cache_insert((0, 2, 3, 0), 5);
        assert_eq!(dd.cache_get((0, 2, 3, 0)), Some(5));
        let n = dd.mk(0, &[ZERO, ONE]);
        let stats = dd.stats();
        assert_eq!(stats.peak_nodes, 3);
        assert_eq!(stats.unique_entries, 1);
        assert_eq!(stats.op_cache_hits, 1);
        assert_eq!(stats.op_cache_misses, 1);
        dd.clear_op_cache();
        assert_eq!(dd.cache_get((0, 2, 3, 0)), None);
        assert_eq!(dd.mk(0, &[ZERO, ONE]), n);
        // add_levels makes room for more variables.
        dd.add_levels([4]);
        assert_eq!(dd.num_levels(), 2);
        let _ = dd.mk(1, &[ZERO, ONE, ONE, ZERO]);
    }
}
