//! Dynamic variable reordering by sifting (Rudell-style).
//!
//! The building block is [`DdKernel::swap_adjacent_levels`], the classic
//! in-place exchange of two adjacent levels: every node keeps its id (so
//! parent references and memoized operation results stay valid — both are
//! properties of the *function* a node denotes, which the swap preserves)
//! while the nodes of the two levels are relabeled or rewritten and the
//! unique table is updated incrementally.
//!
//! [`DdKernel::sift`] moves every variable through all positions via
//! adjacent swaps and leaves it at the position minimising the live node
//! count, bounded by a growth factor and a configurable number of rounds.
//! [`DdKernel::sift_blocks`] is the grouped form used for *coded* ROBDDs,
//! where the bits encoding one multiple-valued variable must stay
//! contiguous: whole blocks of levels are moved as units, so the layering
//! requirement of the ROBDD → ROMDD conversion is preserved.
//!
//! Swaps turn the nodes of the old lower level that lose their last parent
//! into garbage. The sift driver protects its roots, runs
//! [`DdKernel::gc`] opportunistically whenever the garbage outweighs the
//! live diagram, and collects once more before returning — so sifting
//! renumbers node ids, and the driver hands the refreshed root ids back.

use crate::edge::{is_complemented, negate_if};
use crate::kernel::{DdKernel, Ref};

/// Driver-internal root tracking: ids plus the protection handles used to
/// refresh them across opportunistic collections.
struct SiftState {
    roots: Vec<u32>,
    handles: Vec<Ref>,
}

/// Tuning knobs of the sifting driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftConfig {
    /// A variable's walk through the order is abandoned in the current
    /// direction as soon as the live size exceeds `max_growth` times the
    /// size at the start of that variable's sift (the offending swap is
    /// undone immediately). Must be ≥ 1.
    pub max_growth: f64,
    /// Maximum number of full rounds (every variable sifted once per
    /// round). The driver stops early after a round with no improvement.
    /// Must be ≥ 1.
    pub max_rounds: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        Self { max_growth: 1.2, max_rounds: 2 }
    }
}

/// Result of a [`DdKernel::sift`] / [`DdKernel::sift_blocks`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiftOutcome {
    /// Live node count (union over the given roots) before sifting.
    pub initial_size: usize,
    /// Live node count after sifting (≤ `initial_size`: every variable
    /// settles at the best position seen, which includes its start).
    pub final_size: usize,
    /// Largest live size among the *committed* intermediate orders (swaps
    /// exceeding the growth bound are undone and not counted).
    pub max_live_size: usize,
    /// Rounds actually run.
    pub rounds: usize,
    /// Adjacent-level swaps performed (including reverts and the final
    /// walk back to each variable's best position).
    pub swaps: u64,
    /// `level_origin[new_level]` is the level (at call time) of the
    /// variable now at `new_level` — the permutation callers need to
    /// remap level-indexed data such as probability vectors.
    pub level_origin: Vec<usize>,
    /// `block_origin[new_pos]` is the input block index now at position
    /// `new_pos` (for [`DdKernel::sift`] this equals `level_origin`).
    pub block_origin: Vec<usize>,
}

impl DdKernel {
    /// Exchanges adjacent levels `l` and `l + 1` in place.
    ///
    /// Afterwards the variable previously tested at `l` is tested at
    /// `l + 1` and vice versa (their arities move with them). Node ids are
    /// preserved: nodes at `l + 1` are relabeled, nodes at `l` that do not
    /// depend on the swapped-in variable move down, and nodes at `l` that
    /// do are rewritten in place over fresh (hash-consed) children at the
    /// new `l + 1`. Old lower-level nodes whose last parent disappears
    /// become garbage for the next [`DdKernel::gc`].
    ///
    /// # Panics
    ///
    /// Panics if `l + 1` is not a valid level.
    pub fn swap_adjacent_levels(&mut self, l: usize) {
        assert!(l + 1 < self.num_levels(), "level {} cannot be swapped down", l);
        let lu = l as u32;
        let ll = lu + 1;
        // Split the upper level against the *old* labeling: nodes with a
        // child at the old lower level must be rewritten, the rest only
        // change position. The per-level unique table enumerates the
        // level directly — no arena scan.
        let upper: Vec<u32> = self.unique.level_ids(l).collect();
        let mut moved = Vec::new();
        let mut interacting: Vec<(u32, Vec<u32>, Vec<bool>)> = Vec::new();
        for id in upper {
            let children = self.arena.children(id);
            // Only interacting nodes need their children copied out (the
            // rewrite below mutates the arena); the common `moved` case
            // stays allocation-free.
            if children.iter().any(|&c| self.arena.raw_level(c) == ll) {
                let children = children.to_vec();
                let was_lower: Vec<bool> =
                    children.iter().map(|&c| self.arena.raw_level(c) == ll).collect();
                // Drop the stale key while the arena still matches it.
                self.unique.remove(&self.arena, id);
                interacting.push((id, children, was_lower));
            } else {
                moved.push(id);
            }
        }
        let a_up = self.arena.arity(l);
        let a_low = self.arena.arity(l + 1);
        // Structural half of the swap, O(1): subtable keys are
        // children-only, so nodes whose children are untouched — all of
        // the old lower level and the non-interacting (`moved`) upper
        // nodes — simply follow their subtable to the other level. Only
        // the arena labels still need the per-node update.
        self.unique.swap_levels(l);
        self.arena.swap_arities(l);
        for id in self.unique.level_ids(l) {
            self.arena.set_level(id, lu);
        }
        for &id in &moved {
            self.arena.set_level(id, ll);
        }
        // Rewrite each interacting node f = case(x_up; c_0, …): for every
        // value j of the swapped-in variable, the new child is
        // g_j = case(x_up; c_i |_{x_low = j}), hash-consed at the new
        // lower level (which may resurrect a moved node or share g's
        // between parents).
        let mut cofactor = vec![0u32; a_up];
        let mut new_children = vec![0u32; a_low];
        for (id, children, was_lower) in interacting {
            for (j, slot) in new_children.iter_mut().enumerate() {
                for (cof, (&child, &lower)) in
                    cofactor.iter_mut().zip(children.iter().zip(&was_lower))
                {
                    // Propagate a complemented edge's parity into its
                    // cofactor (a no-op on plain edges).
                    *cof = if lower {
                        negate_if(is_complemented(child), self.arena.child(child, j))
                    } else {
                        child
                    };
                }
                *slot = if cofactor.iter().all(|&c| c == cofactor[0]) {
                    cofactor[0]
                } else {
                    self.cons(ll, &cofactor)
                };
            }
            debug_assert!(
                !new_children.iter().all(|&c| c == new_children[0]),
                "a node with a child at the swapped level depends on that level"
            );
            // The rewritten node keeps its (plain) id, so it must keep a
            // regular high edge. That holds structurally: its new high
            // child is built from the old high child c1 (regular by the
            // stored invariant) and c1's own high grandchild (regular
            // again), so the flip rule in `cons` never fires for slot 1.
            debug_assert!(
                !self.complement_enabled()
                    || a_low != 2
                    || !is_complemented(new_children[1]) && new_children[1] != crate::kernel::ZERO,
                "adjacent swap preserves the regular-high canonical form"
            );
            self.arena.set_node(id, lu, &new_children);
            self.unique.insert_new(&self.arena, id);
        }
    }

    /// Sifts every variable individually (all blocks of size 1).
    ///
    /// See [`DdKernel::sift_blocks`] for the driver's contract.
    pub fn sift(&mut self, roots: &mut [u32], config: &SiftConfig) -> SiftOutcome {
        self.sift_blocks(roots, &vec![1; self.num_levels()], config)
    }

    /// Sifts contiguous blocks of levels as indivisible units.
    ///
    /// `block_sizes` partitions the levels top-down into blocks (sizes
    /// must sum to the level count); blocks keep their internal level
    /// order, which preserves any grouping invariant such as the coded
    /// ROBDD's bit groups. Per round, blocks are processed in decreasing
    /// order of their current live node contribution; each block walks to
    /// the bottom, then to the top, and settles at the position with the
    /// smallest live size (over the union of `roots`), subject to
    /// [`SiftConfig::max_growth`].
    ///
    /// The run protects `roots` internally, collects the swap garbage
    /// opportunistically whenever it dwarfs the live diagram, and runs a
    /// final [`DdKernel::gc`] before returning, so node ids are
    /// renumbered: `roots` is updated in place with the ids valid after
    /// the run (anything not reachable from them or a separately
    /// protected root is reclaimed).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `block_sizes` does not
    /// partition the levels.
    pub fn sift_blocks(
        &mut self,
        roots: &mut [u32],
        block_sizes: &[usize],
        config: &SiftConfig,
    ) -> SiftOutcome {
        assert!(config.max_growth >= 1.0, "max_growth must be at least 1");
        assert!(config.max_rounds >= 1, "at least one round is required");
        // Sifting is paused under the governor: swaps rewrite existing
        // nodes through `cons` without growing the live diagram beyond
        // the bounded `max_growth`, and a trip mid-swap would leave a
        // level half-rewritten. The budget governs *construction*; the
        // reorderer is already self-bounding.
        let governor = self.governor.take();
        let outcome = self.sift_blocks_inner(roots, block_sizes, config);
        self.governor = governor;
        outcome
    }

    fn sift_blocks_inner(
        &mut self,
        roots: &mut [u32],
        block_sizes: &[usize],
        config: &SiftConfig,
    ) -> SiftOutcome {
        assert!(block_sizes.iter().all(|&s| s >= 1), "blocks must be non-empty");
        assert_eq!(
            block_sizes.iter().sum::<usize>(),
            self.num_levels(),
            "block sizes must partition the levels"
        );
        let mut state = SiftState {
            roots: roots.to_vec(),
            handles: roots.iter().map(|&r| self.protect(r)).collect(),
        };
        let mut origin: Vec<usize> = (0..self.num_levels()).collect();
        let mut order: Vec<usize> = (0..block_sizes.len()).collect();
        let mut swaps = 0u64;
        let initial_size = self.live_size(&state.roots);
        let mut max_live = initial_size;
        let mut current = initial_size;
        let mut rounds = 0usize;
        for _ in 0..config.max_rounds {
            rounds += 1;
            let round_start = current;
            for b in self.block_agenda(&state.roots, &order, block_sizes) {
                current = self.sift_one_block(
                    &mut state,
                    b,
                    &mut order,
                    block_sizes,
                    &mut origin,
                    &mut swaps,
                    &mut max_live,
                    config,
                    current,
                );
            }
            if current >= round_start {
                break;
            }
        }
        self.gc();
        for (slot, handle) in roots.iter_mut().zip(state.handles) {
            *slot = self.unprotect(handle);
        }
        SiftOutcome {
            initial_size,
            final_size: current,
            max_live_size: max_live,
            rounds,
            swaps,
            level_origin: origin,
            block_origin: order,
        }
    }

    /// Collects the swap garbage when it outweighs the live diagram,
    /// refreshing the driver's root ids through their handles.
    fn maybe_collect(&mut self, state: &mut SiftState, live: usize) {
        if self.allocated_nodes() > 4 * live + 4096 {
            self.gc();
            for (slot, &handle) in state.roots.iter_mut().zip(&state.handles) {
                *slot = self.resolve(handle);
            }
        }
    }

    /// Blocks in decreasing order of their current live node count (ties
    /// broken by input index, for determinism).
    fn block_agenda(&self, roots: &[u32], order: &[usize], block_sizes: &[usize]) -> Vec<usize> {
        let per_level = self.live_per_level(roots);
        let mut start = 0usize;
        let mut agenda: Vec<(usize, usize)> = order
            .iter()
            .map(|&b| {
                let count: usize = per_level[start..start + block_sizes[b]].iter().sum();
                start += block_sizes[b];
                (count, b)
            })
            .collect();
        agenda.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        agenda.into_iter().map(|(_, b)| b).collect()
    }

    /// Live (reachable from `roots`) non-terminal nodes per level.
    fn live_per_level(&self, roots: &[u32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_levels()];
        for (id, &reachable) in self.mark(roots).iter().enumerate() {
            if reachable {
                if let Some(level) = self.level(id as u32) {
                    counts[level] += 1;
                }
            }
        }
        counts
    }

    /// Sifts one block to its best position; returns the live size there.
    #[allow(clippy::too_many_arguments)]
    fn sift_one_block(
        &mut self,
        state: &mut SiftState,
        block: usize,
        order: &mut [usize],
        block_sizes: &[usize],
        origin: &mut [usize],
        swaps: &mut u64,
        max_live: &mut usize,
        config: &SiftConfig,
        start_size: usize,
    ) -> usize {
        let num_blocks = order.len();
        let mut pos = order.iter().position(|&b| b == block).expect("block is in the order");
        let bound = (start_size as f64 * config.max_growth).ceil() as usize;
        let mut best_size = start_size;
        let mut best_pos = pos;
        // Walk down to the bottom.
        while pos + 1 < num_blocks {
            self.swap_block_down(pos, order, block_sizes, origin, swaps);
            pos += 1;
            let size = self.live_size(&state.roots);
            self.maybe_collect(state, size);
            if size > bound {
                self.swap_block_down(pos - 1, order, block_sizes, origin, swaps);
                pos -= 1;
                break;
            }
            *max_live = (*max_live).max(size);
            if size < best_size {
                best_size = size;
                best_pos = pos;
            }
        }
        // Walk up to the top from wherever the downward pass stopped.
        while pos > 0 {
            self.swap_block_down(pos - 1, order, block_sizes, origin, swaps);
            pos -= 1;
            let size = self.live_size(&state.roots);
            self.maybe_collect(state, size);
            if size > bound {
                self.swap_block_down(pos, order, block_sizes, origin, swaps);
                pos += 1;
                break;
            }
            *max_live = (*max_live).max(size);
            if size < best_size {
                best_size = size;
                best_pos = pos;
            }
        }
        // Settle at the best position seen.
        while pos < best_pos {
            self.swap_block_down(pos, order, block_sizes, origin, swaps);
            pos += 1;
        }
        while pos > best_pos {
            self.swap_block_down(pos - 1, order, block_sizes, origin, swaps);
            pos -= 1;
        }
        self.maybe_collect(state, best_size);
        debug_assert_eq!(
            self.live_size(&state.roots),
            best_size,
            "the canonical diagram size is a function of the order alone"
        );
        best_size
    }

    /// Swaps the blocks at positions `p` and `p + 1` (each level of the
    /// lower block bubbles over the whole upper block, preserving both
    /// blocks' internal order).
    fn swap_block_down(
        &mut self,
        p: usize,
        order: &mut [usize],
        block_sizes: &[usize],
        origin: &mut [usize],
        swaps: &mut u64,
    ) {
        let start: usize = order[..p].iter().map(|&b| block_sizes[b]).sum();
        let g = block_sizes[order[p]];
        let h = block_sizes[order[p + 1]];
        for i in 0..h {
            let mut l = start + g + i;
            while l > start + i {
                self.swap_adjacent_levels(l - 1);
                origin.swap(l - 1, l);
                *swaps += 1;
                l -= 1;
            }
        }
        order.swap(p, p + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ONE, ZERO};

    /// Builds the conjunction-of-pairs function x0·xk + x1·x(k+1) + … with
    /// the pairs separated in the order — the classic sifting testcase
    /// (linear when interleaved, exponential when separated).
    fn separated_pairs(pairs: usize) -> (DdKernel, u32) {
        let n = 2 * pairs;
        let mut dd = DdKernel::new(vec![2; n]);
        // Build bottom-up with explicit Shannon expansion over the fixed
        // order: f = OR_i (x_i AND x_{i+pairs}).
        fn build(
            dd: &mut DdKernel,
            level: usize,
            n: usize,
            pairs: usize,
            fixed: &mut Vec<Option<bool>>,
        ) -> u32 {
            if level == n {
                let any =
                    (0..pairs).any(|i| fixed[i] == Some(true) && fixed[i + pairs] == Some(true));
                return if any { ONE } else { ZERO };
            }
            fixed[level] = Some(false);
            let low = build(dd, level + 1, n, pairs, fixed);
            fixed[level] = Some(true);
            let high = build(dd, level + 1, n, pairs, fixed);
            fixed[level] = None;
            dd.mk(level as u32, &[low, high])
        }
        let mut fixed = vec![None; n];
        let root = build(&mut dd, 0, n, pairs, &mut fixed);
        (dd, root)
    }

    fn eval_permuted(dd: &DdKernel, root: u32, origin: &[usize], assignment: &[usize]) -> bool {
        dd.eval(root, |level| assignment[origin[level]])
    }

    #[test]
    fn adjacent_swap_preserves_the_function() {
        let (mut dd, root) = separated_pairs(2);
        let truth: Vec<bool> = (0..16).map(|row| dd.eval(root, |l| (row >> l) & 1)).collect();
        let mut origin: Vec<usize> = (0..4).collect();
        // Swap every adjacent pair once, checking the function each time.
        for l in [0usize, 1, 2, 1, 0, 2] {
            dd.swap_adjacent_levels(l);
            origin.swap(l, l + 1);
            for (row, &want) in truth.iter().enumerate() {
                let assignment: Vec<usize> = (0..4).map(|i| (row >> i) & 1).collect();
                assert_eq!(eval_permuted(&dd, root, &origin, &assignment), want, "swap {l}");
            }
        }
    }

    #[test]
    fn adjacent_swap_handles_mixed_arities() {
        // A binary level above a ternary level.
        let mut dd = DdKernel::new(vec![2, 3]);
        let t = dd.mk(1, &[ZERO, ONE, ZERO]); // x1 == 1
        let root = dd.mk(0, &[t, ONE]); // x0 == 1 OR x1 == 1
        let truth: Vec<Vec<bool>> =
            (0..2).map(|a| (0..3).map(|b| dd.eval(root, |l| [a, b][l])).collect()).collect();
        dd.swap_adjacent_levels(0);
        assert_eq!(dd.arity(0), 3);
        assert_eq!(dd.arity(1), 2);
        for (a, row) in truth.iter().enumerate() {
            for (b, &want) in row.iter().enumerate() {
                // Level 0 now tests the old x1, level 1 the old x0.
                assert_eq!(dd.eval(root, |l| if l == 0 { b } else { a }), want);
            }
        }
        // Swapping back restores the original canonical structure.
        let size_before = dd.live_size(&[root]);
        dd.swap_adjacent_levels(0);
        assert_eq!(dd.children(root), &[t, ONE]);
        let _ = size_before;
    }

    #[test]
    fn sifting_recovers_the_interleaved_order() {
        let (mut dd, root) = separated_pairs(3);
        let truth: Vec<bool> = (0..64).map(|row| dd.eval(root, |l| (row >> l) & 1)).collect();
        let before = dd.live_size(&[root]);
        let mut roots = [root];
        let outcome = dd.sift(&mut roots, &SiftConfig { max_growth: 2.0, max_rounds: 4 });
        let root = roots[0];
        assert_eq!(outcome.initial_size, before);
        assert!(
            outcome.final_size < before,
            "sifting must shrink the separated-pairs diagram ({} -> {})",
            before,
            outcome.final_size
        );
        assert_eq!(outcome.final_size, dd.live_size(&[root]));
        assert_eq!(outcome.block_origin, outcome.level_origin);
        // The function is unchanged under the reported permutation.
        for (row, &want) in truth.iter().enumerate() {
            let assignment: Vec<usize> = (0..6).map(|i| (row >> i) & 1).collect();
            assert_eq!(eval_permuted(&dd, root, &outcome.level_origin, &assignment), want);
        }
        // Collecting afterwards reclaims the swap garbage and keeps the root.
        let mut guard = dd.protect_scoped(root);
        let gc = guard.gc();
        assert_eq!(gc.live_nodes, outcome.final_size);
        let root = guard.root();
        drop(guard);
        assert_eq!(dd.live_size(&[root]), outcome.final_size);
    }

    #[test]
    fn sift_respects_the_growth_bound() {
        let (mut dd, root) = separated_pairs(3);
        let mut roots = [root];
        for growth in [1.0, 1.05, 1.2] {
            let initial = dd.live_size(&roots);
            let outcome = dd.sift(&mut roots, &SiftConfig { max_growth: growth, max_rounds: 1 });
            let bound = (initial as f64 * growth).ceil() as usize;
            assert!(
                outcome.max_live_size <= bound,
                "growth {growth}: committed size {} exceeded bound {bound}",
                outcome.max_live_size
            );
            assert!(outcome.final_size <= initial, "sifting never ends worse than it started");
        }
    }

    #[test]
    fn block_sifting_keeps_blocks_contiguous() {
        // Two 2-level blocks encoding "the same pair" interleaved badly:
        // f depends on (0,3) and (1,2); blocks {0,1} and {2,3}.
        let (mut dd, root) = separated_pairs(2);
        let truth: Vec<bool> = (0..16).map(|row| dd.eval(root, |l| (row >> l) & 1)).collect();
        let mut roots = [root];
        let outcome =
            dd.sift_blocks(&mut roots, &[2, 2], &SiftConfig { max_growth: 3.0, max_rounds: 2 });
        let root = roots[0];
        // Blocks move as units: the level permutation maps {0,1} and {2,3}
        // to contiguous, order-preserving ranges.
        let lo: Vec<usize> = outcome.level_origin.clone();
        assert!(lo == vec![0, 1, 2, 3] || lo == vec![2, 3, 0, 1], "unexpected permutation {lo:?}");
        for (row, &want) in truth.iter().enumerate() {
            let assignment: Vec<usize> = (0..4).map(|i| (row >> i) & 1).collect();
            assert_eq!(eval_permuted(&dd, root, &outcome.level_origin, &assignment), want);
        }
    }

    #[test]
    #[should_panic]
    fn bad_block_partition_is_rejected() {
        let mut dd = DdKernel::new(vec![2, 2, 2]);
        let mut roots = [dd.mk(0, &[ZERO, ONE])];
        let _ = dd.sift_blocks(&mut roots, &[2, 2], &SiftConfig::default());
    }

    #[test]
    #[should_panic]
    fn growth_below_one_is_rejected() {
        let mut dd = DdKernel::new(vec![2, 2]);
        let mut roots = [dd.mk(0, &[ZERO, ONE])];
        let _ = dd.sift(&mut roots, &SiftConfig { max_growth: 0.5, max_rounds: 1 });
    }
}
