//! The unified kernel-knob surface: [`CompileOptions`].
//!
//! Every layer that compiles decision diagrams — `CompiledModel` and
//! `Pipeline` in `soc-yield-core`, `SweepMatrix` in `socy-exec`,
//! `ServiceConfig` in `socy-serve`, the bench/serve CLIs — used to mirror
//! the same per-knob fields (`compile_threads`, `compile_grain`,
//! `complement_edges`) and setters. [`CompileOptions`] is the single
//! source of truth for those knobs now: one value is built at the edge
//! (CLI flags, wire requests, test setup) and carried down the stack
//! unchanged.
//!
//! Every knob here is a *resource or representation* choice, never an
//! analysis option: yields, error bounds, truncations and ROMDD node
//! counts are bit-identical at every setting, which is why none of these
//! participate in model-reuse or cache keys.

/// Knobs of a decision-diagram compilation, carried as one value through
/// the pipeline/executor/service layers.
///
/// Built with builder-style `with_*` constructors:
///
/// ```
/// use socy_dd::CompileOptions;
///
/// let options = CompileOptions::new().with_compile_threads(4).with_complement_edges(false);
/// assert_eq!(options.compile_threads(), 4);
/// assert!(!options.complement_edges());
/// assert_eq!(CompileOptions::default(), CompileOptions::new());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    compile_threads: usize,
    compile_grain: usize,
    complement_edges: bool,
    op_cache_capacity: usize,
    node_budget: usize,
    deadline_ms: u64,
    fail_after: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            compile_threads: 1,
            compile_grain: 0,
            complement_edges: true,
            op_cache_capacity: 0,
            node_budget: 0,
            deadline_ms: 0,
            fail_after: 0,
        }
    }
}

impl CompileOptions {
    /// The default options: sequential compilation, manager-default
    /// parallel grain and op-cache capacity, complemented edges on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads used *inside* a single
    /// compilation (the apply/ITE calls building the coded ROBDD and the
    /// ROBDD → ROMDD conversion). Values are clamped to ≥ 1; `1` keeps
    /// compilation fully sequential. Results are bit-identical at every
    /// setting.
    #[must_use]
    pub fn with_compile_threads(mut self, threads: usize) -> Self {
        self.compile_threads = threads.max(1);
        self
    }

    /// Sets the sequential-grain cutoff of the parallel compile sections:
    /// an apply/conversion only fans out across the compile threads when
    /// its operands hold at least this many nodes. `0` (the default)
    /// keeps the managers' built-in grain; tests lower it to exercise the
    /// parallel paths on small diagrams.
    #[must_use]
    pub fn with_compile_grain(mut self, grain: usize) -> Self {
        self.compile_grain = grain;
        self
    }

    /// Enables or disables complemented (negative) edges in the ROBDD
    /// kernel. A pure representation knob: yields, error bounds,
    /// truncations and ROMDD node counts are bit-identical in both
    /// modes; only the ROBDD-side node counts and cache statistics
    /// differ. Defaults to `true`.
    #[must_use]
    pub fn with_complement_edges(mut self, on: bool) -> Self {
        self.complement_edges = on;
        self
    }

    /// Pins the operation-cache capacity (slots, rounded to a power of
    /// two) of the managers created for a compilation. `0` (the default)
    /// keeps the managers' adaptive default capacity.
    #[must_use]
    pub fn with_op_cache_capacity(mut self, slots: usize) -> Self {
        self.op_cache_capacity = slots;
        self
    }

    /// Caps the nodes a single governed compilation may materialise
    /// across its ROBDD and ROMDD managers combined. `0` (the default)
    /// leaves growth unbounded. Exceeding the budget aborts the
    /// compilation with a typed `BudgetExceeded` error — never a panic or
    /// an allocation failure — and callers degrade or answer with
    /// Monte-Carlo bounds (see the `soc-yield-core` degradation ladder).
    /// Unlike the other knobs this one is *not* representation-neutral:
    /// it decides whether a compilation completes at all.
    #[must_use]
    pub fn with_node_budget(mut self, nodes: usize) -> Self {
        self.node_budget = nodes;
        self
    }

    /// Sets the wall-clock deadline of a single compilation in
    /// milliseconds (`0`, the default, means none). A compilation past
    /// its deadline aborts with a typed `Deadline` error at its next
    /// governor poll.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Arms the deterministic fail point: the compilation's governor
    /// forces a `BudgetExceeded` trip at exactly the `n`th node
    /// materialisation (`0`, the default, disarms it). Fault injection
    /// for abort-path tests; never set in production configurations.
    #[must_use]
    pub fn with_fail_after(mut self, n: u64) -> Self {
        self.fail_after = n;
        self
    }

    /// Worker threads used inside a single compilation (≥ 1).
    pub fn compile_threads(&self) -> usize {
        self.compile_threads
    }

    /// Sequential-grain cutoff of the parallel compile sections
    /// (`0` = manager default).
    pub fn compile_grain(&self) -> usize {
        self.compile_grain
    }

    /// Whether compilations use complemented edges in the ROBDD kernel.
    pub fn complement_edges(&self) -> bool {
        self.complement_edges
    }

    /// Pinned op-cache capacity in slots (`0` = manager default).
    pub fn op_cache_capacity(&self) -> usize {
        self.op_cache_capacity
    }

    /// Node budget of a single compilation (`0` = unbounded).
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }

    /// Wall-clock deadline of a single compilation in milliseconds
    /// (`0` = none).
    pub fn deadline_ms(&self) -> u64 {
        self.deadline_ms
    }

    /// Fail point: forced trip at the `n`th materialisation (`0` = off).
    pub fn fail_after(&self) -> u64 {
        self.fail_after
    }

    /// The shared CLI flag surface. Both `socy-bench`'s `parse_cli` and
    /// the `serve` binary feed their argument loops through this single
    /// helper, so a future knob is added (and documented) in exactly one
    /// place.
    pub const CLI_HELP: &'static str = "\
  --compile-threads N  worker threads inside each compilation (default 1;
                       results are bit-identical at every setting)
  --compile-grain N    sequential-grain cutoff of the parallel compile
                       sections (0 = manager default)
  --no-complement-edges
                       disable complemented edges in the ROBDD kernel
                       (yields and ROMDD sizes are bit-identical either way)
  --op-cache-capacity N
                       pin the managers' operation-cache capacity in slots
                       (0 = adaptive default)
  --node-budget N      cap the nodes one compilation may materialise
                       (0 = unbounded); over-budget compilations degrade
                       to Monte-Carlo bounds instead of erroring
  --deadline-ms N      wall-clock deadline per compilation in milliseconds
                       (0 = none)";

    /// Consumes one CLI argument if it belongs to the shared
    /// compile-option surface. `next` supplies the following argument for
    /// flags that take a value. Returns `Ok(true)` when `arg` was
    /// recognized and applied, `Ok(false)` when it is not a compile
    /// option (the caller handles it), and `Err` with a usage message
    /// when a value is missing or malformed.
    ///
    /// ```
    /// use socy_dd::CompileOptions;
    ///
    /// let mut options = CompileOptions::new();
    /// let mut rest = vec!["4".to_string()].into_iter();
    /// assert_eq!(options.parse_cli_flag("--compile-threads", &mut rest), Ok(true));
    /// assert_eq!(options.parse_cli_flag("--no-complement-edges", &mut rest), Ok(true));
    /// assert_eq!(options.parse_cli_flag("--json", &mut rest), Ok(false));
    /// assert_eq!(options.compile_threads(), 4);
    /// assert!(!options.complement_edges());
    /// ```
    pub fn parse_cli_flag(
        &mut self,
        arg: &str,
        next: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        let mut integer = |flag: &str| {
            next.next()
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| format!("{flag} requires an integer"))
        };
        match arg {
            "--compile-threads" => {
                *self = self.with_compile_threads(integer("--compile-threads")?);
            }
            "--compile-grain" => *self = self.with_compile_grain(integer("--compile-grain")?),
            "--no-complement-edges" => *self = self.with_complement_edges(false),
            "--op-cache-capacity" => {
                *self = self.with_op_cache_capacity(integer("--op-cache-capacity")?);
            }
            "--node-budget" => *self = self.with_node_budget(integer("--node-budget")?),
            "--deadline-ms" => {
                *self = self.with_deadline_ms(integer("--deadline-ms")? as u64);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_getters_round_trip() {
        let options = CompileOptions::new()
            .with_compile_threads(8)
            .with_compile_grain(32)
            .with_complement_edges(false)
            .with_op_cache_capacity(1 << 12)
            .with_node_budget(1 << 20)
            .with_deadline_ms(250)
            .with_fail_after(17);
        assert_eq!(options.compile_threads(), 8);
        assert_eq!(options.compile_grain(), 32);
        assert!(!options.complement_edges());
        assert_eq!(options.op_cache_capacity(), 1 << 12);
        assert_eq!(options.node_budget(), 1 << 20);
        assert_eq!(options.deadline_ms(), 250);
        assert_eq!(options.fail_after(), 17);
        // Threads are clamped to >= 1, matching the old setters.
        assert_eq!(CompileOptions::new().with_compile_threads(0).compile_threads(), 1);
    }

    #[test]
    fn cli_flags_cover_every_knob() {
        let mut options = CompileOptions::new();
        let argv = [
            "--compile-threads",
            "4",
            "--compile-grain",
            "2",
            "--no-complement-edges",
            "--op-cache-capacity",
            "64",
            "--node-budget",
            "4096",
            "--deadline-ms",
            "1500",
        ];
        let mut args = argv.iter().map(ToString::to_string);
        while let Some(arg) = args.next() {
            assert_eq!(options.parse_cli_flag(&arg, &mut args), Ok(true), "{arg}");
        }
        assert_eq!(
            options,
            CompileOptions::new()
                .with_compile_threads(4)
                .with_compile_grain(2)
                .with_complement_edges(false)
                .with_op_cache_capacity(64)
                .with_node_budget(4096)
                .with_deadline_ms(1500)
        );
    }

    #[test]
    fn cli_errors_and_unknown_flags() {
        let mut options = CompileOptions::new();
        let mut empty = Vec::<String>::new().into_iter();
        assert!(options.parse_cli_flag("--compile-threads", &mut empty).is_err());
        let mut junk = vec!["abc".to_string()].into_iter();
        assert!(options.parse_cli_flag("--compile-grain", &mut junk).is_err());
        let mut none = Vec::<String>::new().into_iter();
        assert_eq!(options.parse_cli_flag("--threads", &mut none), Ok(false));
        assert_eq!(options, CompileOptions::new(), "failed parses leave the options unchanged");
    }
}
