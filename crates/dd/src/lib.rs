//! The shared hash-consed decision-diagram kernel used by the `socy-bdd`
//! (ROBDD) and `socy-mdd` (ROMDD) engines.
//!
//! Coded ROBDDs and ROMDDs are two views of one discipline: a forest of
//! nodes `(level, children…)` kept canonical by hash-consing plus the
//! redundant-node reduction rule, operated on by memoized recursive
//! procedures. This crate factors that discipline out of the two engines:
//!
//! * a cache-friendly struct-of-arrays node [`arena`](arena::NodeArena)
//!   addressed by `u32` ids, packing every node's level and (for arity
//!   ≤ 2) its children into one 16-byte header, with wider multi-valued
//!   nodes spilling into one flat edge array;
//! * a per-level, Robin-Hood [`unique table`](unique::UniqueTable) with
//!   cached hash bits that stores only node ids and resolves keys
//!   against the arena, so children are never duplicated into hash-map
//!   keys, growth never walks the arena, and adjacent levels swap in
//!   O(interacting nodes);
//! * a lossy, direct-mapped, generation-tagged
//!   [`operation cache`](cache::OpCache) keyed on `(op, operands)` with
//!   per-operation hit/miss/eviction statistics, bounded memory and O(1)
//!   whole-cache invalidation;
//! * the [`DdKernel`] combining the three behind the
//!   canonicalising [`mk`](DdKernel::mk) constructor;
//! * shared memoized traversals (node counts, reachable-set iteration,
//!   support, path evaluation, depth-first probability evaluation);
//! * external root protection ([`kernel::Ref`] handles / [`kernel::Protect`]
//!   guards) and a compacting mark-and-sweep collector
//!   ([`DdKernel::gc`](kernel::DdKernel::gc));
//! * dynamic variable reordering by sifting
//!   ([`reorder`]: adjacent-level swaps, single-variable and grouped
//!   block drivers with a bounded growth factor);
//! * the [`FxHash`](hash) implementation both engines key their tables
//!   with;
//! * a shared Graphviz [`DOT writer`](dot::DotWriter).
//!
//! The engines stay responsible for everything domain-specific: boolean
//! connectives, ITE and thresholds live in `socy-bdd`; multi-valued
//! indicator constructors and the coded-ROBDD → ROMDD conversions live in
//! `socy-mdd`.
//!
//! # Example
//!
//! ```
//! use socy_dd::kernel::{DdKernel, ONE, ZERO};
//!
//! // Two levels: a binary variable above a ternary one.
//! let mut dd = DdKernel::new(vec![2, 3]);
//! let is2 = dd.mk(1, &[ZERO, ZERO, ONE]); // x1 == 2
//! let f = dd.mk(0, &[ZERO, is2]); // x0 == 1 && x1 == 2
//! assert_eq!(dd.node_count(f), 4);
//! assert_eq!(dd.mk(0, &[ZERO, is2]), f, "hash-consing is canonical");
//! assert_eq!(dd.mk(0, &[is2, is2]), is2, "redundant nodes are reduced");
//! let p = dd.probability(f, |level, value| [[0.5, 0.5, 0.0], [0.2, 0.3, 0.5]][level][value]);
//! assert!((p - 0.5 * 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod ctx;
pub mod dot;
pub mod edge;
pub mod govern;
pub mod hash;
pub mod kernel;
pub mod options;
pub mod par;
pub mod reorder;
pub mod unique;

pub use arena::{NodeArena, TERMINAL_LEVEL};
pub use cache::{OpCache, OpTagStats, NUM_OP_TAGS};
pub use ctx::DdCtx;
pub use edge::{is_complemented, negate, negate_if, strip, CPL_BIT};
pub use govern::{catch_governed, CancelToken, DdError, Governor, GovernorLimits};
pub use kernel::{DdKernel, DdStats, GcStats, Protect, Ref, ONE, ZERO};
pub use options::CompileOptions;
pub use par::{is_par, run_tasks, ParRef, ParSession, Split};
pub use reorder::{SiftConfig, SiftOutcome};
pub use unique::UniqueTable;

// Parallel sweep workers (socy-exec) move kernels across threads. The
// kernel is plain owned data — arena vectors, tables, counters; no
// Rc/RefCell/raw pointers — so `Send + Sync` hold structurally. Assert
// them here so any future interior-mutability regression fails to
// compile at its source rather than in the executor.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DdKernel>();
    assert_send_sync::<NodeArena>();
    assert_send_sync::<UniqueTable>();
    assert_send_sync::<OpCache>();
};
