//! The unique table making node construction canonical.
//!
//! The table is split into **per-level subtables** (the layout of mature
//! BDD packages): each variable level owns an open-addressed hash set of
//! node ids keyed on the node's *children only* — the level is implied by
//! the subtable. Keys are never materialised; a probe hashes the
//! children and compares candidates against the arena's own storage.
//! Compared with a `HashMap<(level, Box<[id]>), id>` this halves the
//! memory per entry and removes one allocation per node, which matters
//! when coded-ROBDD builds allocate hundreds of thousands of nodes.
//!
//! Each subtable uses **Robin Hood probing** and caches 32 bits of every
//! bucket's hash. That buys four things on the hot `get_or_insert` path:
//!
//! * candidate keys are rejected by one integer compare before the arena
//!   is ever touched, so probe chains cost almost nothing;
//! * growth re-places entries from the cached bits alone — a resize
//!   never walks the arena;
//! * the probe distance of any occupant is computable in place, which is
//!   what Robin Hood insertion (displace richer entries) and
//!   backward-shift deletion need to keep chains short at high load —
//!   the subtables run at a 7/8 load factor (the previous single-table
//!   design grew at 3/4);
//! * a level's nodes can be *enumerated* straight from its subtable,
//!   and two adjacent levels exchanged by swapping their subtables —
//!   which turns the sifting swap from an all-nodes rehash into work
//!   proportional to the nodes that actually interact.

use std::hash::Hasher;

use crate::arena::NodeArena;
use crate::hash::FxHasher;

const EMPTY: u32 = u32::MAX;
const INITIAL_BUCKETS: usize = 16;

/// One bucket: the node id plus the cached (folded) hash of its key,
/// packed into 8 bytes so a probe touches a single cache line. The hash
/// is garbage while `id == EMPTY`; the home bucket of an entry is
/// `hash & mask`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    id: u32,
    hash: u32,
}

const FREE: Bucket = Bucket { id: EMPTY, hash: 0 };

/// One level's open-addressed Robin-Hood hash set.
#[derive(Debug, Clone)]
struct SubTable {
    buckets: Vec<Bucket>,
    len: usize,
}

impl Default for SubTable {
    fn default() -> Self {
        Self { buckets: vec![FREE; INITIAL_BUCKETS], len: 0 }
    }
}

/// Folds the 64-bit children hash to the 32 cached bits (the same bits
/// that address the home bucket, so probe distances are recoverable).
fn hash_children(children: &[u32]) -> u32 {
    let mut hasher = FxHasher::default();
    for &c in children {
        hasher.write_u32(c);
    }
    let h = hasher.finish();
    (h ^ (h >> 32)) as u32
}

impl SubTable {
    /// True when the 7/8 load factor is reached.
    #[inline]
    fn needs_growth(&self) -> bool {
        self.len * 8 >= self.buckets.len() * 7
    }

    /// Probe distance of the occupant of `idx` from its home bucket.
    #[inline]
    fn displacement(&self, idx: usize, mask: usize) -> usize {
        idx.wrapping_sub(self.buckets[idx].hash as usize) & mask
    }

    /// Robin Hood insertion starting at `idx` with the carried entry
    /// already `dib` buckets from home: swap with any richer occupant
    /// and keep walking until a free bucket absorbs the carry.
    fn insert_displacing(&mut self, mut idx: usize, mut dib: usize, mut carry: Bucket) {
        let mask = self.buckets.len() - 1;
        loop {
            if self.buckets[idx].id == EMPTY {
                self.buckets[idx] = carry;
                return;
            }
            let occupant_dib = self.displacement(idx, mask);
            if occupant_dib < dib {
                std::mem::swap(&mut self.buckets[idx], &mut carry);
                dib = occupant_dib;
            }
            idx = (idx + 1) & mask;
            dib += 1;
        }
    }

    /// Returns the canonical node with these children, creating it in
    /// `arena` at `level` if no equal node exists in this subtable.
    fn get_or_insert(&mut self, arena: &mut NodeArena, level: u32, children: &[u32]) -> u32 {
        if self.needs_growth() {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let hash = hash_children(children);
        let mut idx = hash as usize & mask;
        let mut dib = 0usize;
        loop {
            let bucket = self.buckets[idx];
            if bucket.id == EMPTY {
                let id = arena.push(level, children);
                self.buckets[idx] = Bucket { id, hash };
                self.len += 1;
                return id;
            }
            if bucket.hash == hash && arena.children(bucket.id) == children {
                return bucket.id;
            }
            if idx.wrapping_sub(bucket.hash as usize) & mask < dib {
                // The occupant is closer to home than we are, so an equal
                // key cannot lie further along the chain (Robin Hood
                // invariant): create the node and claim this bucket,
                // displacing the richer occupants.
                let id = arena.push(level, children);
                self.insert_displacing(idx, dib, Bucket { id, hash });
                self.len += 1;
                return id;
            }
            idx = (idx + 1) & mask;
            dib += 1;
        }
    }

    /// Read-only probe: the node with these children, if present. Uses
    /// the Robin Hood invariant for early exit on a miss, so a frozen
    /// table can be probed lock-free from many threads (see
    /// [`crate::par`]).
    fn find(&self, arena: &NodeArena, children: &[u32]) -> Option<u32> {
        let mask = self.buckets.len() - 1;
        let hash = hash_children(children);
        let mut idx = hash as usize & mask;
        let mut dib = 0usize;
        loop {
            let bucket = self.buckets[idx];
            if bucket.id == EMPTY {
                return None;
            }
            if bucket.hash == hash && arena.children(bucket.id) == children {
                return Some(bucket.id);
            }
            if idx.wrapping_sub(bucket.hash as usize) & mask < dib {
                // Robin Hood invariant: an equal key cannot lie further
                // along the chain than an occupant closer to home.
                return None;
            }
            idx = (idx + 1) & mask;
            dib += 1;
        }
    }

    /// Inserts `id` under the key `children`; the key must not be
    /// present.
    fn insert_new(&mut self, id: u32, children: &[u32]) {
        if self.needs_growth() {
            self.grow();
        }
        let hash = hash_children(children);
        let idx = hash as usize & (self.buckets.len() - 1);
        self.insert_displacing(idx, 0, Bucket { id, hash });
        self.len += 1;
    }

    /// Removes `id`, keyed under `children`; panics if absent.
    fn remove(&mut self, id: u32, children: &[u32]) {
        let mask = self.buckets.len() - 1;
        let mut idx = hash_children(children) as usize & mask;
        loop {
            let slot = self.buckets[idx].id;
            assert_ne!(slot, EMPTY, "node {id} is not registered in the unique table");
            if slot == id {
                break;
            }
            idx = (idx + 1) & mask;
        }
        self.len -= 1;
        // Backward-shift: pull every successor with a non-zero probe
        // distance one bucket towards home; stop at a free bucket or an
        // entry already sitting at home.
        loop {
            let next = (idx + 1) & mask;
            if self.buckets[next].id == EMPTY || self.displacement(next, mask) == 0 {
                self.buckets[idx] = FREE;
                return;
            }
            self.buckets[idx] = self.buckets[next];
            idx = next;
        }
    }

    /// Doubles the subtable. The cached hash bits make this arena-free:
    /// every occupied bucket is re-placed under the new mask by Robin
    /// Hood insertion from its cached hash alone.
    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, vec![FREE; new_size]);
        let mask = new_size - 1;
        for bucket in old {
            if bucket.id != EMPTY {
                self.insert_displacing(bucket.hash as usize & mask, 0, bucket);
            }
        }
    }
}

/// The per-level unique table (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct UniqueTable {
    tables: Vec<SubTable>,
    len: usize,
}

impl UniqueTable {
    /// Number of nodes registered in the table (= non-terminal nodes of
    /// the arena it serves).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no node has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The subtable of `level`, growing the level directory on demand
    /// (levels can be added to the arena after construction).
    #[inline]
    fn table(&mut self, level: u32) -> &mut SubTable {
        let level = level as usize;
        if level >= self.tables.len() {
            self.tables.resize_with(level + 1, SubTable::default);
        }
        &mut self.tables[level]
    }

    /// Returns the canonical node `(level, children)`, creating it in
    /// `arena` if no equal node exists yet.
    pub fn get_or_insert(&mut self, arena: &mut NodeArena, level: u32, children: &[u32]) -> u32 {
        let before = self.table(level).len;
        let id = self.tables[level as usize].get_or_insert(arena, level, children);
        self.len += self.tables[level as usize].len - before;
        id
    }

    /// Read-only probe for the canonical node `(level, children)`,
    /// without creating anything. Safe to call concurrently from many
    /// threads through a shared reference while the table is frozen —
    /// this is the lock-free hit fast path of the parallel sections in
    /// [`crate::par`].
    pub fn find(&self, arena: &NodeArena, level: u32, children: &[u32]) -> Option<u32> {
        self.tables.get(level as usize)?.find(arena, children)
    }

    /// Inserts a node under its *current* arena key. The key must not be
    /// present yet (used by the level-swap primitive after relabeling or
    /// rewriting nodes, where distinctness is guaranteed by canonicity).
    pub(crate) fn insert_new(&mut self, arena: &NodeArena, id: u32) {
        self.table(arena.raw_level(id)).insert_new(id, arena.children(id));
        self.len += 1;
    }

    /// Removes a node from the table. The arena must still hold the
    /// level/children the node was inserted under (call this *before*
    /// relabeling or rewriting it). Uses backward-shift deletion so later
    /// probes stay correct without tombstones.
    ///
    /// # Panics
    ///
    /// Panics if the node is not in the table.
    pub(crate) fn remove(&mut self, arena: &NodeArena, id: u32) {
        self.table(arena.raw_level(id)).remove(id, arena.children(id));
        self.len -= 1;
    }

    /// All node ids currently registered at `level` (in unspecified
    /// order; includes nodes that are garbage until the next collection,
    /// exactly like the arena itself).
    pub(crate) fn level_ids(&self, level: usize) -> impl Iterator<Item = u32> + '_ {
        self.tables
            .get(level)
            .map(|t| t.buckets.iter().map(|b| b.id).filter(|&id| id != EMPTY))
            .into_iter()
            .flatten()
    }

    /// Exchanges the subtables of levels `l` and `l + 1` in O(1) — the
    /// structural half of an adjacent-level swap: nodes whose children
    /// are untouched by the swap keep their children-only keys and simply
    /// follow their subtable to the other level.
    pub(crate) fn swap_levels(&mut self, l: usize) {
        if l + 1 >= self.tables.len() {
            self.tables.resize_with(l + 2, SubTable::default);
        }
        self.tables.swap(l, l + 1);
    }

    /// Discards the table and re-registers every non-terminal node of
    /// `arena` (used after a compacting collection renumbers all ids).
    pub(crate) fn rebuild(&mut self, arena: &NodeArena) {
        // Presize each level's subtable for its node count at the 7/8
        // load factor, so the rebuild never grows mid-way.
        let mut per_level = vec![0usize; arena.num_levels()];
        for id in 2..arena.len() as u32 {
            per_level[arena.raw_level(id) as usize] += 1;
        }
        self.tables.clear();
        self.tables.extend(per_level.iter().map(|&entries| {
            let mut size = INITIAL_BUCKETS;
            while entries * 8 >= size * 7 {
                size *= 2;
            }
            SubTable { buckets: vec![FREE; size], len: 0 }
        }));
        self.len = 0;
        for id in 2..arena.len() as u32 {
            self.insert_new(arena, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_nodes() {
        let mut arena = NodeArena::new(vec![2, 2]);
        let mut table = UniqueTable::default();
        assert!(table.is_empty());
        let a = table.get_or_insert(&mut arena, 1, &[0, 1]);
        let b = table.get_or_insert(&mut arena, 1, &[0, 1]);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 3);
        assert_eq!(table.len(), 1);
        let c = table.get_or_insert(&mut arena, 1, &[1, 0]);
        assert_ne!(a, c);
        assert_eq!(table.len(), 2);
        // The same children at a *different* level are a different node.
        let d = table.get_or_insert(&mut arena, 0, &[0, 1]);
        assert_ne!(a, d);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut arena = NodeArena::new(vec![2; 64]);
        let mut table = UniqueTable::default();
        let ids: Vec<u32> =
            (0..64u32).map(|i| table.get_or_insert(&mut arena, i, &[i % 2, 1 - i % 2])).collect();
        // Remove half the nodes; the rest must still resolve.
        for &id in ids.iter().step_by(2) {
            table.remove(&arena, id);
        }
        assert_eq!(table.len(), 32);
        for (i, &id) in ids.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            let i = i as u32;
            assert_eq!(table.get_or_insert(&mut arena, i, &[i % 2, 1 - i % 2]), id);
        }
        // Reinserting the removed ones restores them without new arena nodes.
        let before = arena.len();
        for &id in ids.iter().step_by(2) {
            table.insert_new(&arena, id);
        }
        assert_eq!(arena.len(), before);
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(table.get_or_insert(&mut arena, i, &[i % 2, 1 - i % 2]), id);
        }
    }

    #[test]
    fn rebuild_reindexes_everything() {
        let mut arena = NodeArena::new(vec![2; 512]);
        let mut table = UniqueTable::default();
        let ids: Vec<u32> =
            (0..512u32).map(|i| table.get_or_insert(&mut arena, i, &[0, 1])).collect();
        table.rebuild(&arena);
        assert_eq!(table.len(), 512);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(table.get_or_insert(&mut arena, i as u32, &[0, 1]), id);
        }
    }

    #[test]
    #[should_panic]
    fn removing_unknown_node_panics() {
        let mut arena = NodeArena::new(vec![2]);
        let mut table = UniqueTable::default();
        let id = arena.push(0, &[0, 1]);
        table.remove(&arena, id);
    }

    #[test]
    fn survives_growth() {
        let mut arena = NodeArena::new(vec![2; 4096]);
        let mut table = UniqueTable::default();
        let ids: Vec<u32> = (0..2000u32)
            .map(|i| table.get_or_insert(&mut arena, i % 4096, &[i % 2, 1 - i % 2]))
            .collect();
        // Every key must still resolve to the same node after many grows.
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(table.get_or_insert(&mut arena, i % 4096, &[i % 2, 1 - i % 2]), id);
        }
        assert_eq!(table.len(), arena.len() - 2);
    }

    #[test]
    fn find_matches_get_or_insert_without_creating() {
        let mut arena = NodeArena::new(vec![2; 64]);
        let mut table = UniqueTable::default();
        let ids: Vec<u32> =
            (0..64u32).map(|i| table.get_or_insert(&mut arena, i, &[i % 2, 1 - i % 2])).collect();
        let before = arena.len();
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(table.find(&arena, i, &[i % 2, 1 - i % 2]), Some(id));
            assert_eq!(table.find(&arena, i, &[1 - i % 2, i % 2]), None, "absent key");
        }
        assert_eq!(table.find(&arena, 999, &[0, 1]), None, "unknown level");
        assert_eq!(arena.len(), before, "find never allocates");
    }

    #[test]
    fn level_ids_enumerates_one_level() {
        let mut arena = NodeArena::new(vec![2, 2]);
        let mut table = UniqueTable::default();
        let a = table.get_or_insert(&mut arena, 1, &[0, 1]);
        let b = table.get_or_insert(&mut arena, 1, &[1, 0]);
        let c = table.get_or_insert(&mut arena, 0, &[a, b]);
        let mut at1: Vec<u32> = table.level_ids(1).collect();
        at1.sort_unstable();
        assert_eq!(at1, vec![a, b]);
        assert_eq!(table.level_ids(0).collect::<Vec<_>>(), vec![c]);
        assert!(table.level_ids(7).next().is_none(), "unknown levels are empty");
    }

    #[test]
    fn swap_levels_carries_children_keys() {
        let mut arena = NodeArena::new(vec![2, 2]);
        let mut table = UniqueTable::default();
        let a = table.get_or_insert(&mut arena, 1, &[0, 1]);
        table.swap_levels(0);
        // The entry now answers at level 0 (the arena must be relabeled
        // by the caller; the key is children-only).
        arena.set_level(a, 0);
        assert_eq!(table.get_or_insert(&mut arena, 0, &[0, 1]), a);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn heavy_churn_keeps_the_table_consistent() {
        // Interleaved inserts and removals exercise the Robin Hood
        // displacement and backward-shift paths across several growths.
        let mut arena = NodeArena::new(vec![3; 1024]);
        let mut table = UniqueTable::default();
        let mut live: Vec<(u32, [u32; 3])> = Vec::new();
        for i in 0..1500u32 {
            let key = [i % 2, (i / 2) % 2, 1 - i % 2];
            let id = table.get_or_insert(&mut arena, i % 1024, &key);
            live.push((id, key));
            if i % 3 == 2 {
                // Remove an earlier entry and re-add it.
                let (victim, vkey) = live[(i as usize * 7) % live.len()];
                let level = arena.raw_level(victim);
                table.remove(&arena, victim);
                table.insert_new(&arena, victim);
                assert_eq!(table.get_or_insert(&mut arena, level, &vkey), victim);
            }
        }
        // Every live entry still resolves canonically.
        for &(id, key) in &live {
            let level = arena.raw_level(id);
            assert_eq!(table.get_or_insert(&mut arena, level, &key), id);
        }
        assert_eq!(table.len(), arena.len() - 2);
    }
}
