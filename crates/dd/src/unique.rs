//! The unique table making node construction canonical.
//!
//! The table is an open-addressed hash set of node ids; keys are never
//! materialised — a probe hashes `(level, children)` and compares
//! candidates against the arena's own storage. Compared with a
//! `HashMap<(level, Box<[id]>), id>` this halves the memory per entry and
//! removes one allocation per node, which matters when coded-ROBDD builds
//! allocate hundreds of thousands of nodes.

use std::hash::Hasher;

use crate::arena::NodeArena;
use crate::hash::FxHasher;

const EMPTY: u32 = u32::MAX;
const INITIAL_BUCKETS: usize = 64;

/// An open-addressed unique table storing node ids.
#[derive(Debug, Clone)]
pub struct UniqueTable {
    buckets: Vec<u32>,
    len: usize,
}

impl Default for UniqueTable {
    fn default() -> Self {
        Self { buckets: vec![EMPTY; INITIAL_BUCKETS], len: 0 }
    }
}

fn hash_key(level: u32, children: &[u32]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u32(level);
    for &c in children {
        hasher.write_u32(c);
    }
    hasher.finish()
}

impl UniqueTable {
    /// Number of nodes registered in the table (= non-terminal nodes of
    /// the arena it serves).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no node has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the canonical node `(level, children)`, creating it in
    /// `arena` if no equal node exists yet.
    pub fn get_or_insert(&mut self, arena: &mut NodeArena, level: u32, children: &[u32]) -> u32 {
        if self.len * 4 >= self.buckets.len() * 3 {
            self.grow(arena);
        }
        let mask = self.buckets.len() - 1;
        let mut idx = hash_key(level, children) as usize & mask;
        loop {
            let slot = self.buckets[idx];
            if slot == EMPTY {
                let id = arena.push(level, children);
                self.buckets[idx] = id;
                self.len += 1;
                return id;
            }
            if arena.raw_level(slot) == level && arena.children(slot) == children {
                return slot;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts a node under its *current* arena key. The key must not be
    /// present yet (used by the level-swap primitive after relabeling or
    /// rewriting nodes, where distinctness is guaranteed by canonicity).
    pub(crate) fn insert_new(&mut self, arena: &NodeArena, id: u32) {
        if self.len * 4 >= self.buckets.len() * 3 {
            self.grow(arena);
        }
        let mask = self.buckets.len() - 1;
        let mut idx = hash_key(arena.raw_level(id), arena.children(id)) as usize & mask;
        while self.buckets[idx] != EMPTY {
            debug_assert!(
                arena.raw_level(self.buckets[idx]) != arena.raw_level(id)
                    || arena.children(self.buckets[idx]) != arena.children(id),
                "insert_new must not duplicate an existing key"
            );
            idx = (idx + 1) & mask;
        }
        self.buckets[idx] = id;
        self.len += 1;
    }

    /// Removes a node from the table. The arena must still hold the
    /// level/children the node was inserted under (call this *before*
    /// relabeling or rewriting it). Uses backward-shift deletion so later
    /// probes stay correct without tombstones.
    ///
    /// # Panics
    ///
    /// Panics if the node is not in the table.
    pub(crate) fn remove(&mut self, arena: &NodeArena, id: u32) {
        let mask = self.buckets.len() - 1;
        let mut idx = hash_key(arena.raw_level(id), arena.children(id)) as usize & mask;
        loop {
            let slot = self.buckets[idx];
            assert_ne!(slot, EMPTY, "node {id} is not registered in the unique table");
            if slot == id {
                break;
            }
            idx = (idx + 1) & mask;
        }
        self.buckets[idx] = EMPTY;
        self.len -= 1;
        // Re-seat the rest of the probe chain across the new hole.
        let mut next = (idx + 1) & mask;
        while self.buckets[next] != EMPTY {
            let moved = self.buckets[next];
            let home = hash_key(arena.raw_level(moved), arena.children(moved)) as usize & mask;
            // `moved` may fill the hole iff its home position does not lie
            // in the cyclic interval (hole, next].
            if (next.wrapping_sub(home) & mask) >= (next.wrapping_sub(idx) & mask) {
                self.buckets[idx] = moved;
                self.buckets[next] = EMPTY;
                idx = next;
            }
            next = (next + 1) & mask;
        }
    }

    /// Discards the table and re-registers every non-terminal node of
    /// `arena` (used after a compacting collection renumbers all ids).
    pub(crate) fn rebuild(&mut self, arena: &NodeArena) {
        let entries = arena.len().saturating_sub(2);
        let mut size = INITIAL_BUCKETS;
        while entries * 4 >= size * 3 {
            size *= 2;
        }
        self.buckets = vec![EMPTY; size];
        self.len = 0;
        for id in 2..arena.len() as u32 {
            self.insert_new(arena, id);
        }
    }

    fn grow(&mut self, arena: &NodeArena) {
        let new_size = self.buckets.len() * 2;
        let mut buckets = vec![EMPTY; new_size];
        let mask = new_size - 1;
        for &id in self.buckets.iter().filter(|&&id| id != EMPTY) {
            let mut idx = hash_key(arena.raw_level(id), arena.children(id)) as usize & mask;
            while buckets[idx] != EMPTY {
                idx = (idx + 1) & mask;
            }
            buckets[idx] = id;
        }
        self.buckets = buckets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_nodes() {
        let mut arena = NodeArena::new(vec![2, 2]);
        let mut table = UniqueTable::default();
        assert!(table.is_empty());
        let a = table.get_or_insert(&mut arena, 1, &[0, 1]);
        let b = table.get_or_insert(&mut arena, 1, &[0, 1]);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 3);
        assert_eq!(table.len(), 1);
        let c = table.get_or_insert(&mut arena, 1, &[1, 0]);
        assert_ne!(a, c);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut arena = NodeArena::new(vec![2; 64]);
        let mut table = UniqueTable::default();
        let ids: Vec<u32> =
            (0..64u32).map(|i| table.get_or_insert(&mut arena, i, &[i % 2, 1 - i % 2])).collect();
        // Remove half the nodes; the rest must still resolve.
        for &id in ids.iter().step_by(2) {
            table.remove(&arena, id);
        }
        assert_eq!(table.len(), 32);
        for (i, &id) in ids.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            let i = i as u32;
            assert_eq!(table.get_or_insert(&mut arena, i, &[i % 2, 1 - i % 2]), id);
        }
        // Reinserting the removed ones restores them without new arena nodes.
        let before = arena.len();
        for &id in ids.iter().step_by(2) {
            table.insert_new(&arena, id);
        }
        assert_eq!(arena.len(), before);
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(table.get_or_insert(&mut arena, i, &[i % 2, 1 - i % 2]), id);
        }
    }

    #[test]
    fn rebuild_reindexes_everything() {
        let mut arena = NodeArena::new(vec![2; 512]);
        let mut table = UniqueTable::default();
        let ids: Vec<u32> =
            (0..512u32).map(|i| table.get_or_insert(&mut arena, i, &[0, 1])).collect();
        table.rebuild(&arena);
        assert_eq!(table.len(), 512);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(table.get_or_insert(&mut arena, i as u32, &[0, 1]), id);
        }
    }

    #[test]
    #[should_panic]
    fn removing_unknown_node_panics() {
        let mut arena = NodeArena::new(vec![2]);
        let mut table = UniqueTable::default();
        let id = arena.push(0, &[0, 1]);
        table.remove(&arena, id);
    }

    #[test]
    fn survives_growth() {
        let mut arena = NodeArena::new(vec![2; 4096]);
        let mut table = UniqueTable::default();
        let ids: Vec<u32> = (0..2000u32)
            .map(|i| table.get_or_insert(&mut arena, i % 4096, &[i % 2, 1 - i % 2]))
            .collect();
        // Every key must still resolve to the same node after many grows.
        for (i, &id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(table.get_or_insert(&mut arena, i % 4096, &[i % 2, 1 - i % 2]), id);
        }
        assert_eq!(table.len(), arena.len() - 2);
    }
}
