//! Complemented-edge encoding: one bit in every node id that negates the
//! function the edge points to.
//!
//! An edge value is an arena id (or a parallel-session id, see
//! [`crate::par`]) with bit 30 ([`CPL_BIT`]) optionally set. A set bit
//! means "the negation of the function rooted at the pointed-to node".
//! Terminals are never complemented: [`negate`] maps `ZERO ↔ ONE`
//! directly, so a complemented edge always points at a decision node.
//!
//! Canonical form (enforced by the kernel's `mk` when complement mode is
//! on): the stored high/then child of every node is *regular* — either
//! `ONE` or a plain (uncomplemented) non-terminal. A node whose high
//! child would be complemented or `ZERO` is stored with both children
//! negated and returned as a complemented edge instead. Exactly one of
//! `f` / `¬f` has a regular top edge, so the representation stays unique
//! and `id` equality remains function equality — while `f` and `¬f`
//! share every node, halving diagram sizes for functions paired with
//! their negations and making negation an O(1) bit flip.

use crate::kernel::{ONE, ZERO};

/// The complement bit: set on an edge value to denote the negation of
/// the pointed-to node's function. Chosen beside `PAR_BIT` (bit 31) and
/// above the parallel-session shard/index fields (bits 0..30), so frozen
/// arena ids and session ids both have room for it.
pub const CPL_BIT: u32 = 1 << 30;

/// True if the edge carries the complement bit.
#[inline]
pub fn is_complemented(id: u32) -> bool {
    id & CPL_BIT != 0
}

/// The underlying node id with the complement bit cleared.
#[inline]
pub fn strip(id: u32) -> u32 {
    id & !CPL_BIT
}

/// The edge denoting the negation of `id`'s function.
///
/// Terminals negate to each other (they never carry the bit); every
/// other edge — frozen or session — just toggles [`CPL_BIT`].
#[inline]
pub fn negate(id: u32) -> u32 {
    match id {
        ZERO => ONE,
        ONE => ZERO,
        _ => id ^ CPL_BIT,
    }
}

/// [`negate`] applied only when `cond` holds (parity propagation).
#[inline]
pub fn negate_if(cond: bool, id: u32) -> u32 {
    if cond {
        negate(id)
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_never_carry_the_bit() {
        assert_eq!(negate(ZERO), ONE);
        assert_eq!(negate(ONE), ZERO);
        assert!(!is_complemented(negate(ZERO)));
        assert!(!is_complemented(negate(ONE)));
    }

    #[test]
    fn nonterminals_toggle_the_bit() {
        let id = 42u32;
        let n = negate(id);
        assert!(is_complemented(n));
        assert_eq!(strip(n), id);
        assert_eq!(negate(n), id, "negation is an involution");
    }

    #[test]
    fn negate_if_propagates_parity() {
        assert_eq!(negate_if(false, 7), 7);
        assert_eq!(negate_if(true, 7), 7 | CPL_BIT);
        assert_eq!(negate_if(true, ZERO), ONE);
    }

    #[test]
    fn session_ids_keep_their_par_bit() {
        let par = (1u32 << 31) | 123;
        assert_eq!(strip(negate(par)), par);
        assert!(is_complemented(negate(par)));
    }
}
