//! A small, fast, non-cryptographic hasher for the unique and operation
//! caches.
//!
//! The decision-diagram managers perform an enormous number of hash-table
//! lookups on short fixed-size keys (two or three `u32`s). The standard
//! library's default SipHash is robust against adversarial keys but is
//! noticeably slower for this workload, so a simple multiply-xor hasher in
//! the spirit of FxHash is used instead. Keys are internal node indices, so
//! hash-flooding is not a concern.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over 64-bit words (FxHash-style).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }
}

/// `BuildHasher` for [`FxHasher`], for use with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 2u32, 3u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&(1u32, 2u32, 3u32)), hash_of(&(1u32, 3u32, 2u32)));
        assert_ne!(hash_of(&(0u32, 0u32)), hash_of(&(0u32, 1u32)));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Crude dispersion check: low 10 bits of hashes of 0..1024 should hit many buckets.
        let mut buckets = std::collections::HashSet::new();
        for i in 0u32..1024 {
            buckets.insert(hash_of(&(i, i.wrapping_mul(3))) & 0x3ff);
        }
        assert!(buckets.len() > 512, "only {} distinct buckets", buckets.len());
    }

    #[test]
    fn works_with_hashmap() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i + 1), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&(10, 11)], 10);
    }

    #[test]
    fn write_bytes_path() {
        // Strings exercise the generic `write` path.
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_eq!(hash_of(&"abcdefghij"), hash_of(&"abcdefghij"));
    }
}
