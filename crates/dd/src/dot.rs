//! Shared Graphviz (DOT) writer for decision diagrams.
//!
//! Both engines export the same skeleton — a digraph with box-shaped `0`
//! and `1` terminals and circle-shaped decision nodes — and differ only
//! in how edges are decorated (dashed low/solid high for ROBDDs, merged
//! value labels for ROMDDs). [`DotWriter`] owns the skeleton; the engines
//! drive it.

use std::fmt::Write as _;

/// An in-progress DOT document.
#[derive(Debug)]
pub struct DotWriter {
    out: String,
}

impl DotWriter {
    /// Starts a digraph named `graph` with the two terminal nodes.
    pub fn new(graph: &str) -> Self {
        let mut out = String::new();
        writeln!(out, "digraph {graph} {{").expect("write to string");
        writeln!(out, "  rankdir=TB;").expect("write to string");
        writeln!(out, "  node0 [label=\"0\", shape=box];").expect("write to string");
        writeln!(out, "  node1 [label=\"1\", shape=box];").expect("write to string");
        Self { out }
    }

    /// Emits a decision node.
    pub fn node(&mut self, id: u32, label: &str) {
        writeln!(self.out, "  node{id} [label=\"{label}\", shape=circle];")
            .expect("write to string");
    }

    /// Emits an edge, optionally with an attribute list such as
    /// `style=dashed` or `label="0,1"`.
    pub fn edge(&mut self, from: u32, to: u32, attrs: Option<&str>) {
        match attrs {
            Some(attrs) => writeln!(self.out, "  node{from} -> node{to} [{attrs}];"),
            None => writeln!(self.out, "  node{from} -> node{to};"),
        }
        .expect("write to string");
    }

    /// Closes the digraph and returns the document.
    pub fn finish(mut self) -> String {
        writeln!(self.out, "}}").expect("write to string");
        self.out
    }
}

/// The display label of a variable level: the supplied name when one is
/// given, `x<level>` otherwise.
pub fn level_label(var_names: Option<&[String]>, level: usize) -> String {
    match var_names.and_then(|n| n.get(level)) {
        Some(name) => name.clone(),
        None => format!("x{level}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_well_formed_documents() {
        let mut w = DotWriter::new("robdd");
        w.node(2, "x0");
        w.edge(2, 0, Some("style=dashed"));
        w.edge(2, 1, None);
        let dot = w.finish();
        assert!(dot.starts_with("digraph robdd {"));
        assert!(dot.contains("node0 [label=\"0\", shape=box];"));
        assert!(dot.contains("node2 [label=\"x0\", shape=circle];"));
        assert!(dot.contains("node2 -> node0 [style=dashed];"));
        assert!(dot.contains("node2 -> node1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_fall_back_to_level_index() {
        let names = vec!["w".to_string()];
        assert_eq!(level_label(Some(&names), 0), "w");
        assert_eq!(level_label(Some(&names), 3), "x3");
        assert_eq!(level_label(None, 1), "x1");
    }
}
