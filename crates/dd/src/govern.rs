//! Resource governance for decision-diagram compilation: node budgets,
//! wall-clock deadlines, cooperative cancellation and deterministic
//! fail-point fault injection.
//!
//! A [`Governor`] is a small shared counter attached to a kernel (and,
//! through [`crate::DdKernel::absorb_par`]-bound sessions, to the
//! parallel task driver). Every node *materialisation* — a unique-table
//! insertion that actually grew the arena or a session shard — reports
//! through [`Governor::on_alloc`]; the governor trips when a limit is
//! crossed and aborts the compilation by unwinding with a private
//! `GovernorAbort` payload. The abort is caught at the compilation
//! boundary by [`catch_governed`], which converts it into a typed
//! [`DdError`] — never a user-visible panic.
//!
//! # Semantics
//!
//! * **Node budget** counts materialised nodes *per governed run*, across
//!   every manager the governor is armed on (a compilation arms one
//!   governor on both its ROBDD and ROMDD managers, so the budget bounds
//!   the whole compile). Parallel compilations may count slightly more
//!   than sequential ones (session shards deduplicate per shard, and
//!   absorbed nodes re-materialise into the arena), so a budget is a
//!   resource bound, not an exact node count — the same compilation
//!   either fits comfortably or exceeds it at every thread count, by
//!   design of the callers (budgets are chosen with wide margins).
//! * **Deadline** is polled lazily: at the first allocation and then once
//!   every `POLL_STRIDE` (256) allocations, so an un-allocating hot loop
//!   between allocations never pays a clock read.
//! * **Cancellation** is cooperative through a shared [`CancelToken`],
//!   polled on the same stride.
//! * **Fail points** ([`GovernorLimits::fail_after`]) deterministically force a
//!   `BudgetExceeded` trip at exactly the Nth materialisation — the
//!   fault-injection hook the abort-path tests are built on.
//!
//! # Cleanup contract
//!
//! A trip unwinds out of the kernel *after* the offending node is fully
//! inserted — the unique table, arena and session shards are never left
//! half-updated. Callers observe the contract end to end: an aborted
//! parallel session is dropped un-absorbed, an aborted sequential build
//! is garbage-collected, and a subsequent compile of the same system is
//! bit-identical to an undisturbed one (see `tests/governed_compile.rs`
//! at the workspace root).

use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use crate::options::CompileOptions;

/// Allocations between deadline/cancellation polls. A stride keeps the
/// governed hot path at one relaxed atomic add; 256 allocations take
/// microseconds, so deadlines are still honoured promptly.
const POLL_STRIDE: u64 = 256;

/// Why a governed compilation was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdError {
    /// The run materialised more nodes than its budget allows (also the
    /// error a [`GovernorLimits::fail_after`] fail point forces).
    BudgetExceeded {
        /// The configured node budget (or fail point) that was crossed.
        budget: u64,
        /// Nodes materialised when the governor tripped.
        allocated: u64,
    },
    /// The run's wall-clock deadline passed.
    Deadline {
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
}

impl std::fmt::Display for DdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdError::BudgetExceeded { budget, allocated } => {
                write!(f, "node budget exceeded: {allocated} nodes against a budget of {budget}")
            }
            DdError::Deadline { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded")
            }
            DdError::Cancelled => write!(f, "compilation cancelled"),
        }
    }
}

impl std::error::Error for DdError {}

/// A shared cooperative-cancellation flag.
///
/// Clones share one flag; [`CancelToken::cancel`] makes every governed
/// compilation holding a clone abort (with [`DdError::Cancelled`]) at its
/// next poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every governed run holding a clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// The limits a [`Governor`] enforces. A zero value disables the
/// corresponding limit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorLimits {
    /// Maximum nodes a governed run may materialise (`0` = unlimited).
    pub node_budget: u64,
    /// Wall-clock deadline in milliseconds from governor creation
    /// (`0` = none).
    pub deadline_ms: u64,
    /// Deterministic fail point: force a `BudgetExceeded` trip at exactly
    /// this materialisation count (`0` = off). Test-only fault injection.
    pub fail_after: u64,
}

#[derive(Debug)]
struct Inner {
    node_budget: u64,
    fail_after: u64,
    deadline_ms: u64,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    allocated: AtomicU64,
    /// Fast tripped check; the authoritative error sits in `tripped`.
    tripped_flag: AtomicBool,
    /// First error that tripped the governor (later trips keep it).
    tripped: Mutex<Option<DdError>>,
}

/// The panic payload a tripped governor unwinds with. Private to the
/// crate: [`catch_governed`] and the parallel task driver are the only
/// places that look for it.
pub(crate) struct GovernorAbort(pub(crate) DdError);

/// Installs (once, process-wide) a panic hook that silences
/// [`GovernorAbort`] unwinds — they are control flow, not failures — and
/// chains to the previously installed hook for everything else.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<GovernorAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

/// A shared resource governor: clones share one allocation counter, one
/// trip state and one set of limits. Arm clones of a single governor on
/// every manager participating in one logical compilation so the budget
/// bounds their combined footprint.
#[derive(Debug, Clone)]
pub struct Governor {
    inner: Arc<Inner>,
}

impl Governor {
    /// Creates a governor enforcing `limits`, optionally watching a
    /// [`CancelToken`]. The deadline clock starts now.
    pub fn new(limits: GovernorLimits, cancel: Option<CancelToken>) -> Self {
        install_quiet_hook();
        let deadline = (limits.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(limits.deadline_ms));
        Governor {
            inner: Arc::new(Inner {
                node_budget: limits.node_budget,
                fail_after: limits.fail_after,
                deadline_ms: limits.deadline_ms,
                deadline,
                cancel,
                allocated: AtomicU64::new(0),
                tripped_flag: AtomicBool::new(false),
                tripped: Mutex::new(None),
            }),
        }
    }

    /// Builds the governor a compilation under `options` runs with:
    /// `None` when every limit is disabled and no cancellation token is
    /// supplied, so ungoverned compilation pays nothing.
    pub fn from_options(options: &CompileOptions, cancel: Option<CancelToken>) -> Option<Self> {
        let limits = GovernorLimits {
            node_budget: options.node_budget() as u64,
            deadline_ms: options.deadline_ms(),
            fail_after: options.fail_after(),
        };
        (limits != GovernorLimits::default() || cancel.is_some())
            .then(|| Governor::new(limits, cancel))
    }

    /// Nodes materialised so far under this governor.
    pub fn allocated(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Whether the governor has tripped.
    pub fn is_tripped(&self) -> bool {
        self.inner.tripped_flag.load(Ordering::Acquire)
    }

    /// The error that tripped the governor, if any.
    pub fn error(&self) -> Option<DdError> {
        *self.inner.tripped.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Records `n` materialised nodes, tripping (by unwinding with a
    /// governor abort — catch with [`catch_governed`]) when a limit is
    /// crossed. Call *after* the nodes are fully inserted, so an abort
    /// never leaves a table half-updated.
    ///
    /// # Panics
    ///
    /// Unwinds with the crate-private abort payload when the governor is
    /// (or becomes) tripped.
    pub fn on_alloc(&self, n: u64) {
        let inner = &self.inner;
        if inner.tripped_flag.load(Ordering::Acquire) {
            self.abort();
        }
        let prev = inner.allocated.fetch_add(n, Ordering::Relaxed);
        let now = prev + n;
        if inner.fail_after > 0 && prev < inner.fail_after && now >= inner.fail_after {
            self.trip(DdError::BudgetExceeded { budget: inner.fail_after, allocated: now });
        }
        if inner.node_budget > 0 && now > inner.node_budget {
            self.trip(DdError::BudgetExceeded { budget: inner.node_budget, allocated: now });
        }
        if prev == 0 || prev / POLL_STRIDE != now / POLL_STRIDE {
            self.poll();
        }
    }

    /// Polls the non-counting limits (deadline, cancellation) and the
    /// shared trip state, unwinding with a governor abort when any has
    /// fired. The parallel task driver calls this between phases so a
    /// trip on a worker thread re-raises on the driving thread.
    ///
    /// # Panics
    ///
    /// Unwinds with the crate-private abort payload when the governor is
    /// (or becomes) tripped.
    pub fn poll(&self) {
        let inner = &self.inner;
        if inner.tripped_flag.load(Ordering::Acquire) {
            self.abort();
        }
        if let Some(cancel) = &inner.cancel {
            if cancel.is_cancelled() {
                self.trip(DdError::Cancelled);
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                self.trip(DdError::Deadline { deadline_ms: inner.deadline_ms });
            }
        }
    }

    /// Records the first trip error and unwinds.
    fn trip(&self, error: DdError) -> ! {
        {
            let mut slot = self.inner.tripped.lock().unwrap_or_else(|poison| poison.into_inner());
            slot.get_or_insert(error);
        }
        self.inner.tripped_flag.store(true, Ordering::Release);
        self.abort();
    }

    /// Unwinds with the recorded trip error.
    fn abort(&self) -> ! {
        let error = self.error().expect("abort requires a recorded trip error");
        panic_any(GovernorAbort(error));
    }
}

/// Runs `f` under an optional governor, converting a governor abort into
/// the typed [`DdError`] that tripped it. Non-governor panics resume
/// unwinding unchanged, so ordinary fault containment (and test
/// failures) behave exactly as without a governor.
///
/// The fallback to [`Governor::error`] covers unwind paths that lose the
/// payload — `std::thread::scope` replaces a worker panic with its own
/// message — so a trip is never misreported as a plain panic.
pub fn catch_governed<R>(governor: Option<&Governor>, f: impl FnOnce() -> R) -> Result<R, DdError> {
    let Some(governor) = governor else {
        return Ok(f());
    };
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => Ok(result),
        Err(payload) => match payload.downcast::<GovernorAbort>() {
            Ok(abort) => Err(abort.0),
            Err(payload) => match governor.error() {
                Some(error) => Err(error),
                None => resume_unwind(payload),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungoverned_runs_pass_through() {
        assert_eq!(catch_governed(None, || 7), Ok(7));
        assert!(Governor::from_options(&CompileOptions::new(), None).is_none());
    }

    #[test]
    fn node_budget_trips_after_the_budget() {
        let governor =
            Governor::new(GovernorLimits { node_budget: 10, ..GovernorLimits::default() }, None);
        let counted = catch_governed(Some(&governor), || {
            for _ in 0..100 {
                governor.on_alloc(1);
            }
        });
        assert_eq!(counted, Err(DdError::BudgetExceeded { budget: 10, allocated: 11 }));
        assert!(governor.is_tripped());
        assert_eq!(governor.error(), Some(DdError::BudgetExceeded { budget: 10, allocated: 11 }));
    }

    #[test]
    fn fail_point_trips_at_exactly_the_nth_allocation() {
        let governor =
            Governor::new(GovernorLimits { fail_after: 3, ..GovernorLimits::default() }, None);
        let outcome = catch_governed(Some(&governor), || {
            governor.on_alloc(1);
            governor.on_alloc(1);
            governor.on_alloc(1);
            unreachable!("the third allocation trips the fail point");
        });
        assert_eq!(outcome, Err(DdError::BudgetExceeded { budget: 3, allocated: 3 }));
    }

    #[test]
    fn cancellation_is_polled_on_the_first_allocation() {
        let token = CancelToken::new();
        let governor = Governor::new(GovernorLimits::default(), Some(token.clone()));
        token.cancel();
        assert_eq!(
            catch_governed(Some(&governor), || governor.on_alloc(1)),
            Err(DdError::Cancelled)
        );
    }

    #[test]
    fn deadline_in_the_past_trips_immediately() {
        let governor =
            Governor::new(GovernorLimits { deadline_ms: 1, ..GovernorLimits::default() }, None);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(
            catch_governed(Some(&governor), || governor.poll()),
            Err(DdError::Deadline { deadline_ms: 1 })
        );
    }

    #[test]
    fn non_governor_panics_resume_unchanged() {
        let governor =
            Governor::new(GovernorLimits { node_budget: 10, ..GovernorLimits::default() }, None);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = catch_governed(Some(&governor), || panic!("ordinary failure"));
        }));
        let payload = caught.expect_err("the panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"ordinary failure"));
    }
}
