//! A small line-oriented textual format for netlists.
//!
//! The format is intended for exchanging benchmark fault trees and for
//! making tests readable; it is deliberately simple:
//!
//! ```text
//! # comment
//! input x1
//! input x2
//! input x3
//! g1 = and x1 x2
//! f  = or g1 x3
//! output f
//! ```
//!
//! Supported operators: `and`, `or`, `not`, `xor`, `atleast<K>` (e.g.
//! `atleast2`), `const0`, `const1`. Every operand must have been defined on
//! an earlier line. Exactly one `output` line is required.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

impl Netlist {
    /// Serialises the netlist to the textual format.
    ///
    /// Internal gate nodes are named `g<node-id>`; inputs keep their names.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutput`] if no output has been designated.
    pub fn to_text(&self) -> Result<String, NetlistError> {
        let out = self.output()?;
        let mut text = String::new();
        let name = |id: NodeId| -> String {
            match self.var_of(id) {
                Some(v) => self.var_name(v).to_string(),
                None => format!("g{}", id.index()),
            }
        };
        for (id, gate) in self.iter() {
            match gate.kind {
                GateKind::Input => {
                    writeln!(text, "input {}", name(id)).expect("write to string");
                }
                GateKind::Const(c) => {
                    writeln!(text, "{} = const{}", name(id), u8::from(c)).expect("write to string");
                }
                _ => {
                    let operands: Vec<String> = gate.fanin.iter().map(|f| name(*f)).collect();
                    writeln!(
                        text,
                        "{} = {} {}",
                        name(id),
                        gate.kind.mnemonic(),
                        operands.join(" ")
                    )
                    .expect("write to string");
                }
            }
        }
        writeln!(text, "output {}", name(out)).expect("write to string");
        Ok(text)
    }

    /// Parses a netlist from the textual format.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Parse`] on malformed lines, unknown operand
    /// names, unknown operators, duplicate definitions, or a missing
    /// `output` directive.
    pub fn from_text(text: &str) -> Result<Self, NetlistError> {
        let mut nl = Netlist::new();
        let mut names: HashMap<String, NodeId> = HashMap::new();
        let mut output: Option<NodeId> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| NetlistError::Parse(format!("line {}: {msg}", lineno + 1));
            if let Some(rest) = line.strip_prefix("input ") {
                let name = rest.trim();
                if name.is_empty() || names.contains_key(name) {
                    return Err(err(format!("bad or duplicate input name `{name}`")));
                }
                let id = nl.input(name);
                names.insert(name.to_string(), id);
            } else if let Some(rest) = line.strip_prefix("output ") {
                let name = rest.trim();
                let id = *names.get(name).ok_or_else(|| err(format!("unknown node `{name}`")))?;
                output = Some(id);
            } else if let Some((lhs, rhs)) = line.split_once('=') {
                let target = lhs.trim();
                if target.is_empty() || names.contains_key(target) {
                    return Err(err(format!("bad or duplicate node name `{target}`")));
                }
                let mut parts = rhs.split_whitespace();
                let op = parts.next().ok_or_else(|| err("missing operator".to_string()))?;
                let operands: Result<Vec<NodeId>, NetlistError> = parts
                    .map(|p| {
                        names.get(p).copied().ok_or_else(|| err(format!("unknown operand `{p}`")))
                    })
                    .collect();
                let operands = operands?;
                let id = match op {
                    "and" => nl.and(operands),
                    "or" => nl.or(operands),
                    "xor" => nl.xor(operands),
                    "not" => {
                        if operands.len() != 1 {
                            return Err(err("`not` takes exactly one operand".to_string()));
                        }
                        nl.not(operands[0])
                    }
                    "const0" => nl.constant(false),
                    "const1" => nl.constant(true),
                    _ => {
                        if let Some(k) = op.strip_prefix("atleast") {
                            let k: usize =
                                k.parse().map_err(|_| err(format!("bad threshold in `{op}`")))?;
                            nl.at_least(k, operands)
                        } else {
                            return Err(err(format!("unknown operator `{op}`")));
                        }
                    }
                };
                names.insert(target.to_string(), id);
            } else {
                return Err(err(format!("unrecognised line `{line}`")));
            }
        }
        let out = output.ok_or_else(|| NetlistError::Parse("missing `output` line".to_string()))?;
        nl.set_output(out);
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "
# the Figure-2 fault tree
input x1
input x2
input x3
g1 = and x1 x2
f = or g1 x3
output f
";

    #[test]
    fn parse_and_evaluate() {
        let nl = Netlist::from_text(EXAMPLE).unwrap();
        assert_eq!(nl.num_inputs(), 3);
        assert_eq!(nl.num_gates(), 2);
        assert!(nl.eval_output(&[true, true, false]));
        assert!(nl.eval_output(&[false, false, true]));
        assert!(!nl.eval_output(&[true, false, false]));
    }

    #[test]
    fn round_trip() {
        let nl = Netlist::from_text(EXAMPLE).unwrap();
        let text = nl.to_text().unwrap();
        let back = Netlist::from_text(&text).unwrap();
        assert_eq!(back.num_inputs(), nl.num_inputs());
        assert_eq!(back.truth_table(), nl.truth_table());
    }

    #[test]
    fn round_trip_with_exotic_gates() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let d = nl.input("d");
        let v = nl.at_least(3, [a, b, c, d]);
        let x = nl.xor([a, d]);
        let na = nl.not(a);
        let k = nl.constant(true);
        let g = nl.or([v, x, na, k]);
        nl.set_output(g);
        let text = nl.to_text().unwrap();
        let back = Netlist::from_text(&text).unwrap();
        assert_eq!(back.truth_table(), nl.truth_table());
    }

    #[test]
    fn parse_errors() {
        assert!(Netlist::from_text("input a\noutput b").is_err());
        assert!(Netlist::from_text("input a\ninput a\noutput a").is_err());
        assert!(Netlist::from_text("input a\ng = frobnicate a\noutput g").is_err());
        assert!(Netlist::from_text("input a\ng = not a a\noutput g").is_err());
        assert!(Netlist::from_text("input a\ng = atleastX a\noutput g").is_err());
        assert!(Netlist::from_text("input a").is_err());
        assert!(Netlist::from_text("gibberish line").is_err());
        assert!(Netlist::from_text("input a\na = and a a\noutput a").is_err());
    }

    #[test]
    fn to_text_requires_output() {
        let mut nl = Netlist::new();
        nl.input("a");
        assert!(nl.to_text().is_err());
    }
}
