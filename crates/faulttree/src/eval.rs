//! Evaluation of a netlist under a complete input assignment.

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

impl Netlist {
    /// Evaluates every node of the netlist under the assignment
    /// `inputs[v] = value of variable v` and returns the vector of node
    /// values (indexed by node id).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::AssignmentLength`] if `inputs` does not have
    /// exactly [`Netlist::num_inputs`] entries.
    pub fn eval_all(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.num_inputs() {
            return Err(NetlistError::AssignmentLength {
                got: inputs.len(),
                expected: self.num_inputs(),
            });
        }
        let mut values = vec![false; self.len()];
        for (id, gate) in self.iter() {
            let v = match gate.kind {
                GateKind::Input => inputs[self.var_of(id).expect("input has a var").index()],
                GateKind::Const(c) => c,
                GateKind::Not => !values[gate.fanin[0].index()],
                GateKind::And => gate.fanin.iter().all(|f| values[f.index()]),
                GateKind::Or => gate.fanin.iter().any(|f| values[f.index()]),
                GateKind::Xor => gate.fanin.iter().filter(|f| values[f.index()]).count() % 2 == 1,
                GateKind::AtLeast(k) => {
                    gate.fanin.iter().filter(|f| values[f.index()]).count() >= k as usize
                }
            };
            values[id.index()] = v;
        }
        Ok(values)
    }

    /// Evaluates a single node under the assignment.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::eval_all`].
    pub fn eval_node(&self, node: NodeId, inputs: &[bool]) -> Result<bool, NetlistError> {
        Ok(self.eval_all(inputs)?[node.index()])
    }

    /// Evaluates the designated output under the assignment.
    ///
    /// # Panics
    ///
    /// Panics if no output has been designated or the assignment length is
    /// wrong; use [`Netlist::try_eval_output`] for a fallible version.
    pub fn eval_output(&self, inputs: &[bool]) -> bool {
        self.try_eval_output(inputs).expect("netlist evaluation failed")
    }

    /// Fallible version of [`Netlist::eval_output`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutput`] when no output is designated, or
    /// [`NetlistError::AssignmentLength`] on a malformed assignment.
    pub fn try_eval_output(&self, inputs: &[bool]) -> Result<bool, NetlistError> {
        let out = self.output()?;
        self.eval_node(out, inputs)
    }

    /// Exhaustively enumerates the truth table of the output over all
    /// `2^num_inputs` assignments (little-endian: bit `i` of the row index
    /// is the value of variable `i`). Intended for testing and for the
    /// exact baselines; only use with small input counts.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 24 inputs (the table would be
    /// unreasonably large) or no designated output.
    pub fn truth_table(&self) -> Vec<bool> {
        let n = self.num_inputs();
        assert!(n <= 24, "truth_table is limited to 24 inputs, got {n}");
        let out = self.output().expect("netlist has no output");
        let mut table = Vec::with_capacity(1usize << n);
        let mut assignment = vec![false; n];
        for row in 0u64..(1u64 << n) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (row >> i) & 1 == 1;
            }
            table.push(self.eval_node(out, &assignment).expect("assignment length is correct"));
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Netlist {
        // F = (a AND b) OR NOT c
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let g1 = nl.and([a, b]);
        let nc = nl.not(c);
        let f = nl.or([g1, nc]);
        nl.set_output(f);
        nl
    }

    #[test]
    fn evaluation_matches_formula() {
        let nl = example();
        for row in 0..8u32 {
            let a = row & 1 == 1;
            let b = row & 2 != 0;
            let c = row & 4 != 0;
            let expect = (a && b) || !c;
            assert_eq!(nl.eval_output(&[a, b, c]), expect, "row {row}");
        }
    }

    #[test]
    fn eval_all_exposes_internal_nodes() {
        let nl = example();
        let values = nl.eval_all(&[true, false, false]).unwrap();
        // n3 = a AND b = false, n4 = NOT c = true, n5 = OR = true
        assert!(!values[3]);
        assert!(values[4]);
        assert!(values[5]);
    }

    #[test]
    fn wrong_assignment_length() {
        let nl = example();
        assert!(matches!(
            nl.eval_all(&[true]),
            Err(NetlistError::AssignmentLength { got: 1, expected: 3 })
        ));
        assert!(nl.try_eval_output(&[true, false, true, false]).is_err());
    }

    #[test]
    fn xor_and_atleast_semantics() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let x = nl.xor([a, b, c]);
        let v = nl.at_least(2, [a, b, c]);
        let both = nl.and([x, v]);
        nl.set_output(both);
        // xor true for odd parity; at_least(2) true for >= 2 ones; both true only for exactly 3 ones.
        assert!(nl.eval_output(&[true, true, true]));
        assert!(!nl.eval_output(&[true, true, false]));
        assert!(!nl.eval_output(&[true, false, false]));
        assert!(!nl.eval_output(&[false, false, false]));
    }

    #[test]
    fn truth_table_enumerates_all_rows() {
        let nl = example();
        let table = nl.truth_table();
        assert_eq!(table.len(), 8);
        let ones = table.iter().filter(|&&v| v).count();
        // (a AND b) OR NOT c: rows with c=0 (4 rows) plus (a,b,c)=(1,1,1) → 5 ones.
        assert_eq!(ones, 5);
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let t = nl.constant(true);
        let g = nl.and([a, t]);
        nl.set_output(g);
        assert!(nl.eval_output(&[true]));
        assert!(!nl.eval_output(&[false]));
    }
}
