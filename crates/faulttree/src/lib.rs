//! Gate-level fault-tree / boolean-netlist representation.
//!
//! The combinatorial yield method of the DSN'03 paper starts from a
//! *gate-level description* of the fault-tree function `F(x_1, …, x_C)`
//! (value 1 ⇔ the system is **not** functioning). This crate provides that
//! substrate:
//!
//! * a [`Netlist`] — an arena-based DAG of gates ([`Gate`]) over named
//!   boolean input variables;
//! * a convenient builder API ([`Netlist::input`], [`Netlist::and`],
//!   [`Netlist::or`], [`Netlist::not`], [`Netlist::at_least`], …);
//! * evaluation under a complete input assignment (module [`eval`]);
//! * structural traversals — topological order, depth-first left-most input
//!   order, supports, depths, gate counts — used both by the variable-ordering
//!   heuristics and by the decision-diagram builders (module [`topo`]);
//! * a small textual format for serialising netlists (module [`text`]).
//!
//! # Example
//!
//! ```
//! use socy_faulttree::Netlist;
//!
//! // F = x1·x2 + x3  (the fault tree of the paper's Figure 2 example)
//! let mut nl = Netlist::new();
//! let x1 = nl.input("x1");
//! let x2 = nl.input("x2");
//! let x3 = nl.input("x3");
//! let a = nl.and([x1, x2]);
//! let f = nl.or([a, x3]);
//! nl.set_output(f);
//!
//! assert_eq!(nl.num_inputs(), 3);
//! assert!(nl.eval_output(&[true, true, false]));
//! assert!(!nl.eval_output(&[true, false, false]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod gate;
pub mod netlist;
pub mod text;
pub mod topo;

pub use gate::{Gate, GateKind};
pub use netlist::{Netlist, NetlistError, NodeId, VarId};
