//! The [`Netlist`] arena: a DAG of gates over named boolean inputs.

use std::collections::HashMap;
use std::fmt;

use crate::gate::{Gate, GateKind};

/// Identifier of a node (gate or input) within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The index of this node inside the netlist arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a primary input variable (dense, `0 .. num_inputs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Creates a variable identifier from a dense index.
    pub fn new(index: usize) -> Self {
        VarId(index as u32)
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Errors produced when constructing or querying a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// No output node has been designated.
    NoOutput,
    /// A referenced node does not exist in the arena.
    UnknownNode(u32),
    /// An input assignment had the wrong length.
    AssignmentLength {
        /// Number of values supplied.
        got: usize,
        /// Number of primary inputs expected.
        expected: usize,
    },
    /// A textual netlist could not be parsed.
    Parse(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::NoOutput => write!(f, "netlist has no designated output"),
            NetlistError::UnknownNode(id) => write!(f, "unknown node id n{id}"),
            NetlistError::AssignmentLength { got, expected } => {
                write!(f, "input assignment has {got} values, expected {expected}")
            }
            NetlistError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// An arena-based gate-level netlist with a single designated output.
///
/// Nodes are appended in construction order, so every node's fan-ins have
/// smaller indices than the node itself; the arena order is therefore a
/// valid topological order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    nodes: Vec<Gate>,
    /// For input nodes: their variable id; parallel to `nodes` (u32::MAX otherwise).
    input_var: Vec<u32>,
    /// Input variable id -> node id.
    var_node: Vec<NodeId>,
    /// Input variable id -> name.
    var_name: Vec<String>,
    /// Name -> variable id (for lookups and the text format).
    name_index: HashMap<String, VarId>,
    output: Option<NodeId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: GateKind, fanin: Vec<NodeId>) -> NodeId {
        debug_assert!(fanin.iter().all(|id| id.index() < self.nodes.len()));
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Gate { kind, fanin });
        self.input_var.push(u32::MAX);
        id
    }

    /// Adds a primary input with the given name and returns its node id.
    ///
    /// Input variables receive dense [`VarId`]s in creation order. Creating
    /// two inputs with the same name creates two distinct variables; use
    /// [`Netlist::input_by_name`] to reuse an existing one.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let var = VarId(self.var_node.len() as u32);
        let id = self.push(GateKind::Input, Vec::new());
        self.input_var[id.index()] = var.0;
        self.var_node.push(id);
        self.var_name.push(name.clone());
        self.name_index.entry(name).or_insert(var);
        id
    }

    /// Returns the node of the input named `name`, creating it if needed.
    pub fn input_by_name(&mut self, name: &str) -> NodeId {
        match self.name_index.get(name) {
            Some(var) => self.var_node[var.index()],
            None => self.input(name),
        }
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(GateKind::Const(value), Vec::new())
    }

    /// Adds an AND gate over `fanin` (in the given order).
    ///
    /// A zero-fan-in AND is the constant 1; a single-fan-in AND returns the
    /// fan-in node unchanged (no gate is materialised).
    pub fn and(&mut self, fanin: impl IntoIterator<Item = NodeId>) -> NodeId {
        let fanin: Vec<NodeId> = fanin.into_iter().collect();
        match fanin.len() {
            0 => self.constant(true),
            1 => fanin[0],
            _ => self.push(GateKind::And, fanin),
        }
    }

    /// Adds an OR gate over `fanin` (in the given order).
    ///
    /// A zero-fan-in OR is the constant 0; a single-fan-in OR returns the
    /// fan-in node unchanged.
    pub fn or(&mut self, fanin: impl IntoIterator<Item = NodeId>) -> NodeId {
        let fanin: Vec<NodeId> = fanin.into_iter().collect();
        match fanin.len() {
            0 => self.constant(false),
            1 => fanin[0],
            _ => self.push(GateKind::Or, fanin),
        }
    }

    /// Adds a NOT gate.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(GateKind::Not, vec![a])
    }

    /// Adds an XOR (parity) gate over `fanin`.
    pub fn xor(&mut self, fanin: impl IntoIterator<Item = NodeId>) -> NodeId {
        let fanin: Vec<NodeId> = fanin.into_iter().collect();
        match fanin.len() {
            0 => self.constant(false),
            1 => fanin[0],
            _ => self.push(GateKind::Xor, fanin),
        }
    }

    /// Adds an "at least `k` of n" voter gate over `fanin`.
    ///
    /// Degenerate thresholds are simplified: `k == 0` is the constant 1,
    /// `k > n` is the constant 0, `k == n` is an AND and `k == 1` an OR.
    pub fn at_least(&mut self, k: usize, fanin: impl IntoIterator<Item = NodeId>) -> NodeId {
        let fanin: Vec<NodeId> = fanin.into_iter().collect();
        let n = fanin.len();
        if k == 0 {
            return self.constant(true);
        }
        if k > n {
            return self.constant(false);
        }
        if k == n {
            return self.and(fanin);
        }
        if k == 1 {
            return self.or(fanin);
        }
        self.push(GateKind::AtLeast(k as u32), fanin)
    }

    /// Designates `node` as the netlist output.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this netlist.
    pub fn set_output(&mut self, node: NodeId) {
        assert!(node.index() < self.nodes.len(), "output node out of range");
        self.output = Some(node);
    }

    /// The designated output node.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutput`] if no output was designated.
    pub fn output(&self) -> Result<NodeId, NetlistError> {
        self.output.ok_or(NetlistError::NoOutput)
    }

    /// Number of nodes (inputs + constants + gates) in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of primary input variables.
    pub fn num_inputs(&self) -> usize {
        self.var_node.len()
    }

    /// Number of logic gates (nodes that are neither inputs nor constants).
    /// This is the "number of gates" metric reported in Table 1 of the paper.
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|g| g.kind.has_fanin()).count()
    }

    /// The gate stored at `id`.
    pub fn gate(&self, id: NodeId) -> &Gate {
        &self.nodes[id.index()]
    }

    /// Iterator over `(NodeId, &Gate)` in arena (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Gate)> {
        self.nodes.iter().enumerate().map(|(i, g)| (NodeId(i as u32), g))
    }

    /// The variable id of an input node, or `None` for non-input nodes.
    pub fn var_of(&self, id: NodeId) -> Option<VarId> {
        let v = self.input_var[id.index()];
        if v == u32::MAX {
            None
        } else {
            Some(VarId(v))
        }
    }

    /// The node corresponding to input variable `var`.
    pub fn node_of(&self, var: VarId) -> NodeId {
        self.var_node[var.index()]
    }

    /// The name of input variable `var`.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_name[var.index()]
    }

    /// Looks up an input variable by name (first variable created with that
    /// name, if several share it).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.name_index.get(name).copied()
    }

    /// All input variable names, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_name
    }

    /// Copies the logic of `source` into this netlist, substituting
    /// `substitution[v]` for each primary input variable `v` of `source`,
    /// and returns the node corresponding to `source`'s designated output.
    ///
    /// This is how the generalized fault tree `G` is assembled: the
    /// original fault tree `F(x_1, …, x_C)` is instantiated with each
    /// `x_i` driven by the filter-gate logic over the defect variables.
    ///
    /// # Panics
    ///
    /// Panics if `source` has no designated output or if `substitution`
    /// does not provide a node for every input of `source`.
    pub fn import(&mut self, source: &Netlist, substitution: &[NodeId]) -> NodeId {
        let output = source.output().expect("source netlist must have an output");
        assert_eq!(
            substitution.len(),
            source.num_inputs(),
            "substitution must cover every input of the source netlist"
        );
        let mut mapped: Vec<NodeId> = Vec::with_capacity(source.len());
        for (id, gate) in source.iter() {
            let new_id = match gate.kind {
                GateKind::Input => {
                    substitution[source.var_of(id).expect("input has a variable").index()]
                }
                GateKind::Const(c) => self.constant(c),
                GateKind::Not => self.not(mapped[gate.fanin[0].index()]),
                GateKind::And => {
                    let fanin: Vec<NodeId> = gate.fanin.iter().map(|f| mapped[f.index()]).collect();
                    self.and(fanin)
                }
                GateKind::Or => {
                    let fanin: Vec<NodeId> = gate.fanin.iter().map(|f| mapped[f.index()]).collect();
                    self.or(fanin)
                }
                GateKind::Xor => {
                    let fanin: Vec<NodeId> = gate.fanin.iter().map(|f| mapped[f.index()]).collect();
                    self.xor(fanin)
                }
                GateKind::AtLeast(k) => {
                    let fanin: Vec<NodeId> = gate.fanin.iter().map(|f| mapped[f.index()]).collect();
                    self.at_least(k as usize, fanin)
                }
            };
            mapped.push(new_id);
        }
        mapped[output.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_netlist() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.and([a, b]);
        nl.set_output(g);
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.len(), 3);
        assert!(!nl.is_empty());
        assert_eq!(nl.output().unwrap(), g);
        assert_eq!(nl.var_of(a), Some(VarId::new(0)));
        assert_eq!(nl.var_of(g), None);
        assert_eq!(nl.node_of(VarId::new(1)), b);
        assert_eq!(nl.var_name(VarId::new(1)), "b");
        assert_eq!(nl.var_by_name("a"), Some(VarId::new(0)));
        assert_eq!(nl.var_by_name("zzz"), None);
    }

    #[test]
    fn gate_simplifications() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        // Single-operand gates collapse to the operand.
        assert_eq!(nl.and([a]), a);
        assert_eq!(nl.or([a]), a);
        assert_eq!(nl.xor([a]), a);
        // Empty gates collapse to constants.
        let t = nl.and(std::iter::empty());
        let f = nl.or(std::iter::empty());
        assert_eq!(nl.gate(t).kind, GateKind::Const(true));
        assert_eq!(nl.gate(f).kind, GateKind::Const(false));
    }

    #[test]
    fn at_least_simplifications() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let always = nl.at_least(0, [a, b]);
        assert_eq!(nl.gate(always).kind, GateKind::Const(true));
        let never = nl.at_least(3, [a, b]);
        assert_eq!(nl.gate(never).kind, GateKind::Const(false));
        let all = nl.at_least(2, [a, b]);
        assert_eq!(nl.gate(all).kind, GateKind::And);
        let any = nl.at_least(1, [a, b]);
        assert_eq!(nl.gate(any).kind, GateKind::Or);
        let vote = nl.at_least(2, [a, b, c]);
        assert_eq!(nl.gate(vote).kind, GateKind::AtLeast(2));
    }

    #[test]
    fn no_output_is_an_error() {
        let nl = Netlist::new();
        assert_eq!(nl.output().unwrap_err(), NetlistError::NoOutput);
    }

    #[test]
    fn input_by_name_reuses_variables() {
        let mut nl = Netlist::new();
        let a1 = nl.input_by_name("a");
        let a2 = nl.input_by_name("a");
        let b = nl.input_by_name("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(nl.num_inputs(), 2);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", VarId(7)), "v7");
        let err = NetlistError::AssignmentLength { got: 2, expected: 3 };
        assert!(format!("{err}").contains("expected 3"));
    }

    #[test]
    fn import_substitutes_inputs() {
        // Source: F = (x1 AND x2) OR x3.
        let mut src = Netlist::new();
        let x1 = src.input("x1");
        let x2 = src.input("x2");
        let x3 = src.input("x3");
        let a = src.and([x1, x2]);
        let f = src.or([a, x3]);
        src.set_output(f);

        // Destination: substitute x1 -> p AND q, x2 -> NOT p, x3 -> r.
        let mut dst = Netlist::new();
        let p = dst.input("p");
        let q = dst.input("q");
        let r = dst.input("r");
        let pq = dst.and([p, q]);
        let np = dst.not(p);
        let g = dst.import(&src, &[pq, np, r]);
        dst.set_output(g);

        for row in 0..8u32 {
            let pv = row & 1 == 1;
            let qv = row & 2 != 0;
            let rv = row & 4 != 0;
            // The expression mirrors the substituted netlist structure on
            // purpose, even though it simplifies to `rv`.
            #[allow(clippy::overly_complex_bool_expr)]
            let expect = ((pv && qv) && !pv) || rv;
            assert_eq!(dst.eval_output(&[pv, qv, rv]), expect, "row {row}");
        }
    }

    #[test]
    fn import_handles_all_gate_kinds() {
        let mut src = Netlist::new();
        let a = src.input("a");
        let b = src.input("b");
        let c = src.input("c");
        let v = src.at_least(2, [a, b, c]);
        let x = src.xor([a, c]);
        let k = src.constant(false);
        let n = src.not(b);
        let f = src.or([v, x, k, n]);
        src.set_output(f);

        let mut dst = Netlist::new();
        let p = dst.input("p");
        let q = dst.input("q");
        let r = dst.input("r");
        let g = dst.import(&src, &[p, q, r]);
        dst.set_output(g);
        assert_eq!(dst.truth_table(), src.truth_table());
    }

    #[test]
    #[should_panic]
    fn import_checks_substitution_length() {
        let mut src = Netlist::new();
        let a = src.input("a");
        src.set_output(a);
        let mut dst = Netlist::new();
        let _ = dst.import(&src, &[]);
    }

    #[test]
    fn arena_order_is_topological() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let g1 = nl.or([a, b]);
        let g2 = nl.not(g1);
        nl.set_output(g2);
        for (id, gate) in nl.iter() {
            for f in &gate.fanin {
                assert!(f.index() < id.index());
            }
        }
    }
}
