//! Gate kinds supported by the netlist representation.

use std::fmt;

/// The logical function computed by a netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// A primary input variable (leaf).
    Input,
    /// A boolean constant.
    Const(bool),
    /// Logical negation of a single fan-in.
    Not,
    /// Conjunction of all fan-ins (true for an empty fan-in).
    And,
    /// Disjunction of all fan-ins (false for an empty fan-in).
    Or,
    /// Exclusive-or (parity) of all fan-ins.
    Xor,
    /// True when at least `k` of the fan-ins are true ("k-of-n" voter).
    AtLeast(u32),
}

impl GateKind {
    /// Short lowercase mnemonic used by the textual netlist format and by
    /// `Display` implementations.
    pub fn mnemonic(&self) -> String {
        match self {
            GateKind::Input => "input".to_string(),
            GateKind::Const(true) => "const1".to_string(),
            GateKind::Const(false) => "const0".to_string(),
            GateKind::Not => "not".to_string(),
            GateKind::And => "and".to_string(),
            GateKind::Or => "or".to_string(),
            GateKind::Xor => "xor".to_string(),
            GateKind::AtLeast(k) => format!("atleast{k}"),
        }
    }

    /// Whether this node kind carries fan-ins (everything except inputs and
    /// constants).
    pub fn has_fanin(&self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Const(_))
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A node of the netlist: its [`GateKind`] plus the ordered list of fan-in
/// node identifiers. Fan-in order is semantically irrelevant for the gate
/// function but **is** preserved, because the variable-ordering heuristics
/// of the paper (topology, weight, H4) are sensitive to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The logical function of the node.
    pub kind: GateKind,
    /// Fan-in node identifiers, in declaration order.
    pub fanin: Vec<crate::netlist::NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(GateKind::And.mnemonic(), "and");
        assert_eq!(GateKind::Const(true).mnemonic(), "const1");
        assert_eq!(GateKind::Const(false).mnemonic(), "const0");
        assert_eq!(GateKind::AtLeast(3).mnemonic(), "atleast3");
        assert_eq!(format!("{}", GateKind::Xor), "xor");
    }

    #[test]
    fn fanin_classification() {
        assert!(!GateKind::Input.has_fanin());
        assert!(!GateKind::Const(true).has_fanin());
        assert!(GateKind::Not.has_fanin());
        assert!(GateKind::AtLeast(2).has_fanin());
    }
}
