//! Structural traversals of a netlist.
//!
//! These are the building blocks of the paper's variable-ordering
//! heuristics: depth-first left-most input orders, cone supports, fan-out
//! counts and weights. They are also used by the decision-diagram builders
//! to process gates in dependency order.

use std::collections::HashSet;

use crate::netlist::{Netlist, NodeId, VarId};

impl Netlist {
    /// Nodes in the transitive fan-in cone of `root` (including `root`),
    /// in arena (topological) order.
    pub fn cone(&self, root: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.len()];
        in_cone[root.index()] = true;
        // Walk the arena backwards: a node is in the cone if some marked node lists it as fan-in.
        for idx in (0..=root.index()).rev() {
            if in_cone[idx] {
                for f in &self.nodes_fanin(NodeId(idx as u32)) {
                    in_cone[f.index()] = true;
                }
            }
        }
        (0..self.len()).filter(|&i| in_cone[i]).map(|i| NodeId(i as u32)).collect()
    }

    fn nodes_fanin(&self, id: NodeId) -> Vec<NodeId> {
        self.gate(id).fanin.clone()
    }

    /// The set of input variables in the transitive fan-in cone of `root`.
    pub fn support(&self, root: NodeId) -> Vec<VarId> {
        let mut vars: Vec<VarId> =
            self.cone(root).into_iter().filter_map(|id| self.var_of(id)).collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Depth-first, left-most traversal from `root`, returning input
    /// variables in the order they are first encountered. This is exactly
    /// the "topology" ordering heuristic of the paper when applied to the
    /// output node.
    pub fn dfs_input_order(&self, root: NodeId) -> Vec<VarId> {
        self.dfs_input_order_with(root, |_, fanin| fanin.to_vec())
    }

    /// Depth-first, left-most traversal where the fan-in of every gate is
    /// re-ordered by `reorder` before being descended into. `reorder`
    /// receives the gate node id and its fan-in list and must return a
    /// permutation of that list. This is the hook used by the *weight* and
    /// *H4* heuristics.
    pub fn dfs_input_order_with<R>(&self, root: NodeId, mut reorder: R) -> Vec<VarId>
    where
        R: FnMut(NodeId, &[NodeId]) -> Vec<NodeId>,
    {
        let mut visited: HashSet<NodeId> = HashSet::new();
        let mut order = Vec::new();
        // Explicit stack of (node, prepared-children, next-child-index).
        enum Frame {
            Enter(NodeId),
            Visit { children: Vec<NodeId>, next: usize },
        }
        let mut stack = vec![Frame::Enter(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(id) => {
                    if !visited.insert(id) {
                        continue;
                    }
                    if let Some(var) = self.var_of(id) {
                        order.push(var);
                        continue;
                    }
                    let gate = self.gate(id);
                    if !gate.kind.has_fanin() {
                        continue;
                    }
                    let children = reorder(id, &gate.fanin);
                    debug_assert_eq!(children.len(), gate.fanin.len());
                    stack.push(Frame::Visit { children, next: 0 });
                }
                Frame::Visit { children, next } => {
                    if next < children.len() {
                        let child = children[next];
                        stack.push(Frame::Visit { children, next: next + 1 });
                        stack.push(Frame::Enter(child));
                    }
                }
            }
        }
        order
    }

    /// Number of gates that list each node in their fan-in (fan-out count),
    /// indexed by node id. The designated output is not counted as fan-out.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.len()];
        for (_, gate) in self.iter() {
            for f in &gate.fanin {
                counts[f.index()] += 1;
            }
        }
        counts
    }

    /// Logic depth of every node (inputs and constants have depth 0, a gate
    /// has depth `1 + max(depth of fan-ins)`).
    pub fn depths(&self) -> Vec<usize> {
        let mut depths = vec![0usize; self.len()];
        for (id, gate) in self.iter() {
            if gate.kind.has_fanin() {
                depths[id.index()] =
                    1 + gate.fanin.iter().map(|f| depths[f.index()]).max().unwrap_or(0);
            }
        }
        depths
    }

    /// Logic depth of the designated output, or 0 when there is none.
    pub fn depth(&self) -> usize {
        match self.output() {
            Ok(out) => self.depths()[out.index()],
            Err(_) => 0,
        }
    }

    /// The *weight* of every node as defined by the weight heuristic of the
    /// paper (Minato et al.): inputs and constants weigh 1, and every gate
    /// weighs the sum of the weights of its fan-ins.
    pub fn weights(&self) -> Vec<u64> {
        let mut weights = vec![1u64; self.len()];
        for (id, gate) in self.iter() {
            if gate.kind.has_fanin() {
                weights[id.index()] =
                    gate.fanin.iter().map(|f| weights[f.index()]).sum::<u64>().max(1);
            }
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// F = (a AND b) OR (c AND (a XOR d))
    fn example() -> (Netlist, [NodeId; 4]) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let d = nl.input("d");
        let g1 = nl.and([a, b]);
        let g2 = nl.xor([a, d]);
        let g3 = nl.and([c, g2]);
        let f = nl.or([g1, g3]);
        nl.set_output(f);
        (nl, [a, b, c, d])
    }

    #[test]
    fn support_and_cone() {
        let (nl, [a, b, _c, _d]) = example();
        let out = nl.output().unwrap();
        let support = nl.support(out);
        assert_eq!(support.len(), 4);
        // Cone of the first AND gate only contains a and b.
        let g1 = NodeId(4);
        let s1 = nl.support(g1);
        assert_eq!(s1, vec![nl.var_of(a).unwrap(), nl.var_of(b).unwrap()]);
        assert_eq!(nl.cone(g1).len(), 3);
    }

    #[test]
    fn dfs_order_is_leftmost() {
        let (nl, _) = example();
        let out = nl.output().unwrap();
        let order = nl.dfs_input_order(out);
        let names: Vec<&str> = order.iter().map(|v| nl.var_name(*v)).collect();
        // OR(AND(a,b), AND(c, XOR(a,d))) visited left-most: a, b, c, (a already seen), d
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn dfs_order_with_reversal() {
        let (nl, _) = example();
        let out = nl.output().unwrap();
        let order = nl.dfs_input_order_with(out, |_, fanin| {
            let mut v = fanin.to_vec();
            v.reverse();
            v
        });
        let names: Vec<&str> = order.iter().map(|v| nl.var_name(*v)).collect();
        // Reversing every fan-in visits the right AND first, and inside it the XOR first.
        assert_eq!(names, vec!["d", "a", "c", "b"]);
    }

    #[test]
    fn weights_match_hand_computation() {
        let (nl, _) = example();
        let w = nl.weights();
        // inputs weigh 1; g1 = 2; g2 = 2; g3 = 3; output = 5
        assert_eq!(w[4], 2);
        assert_eq!(w[5], 2);
        assert_eq!(w[6], 3);
        assert_eq!(w[7], 5);
    }

    #[test]
    fn depths_and_fanout() {
        let (nl, [a, ..]) = example();
        let d = nl.depths();
        assert_eq!(d[a.index()], 0);
        assert_eq!(nl.depth(), 3);
        let fo = nl.fanout_counts();
        // `a` feeds both g1 and g2.
        assert_eq!(fo[a.index()], 2);
        // output feeds nothing.
        assert_eq!(fo[nl.output().unwrap().index()], 0);
    }

    #[test]
    fn depth_without_output_is_zero() {
        let mut nl = Netlist::new();
        nl.input("a");
        assert_eq!(nl.depth(), 0);
    }
}
