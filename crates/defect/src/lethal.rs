//! Mapping from the raw defect model to the lethal-defect model (Eq. 1).
//!
//! Only lethal defects matter to yield, and since not every defect is
//! lethal the lethal-defect count distribution `Q'` is shifted towards
//! smaller values compared to the raw count distribution `Q`. Analysing
//! `Q'` therefore gives better accuracy for the same truncation point `M`.
//!
//! Two routes are provided:
//!
//! * **Closed form** for negative binomial / Poisson defects
//!   ([`NegativeBinomial::thinned`](crate::NegativeBinomial::thinned),
//!   [`Poisson::thinned`](crate::Poisson::thinned)): the thinned
//!   distribution stays in the same family with mean `λ' = λ·P_L`.
//! * **Generic numeric mapping** ([`thin_empirical`]) implementing Eq. (1)
//!   directly for an arbitrary distribution: `Q'_k = Σ_{m ≥ k} Q_m ·
//!   C(m,k) · P_L^k (1 − P_L)^{m−k}`.

use crate::distribution::{DefectDistribution, Empirical};
use crate::error::DefectError;
use crate::math::binomial_pmf;

/// Applies the binomial thinning of Eq. (1) numerically to an arbitrary
/// defect distribution.
///
/// The raw distribution is truncated at the smallest `m_max` such that
/// `P(K <= m_max) >= 1 - tail_tolerance` (at most `hard_cap` terms), and
/// `Q'_k` is returned for `k = 0 .. k_len-1`.
///
/// # Errors
///
/// Returns an error if `p_l` is not in `(0, 1]`, if the tail mass cannot be
/// accumulated within `hard_cap` terms, or if the resulting probability
/// vector fails validation.
pub fn thin_empirical<D: DefectDistribution + ?Sized>(
    raw: &D,
    p_l: f64,
    k_len: usize,
    tail_tolerance: f64,
    hard_cap: usize,
) -> Result<Empirical, DefectError> {
    if !(p_l.is_finite() && p_l > 0.0 && p_l <= 1.0) {
        return Err(DefectError::InvalidProbability { name: "p_l", value: p_l });
    }
    let m_max = raw.quantile_upper(tail_tolerance, hard_cap)?;
    let mut out = vec![0.0f64; k_len.max(1)];
    for m in 0..=m_max {
        let qm = raw.pmf(m);
        if qm == 0.0 {
            continue;
        }
        for (k, slot) in out.iter_mut().enumerate() {
            if k > m {
                break;
            }
            *slot += qm * binomial_pmf(m, k, p_l);
        }
    }
    Empirical::new(out)
}

/// Convenience wrapper: thins `raw` by `p_l` and returns the lethal-defect
/// masses `Q'_0 .. Q'_{k_len-1}` with default tail handling (tolerance
/// `1e-12`, at most `100_000` raw terms).
///
/// # Errors
///
/// Same as [`thin_empirical`].
pub fn lethal_masses<D: DefectDistribution + ?Sized>(
    raw: &D,
    p_l: f64,
    k_len: usize,
) -> Result<Vec<f64>, DefectError> {
    Ok(thin_empirical(raw, p_l, k_len, 1e-12, 100_000)?.probabilities().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{NegativeBinomial, Poisson};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn generic_thinning_matches_negative_binomial_closed_form() {
        let raw = NegativeBinomial::new(2.0, 0.25).unwrap();
        let p_l = 0.5;
        let closed = raw.thinned(p_l).unwrap();
        let numeric = thin_empirical(&raw, p_l, 12, 1e-13, 200_000).unwrap();
        for k in 0..12 {
            assert!(
                close(closed.pmf(k), numeric.pmf(k), 1e-9),
                "k={k}: closed={} numeric={}",
                closed.pmf(k),
                numeric.pmf(k)
            );
        }
    }

    #[test]
    fn generic_thinning_matches_poisson_closed_form() {
        let raw = Poisson::new(3.0).unwrap();
        let p_l = 0.2;
        let closed = raw.thinned(p_l).unwrap();
        let numeric = thin_empirical(&raw, p_l, 10, 1e-13, 10_000).unwrap();
        for k in 0..10 {
            assert!(close(closed.pmf(k), numeric.pmf(k), 1e-10), "k={k}");
        }
    }

    #[test]
    fn thinning_with_p_l_one_is_identity() {
        let raw = Poisson::new(1.5).unwrap();
        let numeric = thin_empirical(&raw, 1.0, 8, 1e-13, 10_000).unwrap();
        for k in 0..8 {
            assert!(close(raw.pmf(k), numeric.pmf(k), 1e-12), "k={k}");
        }
    }

    #[test]
    fn thinning_of_point_mass() {
        // Exactly 3 raw defects, each lethal with probability 0.5 ⇒ Binomial(3, 0.5).
        let raw = Empirical::point_mass(3);
        let numeric = thin_empirical(&raw, 0.5, 5, 1e-13, 10).unwrap();
        let expect = [0.125, 0.375, 0.375, 0.125, 0.0];
        for (k, e) in expect.iter().enumerate() {
            assert!(close(numeric.pmf(k), *e, 1e-12), "k={k}");
        }
    }

    #[test]
    fn invalid_inputs_error() {
        let raw = Poisson::new(1.0).unwrap();
        assert!(thin_empirical(&raw, 0.0, 4, 1e-12, 100).is_err());
        assert!(thin_empirical(&raw, 1.2, 4, 1e-12, 100).is_err());
        // hard cap too small to reach the tail tolerance
        assert!(thin_empirical(&raw, 0.5, 4, 1e-12, 0).is_err());
    }

    #[test]
    fn lethal_masses_wrapper() {
        let raw = NegativeBinomial::new(1.0, 0.25).unwrap();
        let v = lethal_masses(&raw, 1.0, 6).unwrap();
        assert_eq!(v.len(), 6);
        for (k, p) in v.iter().enumerate() {
            assert!(close(*p, raw.pmf(k), 1e-10));
        }
    }
}
