//! Selection of the truncation point `M` and the associated error bound.
//!
//! The combinatorial method analyses only up to `M` lethal defects. The
//! resulting estimate `Y_M = Σ_{k ≤ M} Q'_k Y_k` underestimates the true
//! yield with an absolute error bounded by `1 − Σ_{k ≤ M} Q'_k`. Given an
//! error requirement `ε`, the paper selects
//!
//! ```text
//! M = min { m : Σ_{k=0}^m Q'_k >= 1 − ε }.
//! ```

use crate::distribution::DefectDistribution;
use crate::error::DefectError;

/// Default hard cap on the truncation search. The method's cost grows
/// quickly with `M`, so values anywhere near this cap are impractical
/// anyway; the cap only guards against non-terminating searches when the
/// requested `ε` is unattainably small.
pub const DEFAULT_MAX_TRUNCATION: usize = 4096;

/// The truncation point `M`, the lethal-defect masses `Q'_0..Q'_M`, and the
/// guaranteed absolute error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Truncation {
    truncation: usize,
    masses: Vec<f64>,
    error_bound: f64,
}

impl Truncation {
    /// The truncation point `M`.
    pub fn truncation(&self) -> usize {
        self.truncation
    }

    /// The lethal-defect probability masses `Q'_0 .. Q'_M`
    /// (length `M + 1`).
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// The guaranteed absolute error bound `1 − Σ_{k ≤ M} Q'_k` on the
    /// yield estimate (also the probability assigned to the "more than `M`
    /// lethal defects" value of the random variable `W`).
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// Probability vector of the clamped defect-count variable `W` used by
    /// the combinatorial method: `P(W = k) = Q'_k` for `k ≤ M` and
    /// `P(W = M + 1) = 1 − Σ_{k ≤ M} Q'_k` (length `M + 2`).
    pub fn w_distribution(&self) -> Vec<f64> {
        let mut v = self.masses.clone();
        v.push(self.error_bound);
        v
    }
}

/// Selects the truncation point for `lethal` (the **lethal**-defect count
/// distribution `Q'`) under the error requirement `epsilon`, searching up
/// to [`DEFAULT_MAX_TRUNCATION`].
///
/// # Errors
///
/// Returns [`DefectError::TruncationNotReached`] if even
/// [`DEFAULT_MAX_TRUNCATION`] lethal defects do not accumulate mass
/// `1 − ε`, and [`DefectError::InvalidProbability`] if `epsilon` is not in
/// `(0, 1)`.
pub fn select_truncation<D: DefectDistribution + ?Sized>(
    lethal: &D,
    epsilon: f64,
) -> Result<Truncation, DefectError> {
    select_truncation_capped(lethal, epsilon, DEFAULT_MAX_TRUNCATION)
}

/// Same as [`select_truncation`] but with an explicit search cap.
///
/// # Errors
///
/// See [`select_truncation`].
pub fn select_truncation_capped<D: DefectDistribution + ?Sized>(
    lethal: &D,
    epsilon: f64,
    max_truncation: usize,
) -> Result<Truncation, DefectError> {
    if !(epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0) {
        return Err(DefectError::InvalidProbability { name: "epsilon", value: epsilon });
    }
    let mut masses = Vec::new();
    let mut acc = 0.0;
    for m in 0..=max_truncation {
        let q = lethal.pmf(m);
        masses.push(q);
        acc += q;
        if acc >= 1.0 - epsilon {
            return Ok(Truncation { truncation: m, masses, error_bound: (1.0 - acc).max(0.0) });
        }
    }
    Err(DefectError::TruncationNotReached {
        epsilon,
        max_defects: max_truncation,
        accumulated: acc,
    })
}

/// Builds a [`Truncation`] at a *fixed*, user-chosen `M` (no error target),
/// reporting whatever error bound results. Useful for reproducing paper
/// rows at their published truncation points and for ablation studies.
///
/// # Errors
///
/// This function does not fail for valid distributions; the `Result` is
/// kept for signature uniformity with [`select_truncation`].
pub fn truncate_at<D: DefectDistribution + ?Sized>(
    lethal: &D,
    truncation: usize,
) -> Result<Truncation, DefectError> {
    let masses: Vec<f64> = (0..=truncation).map(|k| lethal.pmf(k)).collect();
    let acc: f64 = masses.iter().sum();
    Ok(Truncation { truncation, masses, error_bound: (1.0 - acc).max(0.0) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{Empirical, NegativeBinomial, Poisson};

    #[test]
    fn truncation_meets_error_requirement() {
        let d = NegativeBinomial::new(1.0, 0.25).unwrap();
        let t = select_truncation(&d, 1e-4).unwrap();
        assert!(t.error_bound() <= 1e-4);
        assert_eq!(t.masses().len(), t.truncation() + 1);
        // Minimality: one fewer term violates the requirement.
        let cum: f64 = t.masses()[..t.truncation()].iter().sum();
        assert!(1.0 - cum > 1e-4);
    }

    #[test]
    fn truncation_grows_with_lambda() {
        let d1 = NegativeBinomial::new(1.0, 0.25).unwrap();
        let d2 = NegativeBinomial::new(2.0, 0.25).unwrap();
        let t1 = select_truncation(&d1, 1e-4).unwrap();
        let t2 = select_truncation(&d2, 1e-4).unwrap();
        assert!(t2.truncation() > t1.truncation());
    }

    #[test]
    fn truncation_grows_as_epsilon_shrinks() {
        let d = Poisson::new(1.0).unwrap();
        let loose = select_truncation(&d, 1e-2).unwrap();
        let tight = select_truncation(&d, 1e-8).unwrap();
        assert!(tight.truncation() > loose.truncation());
    }

    #[test]
    fn w_distribution_sums_to_one() {
        let d = NegativeBinomial::new(2.0, 0.25).unwrap();
        let t = select_truncation(&d, 1e-3).unwrap();
        let total: f64 = t.w_distribution().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(t.w_distribution().len(), t.truncation() + 2);
    }

    #[test]
    fn invalid_epsilon() {
        let d = Poisson::new(1.0).unwrap();
        assert!(select_truncation(&d, 0.0).is_err());
        assert!(select_truncation(&d, 1.0).is_err());
        assert!(select_truncation(&d, f64::NAN).is_err());
    }

    #[test]
    fn cap_is_respected() {
        let d = Poisson::new(50.0).unwrap();
        assert!(select_truncation_capped(&d, 1e-6, 3).is_err());
    }

    #[test]
    fn point_mass_truncation() {
        let d = Empirical::point_mass(4);
        let t = select_truncation(&d, 1e-9).unwrap();
        assert_eq!(t.truncation(), 4);
        assert_eq!(t.error_bound(), 0.0);
    }

    /// Independent scan for `min{m : Σ_{k≤m} Q'_k ≥ 1 − ε}`, the paper's
    /// definition of the truncation point.
    fn minimal_truncation<D: DefectDistribution>(d: &D, epsilon: f64) -> usize {
        let mut acc = 0.0;
        for m in 0..DEFAULT_MAX_TRUNCATION {
            acc += d.pmf(m);
            if acc >= 1.0 - epsilon {
                return m;
            }
        }
        panic!("mass 1 - ε not reached within the default cap");
    }

    #[test]
    fn poisson_truncation_matches_definition() {
        for &lambda in &[0.3, 1.0, 2.5] {
            for &epsilon in &[1e-2, 1e-4, 1e-6] {
                let d = Poisson::new(lambda).unwrap();
                let t = select_truncation(&d, epsilon).unwrap();
                assert_eq!(
                    t.truncation(),
                    minimal_truncation(&d, epsilon),
                    "λ={lambda} ε={epsilon}"
                );
                for (k, &q) in t.masses().iter().enumerate() {
                    assert!((q - d.pmf(k)).abs() < 1e-15, "mass Q'_{k} differs from the pmf");
                }
                let acc: f64 = t.masses().iter().sum();
                assert!((t.error_bound() - (1.0 - acc).max(0.0)).abs() < 1e-12);
                assert!(t.error_bound() <= epsilon);
            }
        }
    }

    #[test]
    fn negative_binomial_truncation_matches_definition() {
        for &(lambda, alpha) in &[(0.5, 0.25), (1.0, 4.0), (2.0, 1.0)] {
            for &epsilon in &[1e-2, 1e-4, 1e-6] {
                let d = NegativeBinomial::new(lambda, alpha).unwrap();
                let t = select_truncation(&d, epsilon).unwrap();
                assert_eq!(
                    t.truncation(),
                    minimal_truncation(&d, epsilon),
                    "λ={lambda} α={alpha} ε={epsilon}"
                );
                for (k, &q) in t.masses().iter().enumerate() {
                    assert!((q - d.pmf(k)).abs() < 1e-15, "mass Q'_{k} differs from the pmf");
                }
                assert!(t.error_bound() <= epsilon);
            }
        }
    }

    #[test]
    fn reproduces_paper_truncation_points() {
        // Table 4 uses α = 4 and ε = 1e-3 and reports M = 6 for λ' = 1 and
        // M = 10 for λ' = 2.
        let t1 = select_truncation(&NegativeBinomial::new(1.0, 4.0).unwrap(), 1e-3).unwrap();
        assert_eq!(t1.truncation(), 6);
        let t2 = select_truncation(&NegativeBinomial::new(2.0, 4.0).unwrap(), 1e-3).unwrap();
        assert_eq!(t2.truncation(), 10);
    }

    #[test]
    fn fixed_truncation() {
        let d = Poisson::new(1.0).unwrap();
        let t = truncate_at(&d, 2).unwrap();
        assert_eq!(t.truncation(), 2);
        assert!((t.error_bound() - (1.0 - d.cdf(2))).abs() < 1e-12);
    }
}
