//! Small numeric helpers (log-gamma, log-binomial) used by the
//! distribution implementations.
//!
//! The standard library does not expose `lgamma`, so a Lanczos
//! approximation is implemented here. Accuracy is better than `1e-12`
//! relative error over the range used by the yield models (arguments far
//! below `1e6`), which is ample for probability-mass computations.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients).
///
/// # Panics
///
/// Panics if `x` is not finite or is `<= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires a finite positive argument, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    // Published full-precision values; f64 rounds the excess digits.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the factorial `ln(k!)`.
pub fn ln_factorial(k: usize) -> f64 {
    ln_gamma(k as f64 + 1.0)
}

/// Natural logarithm of the binomial coefficient `ln C(n, k)`.
///
/// Returns negative infinity when `k > n` (the coefficient is zero).
pub fn ln_binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial probability-mass function `C(n,k) p^k (1-p)^(n-k)` computed in
/// log-space for numerical robustness.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_binomial(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let mut fact = 1.0f64;
        for n in 1..=20usize {
            fact *= n as f64;
            assert!(
                close(ln_gamma(n as f64 + 1.0), fact.ln(), 1e-12),
                "ln_gamma({}) mismatch",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        assert!(close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12));
        // Γ(3/2) = sqrt(π)/2
        assert!(close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.1, 0.7, 1.3, 2.9, 10.6, 123.4] {
            assert!(close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11), "recurrence at {x}");
        }
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn binomial_coefficients() {
        assert!(close(ln_binomial(10, 3).exp(), 120.0, 1e-10));
        assert!(close(ln_binomial(52, 5).exp(), 2_598_960.0, 1e-9));
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &p in &[0.0, 0.2, 0.5, 0.9, 1.0] {
            let total: f64 = (0..=25).map(|k| binomial_pmf(25, k, p)).sum();
            assert!(close(total, 1.0, 1e-12), "p = {p}");
        }
    }

    #[test]
    fn binomial_pmf_edge_cases() {
        assert_eq!(binomial_pmf(5, 6, 0.3), 0.0);
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
    }
}
