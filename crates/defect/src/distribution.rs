//! Distributions of the number of manufacturing defects on a chip.
//!
//! The paper's model is parameterised by an arbitrary distribution
//! `Q_k = P(number of defects = k)`. The negative binomial distribution
//! (Eq. 2 of the paper) is the reference case used by all experiments; a
//! Poisson distribution and an arbitrary empirical distribution are also
//! provided. All distributions are *compound-Poisson-compatible* in the
//! sense used by the paper: thinning each defect independently with
//! probability `P_L` yields the lethal-defect distribution.

use crate::error::DefectError;
use crate::math::{ln_factorial, ln_gamma};

/// A discrete distribution over the number of manufacturing defects.
///
/// Implementors provide the probability-mass function `Q_k`; everything
/// else (CDF, truncated mass vectors, mean estimates) is derived.
pub trait DefectDistribution {
    /// Probability that exactly `k` defects are produced, `Q_k`.
    fn pmf(&self, k: usize) -> f64;

    /// Expected number of defects, if finite and known in closed form.
    fn mean(&self) -> Option<f64>;

    /// Cumulative probability `P(K <= k)`.
    fn cdf(&self, k: usize) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum()
    }

    /// The first `len` probability masses `Q_0 .. Q_{len-1}` as a vector.
    fn masses(&self, len: usize) -> Vec<f64> {
        (0..len).map(|k| self.pmf(k)).collect()
    }

    /// Smallest `m` such that `P(K <= m) >= 1 - epsilon`, bounded by
    /// `max_defects`.
    ///
    /// # Errors
    ///
    /// Returns [`DefectError::TruncationNotReached`] if the requested mass is
    /// not accumulated within `max_defects` terms.
    fn quantile_upper(&self, epsilon: f64, max_defects: usize) -> Result<usize, DefectError> {
        let mut acc = 0.0;
        for m in 0..=max_defects {
            acc += self.pmf(m);
            if acc >= 1.0 - epsilon {
                return Ok(m);
            }
        }
        Err(DefectError::TruncationNotReached { epsilon, max_defects, accumulated: acc })
    }
}

/// The negative binomial distribution of Eq. (2) of the paper:
///
/// ```text
/// Q_k = Γ(α + k) / (k! Γ(α)) · (λ/α)^k / (1 + λ/α)^(α + k)
/// ```
///
/// `λ` is the expected number of defects and `α` the clustering parameter
/// (clustering increases as `α` decreases). This is the "widely used"
/// defect model referenced throughout the yield literature the paper cites
/// (Koren, Stapper et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomial {
    lambda: f64,
    alpha: f64,
}

impl NegativeBinomial {
    /// Creates a negative binomial defect distribution with mean `lambda`
    /// and clustering parameter `alpha`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not strictly positive or not
    /// finite.
    pub fn new(lambda: f64, alpha: f64) -> Result<Self, DefectError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DefectError::NonPositiveParameter { name: "lambda", value: lambda });
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(DefectError::NonPositiveParameter { name: "alpha", value: alpha });
        }
        Ok(Self { lambda, alpha })
    }

    /// Expected number of defects `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Clustering parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The lethal-defect distribution obtained by thinning every defect
    /// independently with probability `p_l`.
    ///
    /// As shown by Koren, Koren and Stapper (cited as \[15\] in the paper),
    /// the result is again negative binomial with the *same* clustering
    /// parameter and mean `λ' = λ·p_l`.
    ///
    /// # Errors
    ///
    /// Returns an error if `p_l` is not in `(0, 1]`.
    pub fn thinned(&self, p_l: f64) -> Result<Self, DefectError> {
        if !(p_l.is_finite() && p_l > 0.0 && p_l <= 1.0) {
            return Err(DefectError::InvalidProbability { name: "p_l", value: p_l });
        }
        Self::new(self.lambda * p_l, self.alpha)
    }
}

impl DefectDistribution for NegativeBinomial {
    fn pmf(&self, k: usize) -> f64 {
        let a = self.alpha;
        let r = self.lambda / a;
        let kf = k as f64;
        let ln = ln_gamma(a + kf) - ln_factorial(k) - ln_gamma(a) + kf * r.ln()
            - (a + kf) * (1.0 + r).ln();
        ln.exp()
    }

    fn mean(&self) -> Option<f64> {
        Some(self.lambda)
    }
}

/// Poisson distribution of the number of defects (the `α → ∞` limit of the
/// negative binomial, i.e. no clustering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson defect distribution with mean `lambda`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lambda` is not strictly positive or not finite.
    pub fn new(lambda: f64) -> Result<Self, DefectError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DefectError::NonPositiveParameter { name: "lambda", value: lambda });
        }
        Ok(Self { lambda })
    }

    /// Expected number of defects `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The lethal-defect distribution obtained by thinning every defect
    /// independently with probability `p_l`: Poisson with mean `λ·p_l`.
    ///
    /// # Errors
    ///
    /// Returns an error if `p_l` is not in `(0, 1]`.
    pub fn thinned(&self, p_l: f64) -> Result<Self, DefectError> {
        if !(p_l.is_finite() && p_l > 0.0 && p_l <= 1.0) {
            return Err(DefectError::InvalidProbability { name: "p_l", value: p_l });
        }
        Self::new(self.lambda * p_l)
    }
}

impl DefectDistribution for Poisson {
    fn pmf(&self, k: usize) -> f64 {
        let kf = k as f64;
        (-self.lambda + kf * self.lambda.ln() - ln_factorial(k)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some(self.lambda)
    }
}

/// An arbitrary (finitely supported) distribution of the number of defects,
/// e.g. measured fab data supplied by a manufacturer, or the output of the
/// generic lethal-defect mapping of [`crate::lethal::thin_empirical`].
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// `probs[k]` is `Q_k`; any mass beyond the last entry is implicitly zero.
    probs: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from `Q_0, Q_1, ...`.
    ///
    /// The mass may sum to slightly less than one (the remainder is treated
    /// as mass on "more defects than represented", which is exactly the
    /// role it plays in the truncated yield computation).
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty, contains values outside
    /// `[0, 1]`, or has total mass outside `(0, 1 + 1e-9]`.
    pub fn new(probs: Vec<f64>) -> Result<Self, DefectError> {
        if probs.is_empty() {
            return Err(DefectError::EmptyDistribution);
        }
        for (k, &p) in probs.iter().enumerate() {
            if !(p.is_finite() && (0.0..=1.0 + 1e-12).contains(&p)) {
                return Err(DefectError::InvalidProbability {
                    name: if k == 0 { "probs[0]" } else { "probs[k]" },
                    value: p,
                });
            }
        }
        let total: f64 = probs.iter().sum();
        if !(total > 0.0 && total <= 1.0 + 1e-9) {
            return Err(DefectError::InvalidMass { total });
        }
        Ok(Self { probs })
    }

    /// Creates a distribution placing all of its mass on exactly `k` defects.
    pub fn point_mass(k: usize) -> Self {
        let mut probs = vec![0.0; k + 1];
        probs[k] = 1.0;
        Self { probs }
    }

    /// The underlying probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Number of explicitly represented probability entries.
    pub fn support_len(&self) -> usize {
        self.probs.len()
    }
}

impl DefectDistribution for Empirical {
    fn pmf(&self, k: usize) -> f64 {
        self.probs.get(k).copied().unwrap_or(0.0)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.probs.iter().enumerate().map(|(k, p)| k as f64 * p).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn negative_binomial_rejects_bad_parameters() {
        assert!(NegativeBinomial::new(0.0, 1.0).is_err());
        assert!(NegativeBinomial::new(1.0, 0.0).is_err());
        assert!(NegativeBinomial::new(-1.0, 2.0).is_err());
        assert!(NegativeBinomial::new(f64::NAN, 2.0).is_err());
        assert!(NegativeBinomial::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn negative_binomial_mass_sums_to_one() {
        for &(l, a) in &[(0.5, 0.25), (1.0, 0.25), (2.0, 0.25), (2.0, 2.0), (5.0, 10.0)] {
            let d = NegativeBinomial::new(l, a).unwrap();
            let total: f64 = (0..2000).map(|k| d.pmf(k)).sum();
            assert!(close(total, 1.0, 1e-9), "λ={l} α={a} total={total}");
        }
    }

    #[test]
    fn negative_binomial_mean_matches_lambda() {
        let d = NegativeBinomial::new(1.7, 0.4).unwrap();
        let est: f64 = (0..5000).map(|k| k as f64 * d.pmf(k)).sum();
        assert!(close(est, 1.7, 1e-6));
        assert_eq!(d.mean(), Some(1.7));
    }

    #[test]
    fn negative_binomial_q0_closed_form() {
        // Q_0 = (1 + λ/α)^(-α)
        let d = NegativeBinomial::new(2.0, 0.25).unwrap();
        assert!(close(d.pmf(0), (1.0f64 + 8.0).powf(-0.25), 1e-12));
    }

    #[test]
    fn negative_binomial_thinning_matches_generic_binomial_thinning() {
        // Thinning each defect with probability p should yield NB(λ p, α).
        let d = NegativeBinomial::new(2.0, 0.25).unwrap();
        let p = 0.3;
        let thinned = d.thinned(p).unwrap();
        // Compare against the explicit sum Q'_k = Σ_m Q_m C(m,k) p^k (1-p)^{m-k}.
        for k in 0..10 {
            let explicit: f64 =
                (k..1500).map(|m| d.pmf(m) * crate::math::binomial_pmf(m, k, p)).sum();
            assert!(
                close(thinned.pmf(k), explicit, 1e-9),
                "k={k}: closed={} explicit={}",
                thinned.pmf(k),
                explicit
            );
        }
    }

    #[test]
    fn poisson_mass_and_mean() {
        let d = Poisson::new(3.0).unwrap();
        let total: f64 = (0..200).map(|k| d.pmf(k)).sum();
        assert!(close(total, 1.0, 1e-12));
        assert!(close(d.pmf(0), (-3.0f64).exp(), 1e-12));
        assert_eq!(d.mean(), Some(3.0));
        assert!(Poisson::new(0.0).is_err());
    }

    #[test]
    fn poisson_thinning() {
        let d = Poisson::new(4.0).unwrap();
        let t = d.thinned(0.25).unwrap();
        assert!(close(t.lambda(), 1.0, 1e-15));
        assert!(d.thinned(0.0).is_err());
        assert!(d.thinned(1.5).is_err());
    }

    #[test]
    fn poisson_is_limit_of_negative_binomial() {
        let p = Poisson::new(1.0).unwrap();
        let nb = NegativeBinomial::new(1.0, 1e6).unwrap();
        for k in 0..10 {
            assert!(close(p.pmf(k), nb.pmf(k), 1e-5), "k={k}");
        }
    }

    #[test]
    fn empirical_basic() {
        let d = Empirical::new(vec![0.5, 0.3, 0.2]).unwrap();
        assert_eq!(d.pmf(1), 0.3);
        assert_eq!(d.pmf(7), 0.0);
        assert!(close(d.mean().unwrap(), 0.7, 1e-15));
        assert!(close(d.cdf(1), 0.8, 1e-15));
        assert_eq!(d.support_len(), 3);
    }

    #[test]
    fn empirical_validation() {
        assert!(Empirical::new(vec![]).is_err());
        assert!(Empirical::new(vec![0.5, 0.7]).is_err());
        assert!(Empirical::new(vec![-0.1, 0.5]).is_err());
        assert!(Empirical::new(vec![0.0, 0.0]).is_err());
        // Sub-stochastic vectors are allowed (deficit = "more defects").
        assert!(Empirical::new(vec![0.2, 0.3]).is_ok());
    }

    #[test]
    fn empirical_point_mass() {
        let d = Empirical::point_mass(3);
        assert_eq!(d.pmf(3), 1.0);
        assert_eq!(d.pmf(2), 0.0);
        assert_eq!(d.mean(), Some(3.0));
    }

    #[test]
    fn quantile_upper_works() {
        let d = Poisson::new(1.0).unwrap();
        let m = d.quantile_upper(1e-4, 100).unwrap();
        // P(K <= m) >= 1 - 1e-4 and the previous index does not satisfy it.
        assert!(d.cdf(m) >= 1.0 - 1e-4);
        assert!(m == 0 || d.cdf(m - 1) < 1.0 - 1e-4);
        // Unreachable bound errors out.
        assert!(d.quantile_upper(1e-12, 1).is_err());
    }

    #[test]
    fn masses_returns_prefix() {
        let d = Poisson::new(2.0).unwrap();
        let m = d.masses(4);
        assert_eq!(m.len(), 4);
        for (k, v) in m.iter().enumerate() {
            assert_eq!(*v, d.pmf(k));
        }
    }
}
