//! Error type for the defect-model crate.

use std::fmt;

/// Errors produced when constructing or manipulating defect models.
#[derive(Debug, Clone, PartialEq)]
pub enum DefectError {
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was supplied.
        value: f64,
    },
    /// A probability was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was supplied.
        value: f64,
    },
    /// A probability vector was empty.
    EmptyDistribution,
    /// The probabilities of an empirical distribution do not (approximately)
    /// sum to a value in `(0, 1]`.
    InvalidMass {
        /// Total probability mass found.
        total: f64,
    },
    /// The requested error bound cannot be met within the configured
    /// maximum truncation point.
    TruncationNotReached {
        /// Error requirement that was asked for.
        epsilon: f64,
        /// Maximum number of lethal defects that was examined.
        max_defects: usize,
        /// Probability mass accumulated up to `max_defects`.
        accumulated: f64,
    },
}

impl fmt::Display for DefectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be strictly positive, got {value}")
            }
            DefectError::InvalidProbability { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1], got {value}")
            }
            DefectError::EmptyDistribution => write!(f, "empirical distribution has no entries"),
            DefectError::InvalidMass { total } => {
                write!(f, "empirical distribution mass {total} is not in (0, 1 + tolerance]")
            }
            DefectError::TruncationNotReached { epsilon, max_defects, accumulated } => write!(
                f,
                "could not reach error bound {epsilon} within {max_defects} lethal defects \
                 (accumulated mass {accumulated})"
            ),
        }
    }
}

impl std::error::Error for DefectError {}
