//! Per-component defect-hit probabilities.
//!
//! The paper's model assigns to every component `i` a probability `P_i`
//! that a given manufacturing defect lands on component `i` **and** is
//! lethal. The sum `P_L = Σ_i P_i` is the probability that a given defect
//! is lethal at all, and the conditional probabilities `P'_i = P_i / P_L`
//! drive the lethal-defect model used by the combinatorial method.

use crate::error::DefectError;

/// Raw per-component lethal-hit probabilities `P_i` together with the
/// derived lethal-defect model quantities `P_L` and `P'_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentProbabilities {
    raw: Vec<f64>,
    lethality: f64,
    conditional: Vec<f64>,
}

impl ComponentProbabilities {
    /// Builds the component model from the raw probabilities `P_i`
    /// (indexed from component 0; the paper indexes components from 1).
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty, if any `P_i` is outside
    /// `[0, 1]`, or if the total `P_L` is not in `(0, 1]`.
    pub fn new(raw: Vec<f64>) -> Result<Self, DefectError> {
        if raw.is_empty() {
            return Err(DefectError::EmptyDistribution);
        }
        for &p in &raw {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(DefectError::InvalidProbability { name: "P_i", value: p });
            }
        }
        let lethality: f64 = raw.iter().sum();
        if !(lethality > 0.0 && lethality <= 1.0 + 1e-9) {
            return Err(DefectError::InvalidMass { total: lethality });
        }
        // Guard against tiny floating-point excess over 1 from the summation, so
        // that downstream thinning (which requires P_L ∈ (0, 1]) accepts the value.
        let lethality = lethality.min(1.0);
        let conditional = raw.iter().map(|p| p / lethality).collect();
        Ok(Self { raw, lethality, conditional })
    }

    /// Builds a component model from *relative weights* (e.g. relative
    /// component areas) scaled so that the overall lethality is `p_l`.
    ///
    /// This is how the paper's benchmarks specify their probabilities: area
    /// ratios such as `P_IPS / P_IPM` plus a global `P_L`.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty or contains negative /
    /// non-finite values, if all weights are zero, or if `p_l` is not in
    /// `(0, 1]`.
    pub fn from_weights(weights: &[f64], p_l: f64) -> Result<Self, DefectError> {
        if weights.is_empty() {
            return Err(DefectError::EmptyDistribution);
        }
        if !(p_l.is_finite() && p_l > 0.0 && p_l <= 1.0) {
            return Err(DefectError::InvalidProbability { name: "p_l", value: p_l });
        }
        for &w in weights {
            if !(w.is_finite() && w >= 0.0) {
                return Err(DefectError::InvalidProbability { name: "weight", value: w });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DefectError::InvalidMass { total });
        }
        let raw: Vec<f64> = weights.iter().map(|w| w / total * p_l).collect();
        Self::new(raw)
    }

    /// Number of components `C`.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True if the model has no components (never the case for a validated
    /// instance; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Raw probability `P_i` that a given defect is lethal on component `i`.
    pub fn raw(&self, i: usize) -> f64 {
        self.raw[i]
    }

    /// All raw probabilities `P_i`.
    pub fn raw_slice(&self) -> &[f64] {
        &self.raw
    }

    /// Probability `P_L = Σ_i P_i` that a given defect is lethal.
    pub fn lethality(&self) -> f64 {
        self.lethality
    }

    /// Conditional probability `P'_i = P_i / P_L` that a lethal defect hits
    /// component `i`.
    pub fn conditional(&self, i: usize) -> f64 {
        self.conditional[i]
    }

    /// All conditional probabilities `P'_i` (they sum to 1).
    pub fn conditional_slice(&self) -> &[f64] {
        &self.conditional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let c = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!((c.lethality() - 1.0).abs() < 1e-12);
        assert!((c.conditional(2) - 0.5).abs() < 1e-12);
        assert_eq!(c.raw(0), 0.2);
        assert_eq!(c.raw_slice().len(), 3);
    }

    #[test]
    fn partial_lethality() {
        let c = ComponentProbabilities::new(vec![0.1, 0.2]).unwrap();
        assert!((c.lethality() - 0.3).abs() < 1e-12);
        let cond: f64 = c.conditional_slice().iter().sum();
        assert!((cond - 1.0).abs() < 1e-12);
        assert!((c.conditional(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(ComponentProbabilities::new(vec![]).is_err());
        assert!(ComponentProbabilities::new(vec![0.0, 0.0]).is_err());
        assert!(ComponentProbabilities::new(vec![-0.1, 0.2]).is_err());
        assert!(ComponentProbabilities::new(vec![0.9, 0.9]).is_err());
        assert!(ComponentProbabilities::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn from_weights_scales_to_p_l() {
        // MS-style weights: IPM=1, IPS=0.5, CM=0.1 with P_L = 1.
        let c = ComponentProbabilities::from_weights(&[1.0, 0.5, 0.1], 1.0).unwrap();
        assert!((c.lethality() - 1.0).abs() < 1e-12);
        assert!((c.raw(0) / c.raw(1) - 2.0).abs() < 1e-12);
        assert!((c.raw(0) / c.raw(2) - 10.0).abs() < 1e-9);

        let half = ComponentProbabilities::from_weights(&[1.0, 1.0], 0.5).unwrap();
        assert!((half.lethality() - 0.5).abs() < 1e-12);
        assert!((half.raw(0) - 0.25).abs() < 1e-12);
        // Conditionals are unaffected by P_L.
        assert!((half.conditional(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_weights_validation() {
        assert!(ComponentProbabilities::from_weights(&[], 1.0).is_err());
        assert!(ComponentProbabilities::from_weights(&[1.0], 0.0).is_err());
        assert!(ComponentProbabilities::from_weights(&[1.0], 1.5).is_err());
        assert!(ComponentProbabilities::from_weights(&[0.0, 0.0], 1.0).is_err());
        assert!(ComponentProbabilities::from_weights(&[-1.0, 2.0], 1.0).is_err());
    }
}
