//! Manufacturing-defect models for yield analysis of systems-on-chip.
//!
//! This crate implements the probabilistic substrate of the DSN'03 paper
//! *"A Combinatorial Method for the Evaluation of Yield of Fault-Tolerant
//! Systems-on-Chip"*:
//!
//! * distributions of the **number of manufacturing defects** on a chip
//!   ([`NegativeBinomial`], [`Poisson`], [`Empirical`]), all behind the
//!   [`DefectDistribution`] trait;
//! * the mapping from the *raw* defect model `(Q_k, P_i)` to the
//!   computationally convenient **lethal-defect** model `(Q'_k, P'_i)`
//!   (module [`lethal`]);
//! * the selection of the **truncation point** `M` guaranteeing an absolute
//!   yield error below a user-supplied `ε` (module [`truncation`]);
//! * per-component lethal-defect probabilities ([`ComponentProbabilities`]).
//!
//! # Example
//!
//! ```
//! use socy_defect::{NegativeBinomial, DefectDistribution, ComponentProbabilities};
//! use socy_defect::truncation::select_truncation;
//!
//! // Negative-binomial defects, expected 1 defect per chip, clustering α = 0.25.
//! let defects = NegativeBinomial::new(1.0, 0.25)?;
//! // Three components with raw lethal-hit probabilities P_i.
//! let comps = ComponentProbabilities::new(vec![0.4, 0.4, 0.2])?;
//! // Lethal-defect distribution (still negative binomial, λ' = λ·P_L).
//! let lethal = defects.thinned(comps.lethality())?;
//! // Truncation point for a 1e-4 absolute error bound.
//! let m = select_truncation(&lethal, 1e-4)?;
//! assert!(m.truncation() >= 1);
//! # Ok::<(), socy_defect::DefectError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod distribution;
pub mod error;
pub mod lethal;
pub mod math;
pub mod truncation;

pub use component::ComponentProbabilities;
pub use distribution::{DefectDistribution, Empirical, NegativeBinomial, Poisson};
pub use error::DefectError;
pub use truncation::{select_truncation, Truncation};
