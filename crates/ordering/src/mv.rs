//! Combining a multiple-valued ordering with a bit-group ordering into the
//! concrete assignment of ROBDD levels to binary variables.

use socy_faulttree::{Netlist, VarId};

use crate::heuristic::{heuristic_input_order, BitHeuristic};
use crate::spec::{GroupOrdering, MvOrdering, OrderingError, OrderingSpec};

/// The binary variables encoding each multiple-valued variable of
/// `G(w, v_1, …, v_M)`.
///
/// Bits are listed most-significant-first inside every group; multiple-
/// valued variable index 0 is `w` and index `l` (1-based) is `v_l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvGroups {
    /// Bits encoding `w`, most significant first.
    pub w: Vec<VarId>,
    /// Bits encoding `v_1, …, v_M`, each most significant first.
    pub v: Vec<Vec<VarId>>,
}

impl MvGroups {
    /// Number of multiple-valued variables (`M + 1`).
    pub fn num_vars(&self) -> usize {
        1 + self.v.len()
    }

    /// The bit group of multiple-valued variable `index`
    /// (0 = `w`, `l` = `v_l`).
    pub fn group(&self, index: usize) -> &[VarId] {
        if index == 0 {
            &self.w
        } else {
            &self.v[index - 1]
        }
    }

    /// Total number of binary variables covered by the groups.
    pub fn num_bits(&self) -> usize {
        self.w.len() + self.v.iter().map(Vec::len).sum::<usize>()
    }
}

/// The result of applying an [`OrderingSpec`]: the order of the
/// multiple-valued variables plus the ROBDD level of every binary variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputedOrdering {
    /// Multiple-valued variable indices (0 = `w`, `l` = `v_l`) in diagram
    /// order: `mv_order[0]` is tested first.
    pub mv_order: Vec<usize>,
    /// `var_level[b]` is the ROBDD level assigned to binary variable `b`
    /// (indexed by [`VarId`]).
    pub var_level: Vec<usize>,
}

impl ComputedOrdering {
    /// Inverse of `var_level`: the binary variable placed at each level.
    pub fn level_var(&self) -> Vec<VarId> {
        let mut inv = vec![VarId::new(0); self.var_level.len()];
        for (var, &level) in self.var_level.iter().enumerate() {
            inv[level] = VarId::new(var);
        }
        inv
    }
}

/// Computes the multiple-valued variable order and binary-variable level
/// assignment for the binary-logic netlist of `G` under `spec`.
///
/// `netlist` is the gate-level description of `G` in binary logic (its
/// primary inputs are exactly the bits listed in `groups`).
///
/// # Errors
///
/// Returns [`OrderingError::IncompatibleCombination`] for spec combinations
/// the paper disallows and [`OrderingError::GroupsDoNotPartitionInputs`]
/// when `groups` does not cover every netlist input exactly once.
pub fn compute_ordering(
    netlist: &Netlist,
    groups: &MvGroups,
    spec: &OrderingSpec,
) -> Result<ComputedOrdering, OrderingError> {
    if !spec.is_allowed() {
        return Err(OrderingError::IncompatibleCombination { mv: spec.mv(), group: spec.group() });
    }
    let num_inputs = netlist.num_inputs();
    // Validate that the groups partition the inputs.
    let mut seen = vec![false; num_inputs];
    let mut covered = 0usize;
    for index in 0..groups.num_vars() {
        for var in groups.group(index) {
            if var.index() >= num_inputs || seen[var.index()] {
                return Err(OrderingError::GroupsDoNotPartitionInputs {
                    covered: groups.num_bits(),
                    inputs: num_inputs,
                });
            }
            seen[var.index()] = true;
            covered += 1;
        }
    }
    if covered != num_inputs {
        return Err(OrderingError::GroupsDoNotPartitionInputs { covered, inputs: num_inputs });
    }

    // Heuristic positions of the binary variables, when any part of the spec needs them.
    let heuristic = spec.mv().heuristic().or_else(|| spec.group().heuristic());
    let positions: Option<Vec<usize>> = heuristic.map(|h| bit_positions(netlist, h));

    let m = groups.v.len();
    let mv_order: Vec<usize> = match spec.mv() {
        MvOrdering::Wv => std::iter::once(0).chain(1..=m).collect(),
        MvOrdering::Wvr => std::iter::once(0).chain((1..=m).rev()).collect(),
        MvOrdering::Vw => (1..=m).chain(std::iter::once(0)).collect(),
        MvOrdering::Vrw => (1..=m).rev().chain(std::iter::once(0)).collect(),
        MvOrdering::Topology | MvOrdering::Weight | MvOrdering::H4 => {
            let positions = positions.as_ref().expect("heuristic positions were computed");
            let mut keyed: Vec<(f64, usize)> = (0..groups.num_vars())
                .map(|index| {
                    let group = groups.group(index);
                    let avg = group.iter().map(|v| positions[v.index()] as f64).sum::<f64>()
                        / group.len() as f64;
                    (avg, index)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            keyed.into_iter().map(|(_, index)| index).collect()
        }
    };

    // Assign levels group by group following the multiple-valued order.
    let mut var_level = vec![usize::MAX; num_inputs];
    let mut next_level = 0usize;
    for &mv in &mv_order {
        let group = groups.group(mv);
        let ordered: Vec<VarId> = match spec.group() {
            GroupOrdering::MsbFirst => group.to_vec(),
            GroupOrdering::LsbFirst => group.iter().rev().copied().collect(),
            GroupOrdering::Topology | GroupOrdering::Weight | GroupOrdering::H4 => {
                let positions = positions.as_ref().expect("heuristic positions were computed");
                let mut sorted = group.to_vec();
                sorted.sort_by_key(|v| positions[v.index()]);
                sorted
            }
        };
        for var in ordered {
            var_level[var.index()] = next_level;
            next_level += 1;
        }
    }
    debug_assert!(var_level.iter().all(|&l| l != usize::MAX));
    Ok(ComputedOrdering { mv_order, var_level })
}

/// Position of every binary variable in the order produced by `heuristic`.
fn bit_positions(netlist: &Netlist, heuristic: BitHeuristic) -> Vec<usize> {
    let order = heuristic_input_order(netlist, heuristic);
    let mut positions = vec![0usize; netlist.num_inputs()];
    for (pos, var) in order.iter().enumerate() {
        positions[var.index()] = pos;
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy "G" netlist: w is encoded on bits (w1, w0), v_1 and v_2 on one bit
    /// each; the function is or(and(w1, v1), and(w0, v2)).
    fn toy() -> (Netlist, MvGroups) {
        let mut nl = Netlist::new();
        let w1 = nl.input("w1");
        let w0 = nl.input("w0");
        let v1 = nl.input("v1");
        let v2 = nl.input("v2");
        let a = nl.and([w1, v1]);
        let b = nl.and([w0, v2]);
        let f = nl.or([a, b]);
        nl.set_output(f);
        let groups = MvGroups {
            w: vec![nl.var_of(w1).unwrap(), nl.var_of(w0).unwrap()],
            v: vec![vec![nl.var_of(v1).unwrap()], vec![nl.var_of(v2).unwrap()]],
        };
        (nl, groups)
    }

    #[test]
    fn group_accessors() {
        let (_, groups) = toy();
        assert_eq!(groups.num_vars(), 3);
        assert_eq!(groups.num_bits(), 4);
        assert_eq!(groups.group(0).len(), 2);
        assert_eq!(groups.group(2).len(), 1);
    }

    #[test]
    fn static_mv_orderings() {
        let (nl, groups) = toy();
        let check = |mv: MvOrdering, expect: Vec<usize>| {
            let spec = OrderingSpec::new(mv, GroupOrdering::MsbFirst).unwrap();
            let computed = compute_ordering(&nl, &groups, &spec).unwrap();
            assert_eq!(computed.mv_order, expect, "{mv:?}");
        };
        check(MvOrdering::Wv, vec![0, 1, 2]);
        check(MvOrdering::Wvr, vec![0, 2, 1]);
        check(MvOrdering::Vw, vec![1, 2, 0]);
        check(MvOrdering::Vrw, vec![2, 1, 0]);
    }

    #[test]
    fn level_assignment_msb_and_lsb() {
        let (nl, groups) = toy();
        // wv + ml: levels are w1, w0, v1, v2 → var_level = [0, 1, 2, 3].
        let spec = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).unwrap();
        let computed = compute_ordering(&nl, &groups, &spec).unwrap();
        assert_eq!(computed.var_level, vec![0, 1, 2, 3]);
        // wv + lm: the w group is reversed → w0 at level 0, w1 at level 1.
        let spec = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::LsbFirst).unwrap();
        let computed = compute_ordering(&nl, &groups, &spec).unwrap();
        assert_eq!(computed.var_level, vec![1, 0, 2, 3]);
        // Inverse mapping is consistent.
        let level_var = computed.level_var();
        assert_eq!(level_var[0], VarId::new(1));
        assert_eq!(level_var[1], VarId::new(0));
    }

    #[test]
    fn heuristic_mv_ordering_uses_average_positions() {
        let (nl, groups) = toy();
        // Topology order of the inputs is w1, v1, w0, v2 (positions 0,2,1,3).
        // Averages: w = (0 + 2)/2 = 1, v1 = 1? — careful: positions are w1:0, v1:1, w0:2, v2:3.
        // So w average = 1.0, v1 = 1.0, v2 = 3.0; tie between w and v1 is broken by index (w first).
        let spec = OrderingSpec::new(MvOrdering::Topology, GroupOrdering::MsbFirst).unwrap();
        let computed = compute_ordering(&nl, &groups, &spec).unwrap();
        assert_eq!(computed.mv_order, vec![0, 1, 2]);
        // Group ordering `t` sorts the w bits by their topology positions (w1 before w0 here,
        // same as ml for this netlist).
        let spec = OrderingSpec::new(MvOrdering::Topology, GroupOrdering::Topology).unwrap();
        let with_t = compute_ordering(&nl, &groups, &spec).unwrap();
        assert_eq!(with_t.var_level, computed.var_level);
    }

    #[test]
    fn heuristic_group_ordering_can_differ_from_msb() {
        // Make a netlist where the LSB of w is encountered first so that the
        // heuristic group order differs from ml.
        let mut nl = Netlist::new();
        let w1 = nl.input("w1");
        let w0 = nl.input("w0");
        let v1 = nl.input("v1");
        let a = nl.and([w0, v1]); // w0 encountered before w1
        let f = nl.or([a, w1]);
        nl.set_output(f);
        let groups = MvGroups {
            w: vec![nl.var_of(w1).unwrap(), nl.var_of(w0).unwrap()],
            v: vec![vec![nl.var_of(v1).unwrap()]],
        };
        let ml = compute_ordering(
            &nl,
            &groups,
            &OrderingSpec::new(MvOrdering::Topology, GroupOrdering::MsbFirst).unwrap(),
        )
        .unwrap();
        let t = compute_ordering(
            &nl,
            &groups,
            &OrderingSpec::new(MvOrdering::Topology, GroupOrdering::Topology).unwrap(),
        )
        .unwrap();
        assert_ne!(ml.var_level, t.var_level);
        // Under `t` the w0 bit must precede the w1 bit.
        assert!(t.var_level[w0.index()] < t.var_level[w1.index()]);
        let _ = (w1, w0, v1);
    }

    #[test]
    fn errors_for_bad_groups_and_specs() {
        let (nl, groups) = toy();
        // Incompatible spec.
        let bad_spec = OrderingSpec::Static(crate::spec::StaticOrdering {
            mv: MvOrdering::Wv,
            group: GroupOrdering::Weight,
        });
        assert!(matches!(
            compute_ordering(&nl, &groups, &bad_spec),
            Err(OrderingError::IncompatibleCombination { .. })
        ));
        // Groups missing a variable.
        let missing = MvGroups { w: groups.w.clone(), v: vec![groups.v[0].clone()] };
        let spec = OrderingSpec::paper_default();
        assert!(matches!(
            compute_ordering(&nl, &missing, &spec),
            Err(OrderingError::GroupsDoNotPartitionInputs { .. })
        ));
        // Groups with a duplicated variable.
        let dup = MvGroups { w: groups.w.clone(), v: vec![groups.w.clone(), groups.v[1].clone()] };
        assert!(matches!(
            compute_ordering(&nl, &dup, &spec),
            Err(OrderingError::GroupsDoNotPartitionInputs { .. })
        ));
    }

    #[test]
    fn levels_are_a_permutation() {
        let (nl, groups) = toy();
        for mv in MvOrdering::ALL {
            let spec = OrderingSpec::new(mv, GroupOrdering::MsbFirst).unwrap();
            let computed = compute_ordering(&nl, &groups, &spec).unwrap();
            let mut levels = computed.var_level.clone();
            levels.sort_unstable();
            assert_eq!(levels, vec![0, 1, 2, 3], "{mv:?}");
        }
    }
}
