//! Variable-ordering heuristics for the coded ROBDD / ROMDD of the
//! generalized fault tree.
//!
//! Decision-diagram sizes depend critically on the variable order. The
//! DSN'03 paper evaluates:
//!
//! * three **binary-variable heuristics** applied to the gate-level
//!   description of `G(w, v_1, …, v_M)` in binary logic —
//!   *topology* (depth-first left-most input order, Nikolskaia et al.),
//!   *weight* (Minato et al.) and *H4* (Bouissou et al.) — see
//!   [`BitHeuristic`] and [`heuristic_input_order`];
//! * seven **multiple-valued variable orderings** `wv`, `wvr`, `vw`,
//!   `vrw`, `t`, `w`, `h` (Table 2) — see [`MvOrdering`];
//! * five **bit-group orderings** within the group of binary variables
//!   encoding each multiple-valued variable: `ml`, `lm`, `t`, `w`, `h`
//!   (Table 3) — see [`GroupOrdering`].
//!
//! [`compute_ordering`] combines a multiple-valued ordering and a group
//! ordering (an [`OrderingSpec`]) into the final assignment of ROBDD
//! levels to binary variables, the object the BDD builder consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heuristic;
pub mod mv;
pub mod spec;

pub use heuristic::{heuristic_input_order, BitHeuristic};
pub use mv::{compute_ordering, ComputedOrdering, MvGroups};
pub use spec::{
    GroupOrdering, MvOrdering, OrderingError, OrderingSpec, StaticOrdering, DEFAULT_SIFT_MAX_GROWTH,
};
