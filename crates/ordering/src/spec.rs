//! Ordering specifications: the named multiple-valued variable orderings
//! and bit-group orderings of the paper, plus validity rules for their
//! combinations.

use std::fmt;

use crate::heuristic::BitHeuristic;

/// Orderings of the multiple-valued variables `w, v_1, …, v_M`
/// (Section 2 / Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MvOrdering {
    /// `w, v_1, …, v_M`.
    Wv,
    /// `w, v_M, …, v_1`.
    Wvr,
    /// `v_1, …, v_M, w`.
    Vw,
    /// `v_M, …, v_1, w`.
    Vrw,
    /// Heuristic ordering derived from the *topology* heuristic on the
    /// binary-logic gate description of `G`.
    Topology,
    /// Heuristic ordering derived from the *weight* heuristic.
    Weight,
    /// Heuristic ordering derived from the *H4* heuristic.
    H4,
}

impl MvOrdering {
    /// All seven orderings in the order used by Table 2.
    pub const ALL: [MvOrdering; 7] = [
        MvOrdering::Wv,
        MvOrdering::Wvr,
        MvOrdering::Vw,
        MvOrdering::Vrw,
        MvOrdering::Topology,
        MvOrdering::Weight,
        MvOrdering::H4,
    ];

    /// Mnemonic used by the paper's tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            MvOrdering::Wv => "wv",
            MvOrdering::Wvr => "wvr",
            MvOrdering::Vw => "vw",
            MvOrdering::Vrw => "vrw",
            MvOrdering::Topology => "t",
            MvOrdering::Weight => "w",
            MvOrdering::H4 => "h",
        }
    }

    /// The binary-variable heuristic this ordering is based on, if any.
    pub fn heuristic(&self) -> Option<BitHeuristic> {
        match self {
            MvOrdering::Topology => Some(BitHeuristic::Topology),
            MvOrdering::Weight => Some(BitHeuristic::Weight),
            MvOrdering::H4 => Some(BitHeuristic::H4),
            _ => None,
        }
    }

    /// The ordering named by a table mnemonic (inverse of
    /// [`MvOrdering::mnemonic`]).
    pub fn from_mnemonic(mnemonic: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.mnemonic() == mnemonic)
    }
}

impl fmt::Display for MvOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Orderings of the binary variables *within* the group encoding each
/// multiple-valued variable (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupOrdering {
    /// Most-significant bit first (`ml`).
    MsbFirst,
    /// Least-significant bit first (`lm`).
    LsbFirst,
    /// Bits sorted by their index under the *topology* heuristic.
    Topology,
    /// Bits sorted by their index under the *weight* heuristic.
    Weight,
    /// Bits sorted by their index under the *H4* heuristic.
    H4,
}

impl GroupOrdering {
    /// All five group orderings.
    pub const ALL: [GroupOrdering; 5] = [
        GroupOrdering::MsbFirst,
        GroupOrdering::LsbFirst,
        GroupOrdering::Topology,
        GroupOrdering::Weight,
        GroupOrdering::H4,
    ];

    /// Mnemonic used by the paper's tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GroupOrdering::MsbFirst => "ml",
            GroupOrdering::LsbFirst => "lm",
            GroupOrdering::Topology => "t",
            GroupOrdering::Weight => "w",
            GroupOrdering::H4 => "h",
        }
    }

    /// The binary-variable heuristic this ordering is based on, if any.
    pub fn heuristic(&self) -> Option<BitHeuristic> {
        match self {
            GroupOrdering::Topology => Some(BitHeuristic::Topology),
            GroupOrdering::Weight => Some(BitHeuristic::Weight),
            GroupOrdering::H4 => Some(BitHeuristic::H4),
            _ => None,
        }
    }

    /// The ordering named by a table mnemonic (inverse of
    /// [`GroupOrdering::mnemonic`]).
    pub fn from_mnemonic(mnemonic: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.mnemonic() == mnemonic)
    }
}

impl fmt::Display for GroupOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A static ordering choice: how to order the multiple-valued variables
/// and how to order the bits inside each encoding group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticOrdering {
    /// Ordering of the multiple-valued variables.
    pub mv: MvOrdering,
    /// Ordering of the bits within each group.
    pub group: GroupOrdering,
}

impl StaticOrdering {
    /// Whether this combination is one the paper permits: `ml` and `lm`
    /// group orderings combine with any multiple-valued ordering, while a
    /// heuristic group ordering is only allowed together with the *same*
    /// heuristic multiple-valued ordering.
    pub fn is_allowed(&self) -> bool {
        match self.group.heuristic() {
            None => true,
            Some(h) => self.mv.heuristic() == Some(h),
        }
    }

    /// A short `mv/group` label such as `w/ml`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.mv.mnemonic(), self.group.mnemonic())
    }
}

impl fmt::Display for StaticOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Default growth bound for [`OrderingSpec::Sifted`], in percent
/// (`120` ⇒ the diagram may transiently grow to 1.2× while a variable
/// searches for its best position — Rudell's classic setting).
pub const DEFAULT_SIFT_MAX_GROWTH: u32 = 120;

/// A complete ordering specification.
///
/// The paper fixes orderings up front ([`OrderingSpec::Static`]); the
/// [`OrderingSpec::Sifted`] variant starts from such a static base and
/// asks the pipeline to improve it afterwards by dynamic sifting on the
/// compiled diagram (whole bit groups move as units, so the coded-ROBDD
/// layering requirement is preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingSpec {
    /// A fixed up-front ordering.
    Static(StaticOrdering),
    /// A static base ordering followed by dynamic sifting.
    Sifted {
        /// The static ordering compiled first.
        base: StaticOrdering,
        /// Growth bound of the sifting driver in percent (≥ 100); see
        /// [`DEFAULT_SIFT_MAX_GROWTH`].
        max_growth: u32,
    },
}

impl OrderingSpec {
    /// Creates a static specification, enforcing the paper's combination
    /// rules (see [`StaticOrdering::is_allowed`]).
    ///
    /// # Errors
    ///
    /// Returns [`OrderingError::IncompatibleCombination`] for disallowed
    /// pairs.
    pub fn new(mv: MvOrdering, group: GroupOrdering) -> Result<Self, OrderingError> {
        let base = StaticOrdering { mv, group };
        if base.is_allowed() {
            Ok(Self::Static(base))
        } else {
            Err(OrderingError::IncompatibleCombination { mv, group })
        }
    }

    /// Creates a sifted specification with the given growth bound in
    /// percent.
    ///
    /// # Errors
    ///
    /// Returns [`OrderingError::IncompatibleCombination`] for disallowed
    /// base pairs and [`OrderingError::InvalidSiftBound`] when
    /// `max_growth < 100`.
    pub fn sifted(
        mv: MvOrdering,
        group: GroupOrdering,
        max_growth: u32,
    ) -> Result<Self, OrderingError> {
        if max_growth < 100 {
            return Err(OrderingError::InvalidSiftBound { max_growth });
        }
        Ok(Self::new(mv, group)?.with_sifting(max_growth))
    }

    /// This specification with sifting enabled at the given growth bound
    /// in percent (values below 100 are clamped to 100).
    pub fn with_sifting(self, max_growth: u32) -> Self {
        Self::Sifted { base: self.base(), max_growth: max_growth.max(100) }
    }

    /// The static base ordering (for [`OrderingSpec::Sifted`], the order
    /// compiled before sifting).
    pub fn base(&self) -> StaticOrdering {
        match *self {
            Self::Static(base) | Self::Sifted { base, .. } => base,
        }
    }

    /// Ordering of the multiple-valued variables (of the static base).
    pub fn mv(&self) -> MvOrdering {
        self.base().mv
    }

    /// Ordering of the bits within each group (of the static base).
    pub fn group(&self) -> GroupOrdering {
        self.base().group
    }

    /// The sifting growth bound in percent, or `None` for static specs.
    pub fn sift_max_growth(&self) -> Option<u32> {
        match *self {
            Self::Static(_) => None,
            Self::Sifted { max_growth, .. } => Some(max_growth),
        }
    }

    /// Whether the base combination is one the paper permits.
    pub fn is_allowed(&self) -> bool {
        self.base().is_allowed()
    }

    /// The default specification used by Table 4: weight heuristic for the
    /// multiple-valued variables, most-significant-bit-first groups, no
    /// sifting.
    pub fn paper_default() -> Self {
        Self::Static(StaticOrdering { mv: MvOrdering::Weight, group: GroupOrdering::MsbFirst })
    }

    /// The seven specifications evaluated in Table 2 (all multiple-valued
    /// orderings, each with `ml` bit groups).
    pub fn table2_specs() -> Vec<Self> {
        MvOrdering::ALL
            .iter()
            .map(|&mv| Self::Static(StaticOrdering { mv, group: GroupOrdering::MsbFirst }))
            .collect()
    }

    /// The three specifications evaluated in Table 3 (`w` multiple-valued
    /// ordering with `ml`, `lm` and `w` bit groups).
    pub fn table3_specs() -> Vec<Self> {
        [GroupOrdering::MsbFirst, GroupOrdering::LsbFirst, GroupOrdering::Weight]
            .iter()
            .map(|&group| Self::Static(StaticOrdering { mv: MvOrdering::Weight, group }))
            .collect()
    }

    /// A short label such as `w/ml`, with `+sift` appended for sifted
    /// specifications.
    pub fn label(&self) -> String {
        match self {
            Self::Static(base) => base.label(),
            Self::Sifted { base, .. } => format!("{}+sift", base.label()),
        }
    }

    /// Parses a [`OrderingSpec::label`]-style string: `mv/group` with an
    /// optional `+sift` suffix (sifting at [`DEFAULT_SIFT_MAX_GROWTH`]).
    /// This is the wire format accepted by the `socy-serve` protocol.
    ///
    /// # Errors
    ///
    /// Returns [`OrderingError::UnknownLabel`] for unrecognised
    /// mnemonics or malformed labels, and
    /// [`OrderingError::IncompatibleCombination`] for pairs the paper
    /// does not permit.
    pub fn parse(label: &str) -> Result<Self, OrderingError> {
        let unknown = || OrderingError::UnknownLabel { label: label.to_string() };
        let (base, sift) = match label.strip_suffix("+sift") {
            Some(base) => (base, true),
            None => (label, false),
        };
        let (mv, group) = base.split_once('/').ok_or_else(unknown)?;
        let mv = MvOrdering::from_mnemonic(mv).ok_or_else(unknown)?;
        let group = GroupOrdering::from_mnemonic(group).ok_or_else(unknown)?;
        let spec = Self::new(mv, group)?;
        Ok(if sift { spec.with_sifting(DEFAULT_SIFT_MAX_GROWTH) } else { spec })
    }
}

impl fmt::Display for OrderingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Errors produced when constructing or applying ordering specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderingError {
    /// A heuristic group ordering was combined with an incompatible
    /// multiple-valued ordering.
    IncompatibleCombination {
        /// The multiple-valued ordering.
        mv: MvOrdering,
        /// The group ordering.
        group: GroupOrdering,
    },
    /// The variable groups handed to [`crate::compute_ordering`] do not
    /// partition the netlist inputs.
    GroupsDoNotPartitionInputs {
        /// Number of binary variables covered by the groups.
        covered: usize,
        /// Number of primary inputs in the netlist.
        inputs: usize,
    },
    /// A sifted specification was requested with a growth bound below
    /// 100 percent (the diagram must be allowed to keep its size).
    InvalidSiftBound {
        /// The rejected bound, in percent.
        max_growth: u32,
    },
    /// A label handed to [`OrderingSpec::parse`] names no known
    /// specification.
    UnknownLabel {
        /// The rejected label.
        label: String,
    },
}

impl fmt::Display for OrderingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingError::IncompatibleCombination { mv, group } => write!(
                f,
                "group ordering `{group}` may only be combined with the matching \
                 multiple-valued ordering, not `{mv}`"
            ),
            OrderingError::GroupsDoNotPartitionInputs { covered, inputs } => write!(
                f,
                "variable groups cover {covered} binary variables but the netlist has {inputs} inputs"
            ),
            OrderingError::InvalidSiftBound { max_growth } => write!(
                f,
                "sift growth bound must be at least 100 percent, got {max_growth}"
            ),
            OrderingError::UnknownLabel { label } => write!(
                f,
                "unknown ordering label `{label}` (expected `mv/group` with an optional \
                 `+sift` suffix, e.g. `w/ml` or `wv/lm+sift`)"
            ),
        }
    }
}

impl std::error::Error for OrderingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_paper() {
        assert_eq!(MvOrdering::Wvr.mnemonic(), "wvr");
        assert_eq!(MvOrdering::Weight.to_string(), "w");
        assert_eq!(GroupOrdering::MsbFirst.to_string(), "ml");
        assert_eq!(GroupOrdering::LsbFirst.mnemonic(), "lm");
        assert_eq!(OrderingSpec::paper_default().label(), "w/ml");
    }

    #[test]
    fn parse_round_trips_labels() {
        for mv in MvOrdering::ALL {
            for group in [GroupOrdering::MsbFirst, GroupOrdering::LsbFirst] {
                let spec = OrderingSpec::new(mv, group).unwrap();
                assert_eq!(OrderingSpec::parse(&spec.label()).unwrap(), spec);
                let sifted = spec.with_sifting(DEFAULT_SIFT_MAX_GROWTH);
                assert_eq!(OrderingSpec::parse(&sifted.label()).unwrap(), sifted);
            }
        }
        assert_eq!(OrderingSpec::parse("w/ml").unwrap(), OrderingSpec::paper_default());
        for bad in ["", "w", "w/", "/ml", "q/ml", "w/q", "w-ml", "w/ml+lift"] {
            let err = OrderingSpec::parse(bad).unwrap_err();
            assert!(matches!(err, OrderingError::UnknownLabel { .. }), "{bad}: {err}");
        }
        // Parsing enforces the same combination rules as construction.
        assert!(matches!(
            OrderingSpec::parse("wv/w").unwrap_err(),
            OrderingError::IncompatibleCombination { .. }
        ));
    }

    #[test]
    fn combination_rules() {
        // ml / lm combine with everything.
        for mv in MvOrdering::ALL {
            assert!(OrderingSpec::new(mv, GroupOrdering::MsbFirst).is_ok());
            assert!(OrderingSpec::new(mv, GroupOrdering::LsbFirst).is_ok());
        }
        // Heuristic groups only with the matching heuristic MV ordering.
        assert!(OrderingSpec::new(MvOrdering::Weight, GroupOrdering::Weight).is_ok());
        assert!(OrderingSpec::new(MvOrdering::Topology, GroupOrdering::Topology).is_ok());
        assert!(OrderingSpec::new(MvOrdering::H4, GroupOrdering::H4).is_ok());
        assert!(OrderingSpec::new(MvOrdering::Weight, GroupOrdering::H4).is_err());
        assert!(OrderingSpec::new(MvOrdering::Wv, GroupOrdering::Weight).is_err());
        let err = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::Weight).unwrap_err();
        assert!(format!("{err}").contains("may only be combined"));
    }

    #[test]
    fn table_spec_lists() {
        assert_eq!(OrderingSpec::table2_specs().len(), 7);
        assert_eq!(OrderingSpec::table3_specs().len(), 3);
        assert!(OrderingSpec::table2_specs().iter().all(|s| s.is_allowed()));
        assert!(OrderingSpec::table3_specs().iter().all(|s| s.is_allowed()));
    }

    #[test]
    fn heuristic_accessors() {
        assert_eq!(MvOrdering::Weight.heuristic(), Some(BitHeuristic::Weight));
        assert_eq!(MvOrdering::Wv.heuristic(), None);
        assert_eq!(GroupOrdering::H4.heuristic(), Some(BitHeuristic::H4));
        assert_eq!(GroupOrdering::LsbFirst.heuristic(), None);
    }

    #[test]
    fn sifted_specs() {
        let base = OrderingSpec::paper_default();
        assert_eq!(base.sift_max_growth(), None);
        let sifted = base.with_sifting(150);
        assert_eq!(sifted.sift_max_growth(), Some(150));
        assert_eq!(sifted.base(), base.base());
        assert_eq!(sifted.mv(), MvOrdering::Weight);
        assert_eq!(sifted.group(), GroupOrdering::MsbFirst);
        assert!(sifted.is_allowed());
        assert_eq!(sifted.label(), "w/ml+sift");
        assert_eq!(format!("{sifted}"), "w/ml+sift");
        // The constructor enforces both rules.
        let ok =
            OrderingSpec::sifted(MvOrdering::Wv, GroupOrdering::LsbFirst, DEFAULT_SIFT_MAX_GROWTH)
                .unwrap();
        assert_eq!(ok.label(), "wv/lm+sift");
        assert!(matches!(
            OrderingSpec::sifted(MvOrdering::Wv, GroupOrdering::Weight, 120),
            Err(OrderingError::IncompatibleCombination { .. })
        ));
        let err =
            OrderingSpec::sifted(MvOrdering::Weight, GroupOrdering::MsbFirst, 80).unwrap_err();
        assert!(matches!(err, OrderingError::InvalidSiftBound { max_growth: 80 }));
        assert!(format!("{err}").contains("at least 100"));
        // with_sifting clamps instead of failing.
        assert_eq!(base.with_sifting(50).sift_max_growth(), Some(100));
        // Sifting an already-sifted spec replaces the bound.
        assert_eq!(sifted.with_sifting(200).sift_max_growth(), Some(200));
    }
}
