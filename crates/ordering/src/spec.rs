//! Ordering specifications: the named multiple-valued variable orderings
//! and bit-group orderings of the paper, plus validity rules for their
//! combinations.

use std::fmt;

use crate::heuristic::BitHeuristic;

/// Orderings of the multiple-valued variables `w, v_1, …, v_M`
/// (Section 2 / Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MvOrdering {
    /// `w, v_1, …, v_M`.
    Wv,
    /// `w, v_M, …, v_1`.
    Wvr,
    /// `v_1, …, v_M, w`.
    Vw,
    /// `v_M, …, v_1, w`.
    Vrw,
    /// Heuristic ordering derived from the *topology* heuristic on the
    /// binary-logic gate description of `G`.
    Topology,
    /// Heuristic ordering derived from the *weight* heuristic.
    Weight,
    /// Heuristic ordering derived from the *H4* heuristic.
    H4,
}

impl MvOrdering {
    /// All seven orderings in the order used by Table 2.
    pub const ALL: [MvOrdering; 7] = [
        MvOrdering::Wv,
        MvOrdering::Wvr,
        MvOrdering::Vw,
        MvOrdering::Vrw,
        MvOrdering::Topology,
        MvOrdering::Weight,
        MvOrdering::H4,
    ];

    /// Mnemonic used by the paper's tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            MvOrdering::Wv => "wv",
            MvOrdering::Wvr => "wvr",
            MvOrdering::Vw => "vw",
            MvOrdering::Vrw => "vrw",
            MvOrdering::Topology => "t",
            MvOrdering::Weight => "w",
            MvOrdering::H4 => "h",
        }
    }

    /// The binary-variable heuristic this ordering is based on, if any.
    pub fn heuristic(&self) -> Option<BitHeuristic> {
        match self {
            MvOrdering::Topology => Some(BitHeuristic::Topology),
            MvOrdering::Weight => Some(BitHeuristic::Weight),
            MvOrdering::H4 => Some(BitHeuristic::H4),
            _ => None,
        }
    }
}

impl fmt::Display for MvOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Orderings of the binary variables *within* the group encoding each
/// multiple-valued variable (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupOrdering {
    /// Most-significant bit first (`ml`).
    MsbFirst,
    /// Least-significant bit first (`lm`).
    LsbFirst,
    /// Bits sorted by their index under the *topology* heuristic.
    Topology,
    /// Bits sorted by their index under the *weight* heuristic.
    Weight,
    /// Bits sorted by their index under the *H4* heuristic.
    H4,
}

impl GroupOrdering {
    /// All five group orderings.
    pub const ALL: [GroupOrdering; 5] = [
        GroupOrdering::MsbFirst,
        GroupOrdering::LsbFirst,
        GroupOrdering::Topology,
        GroupOrdering::Weight,
        GroupOrdering::H4,
    ];

    /// Mnemonic used by the paper's tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GroupOrdering::MsbFirst => "ml",
            GroupOrdering::LsbFirst => "lm",
            GroupOrdering::Topology => "t",
            GroupOrdering::Weight => "w",
            GroupOrdering::H4 => "h",
        }
    }

    /// The binary-variable heuristic this ordering is based on, if any.
    pub fn heuristic(&self) -> Option<BitHeuristic> {
        match self {
            GroupOrdering::Topology => Some(BitHeuristic::Topology),
            GroupOrdering::Weight => Some(BitHeuristic::Weight),
            GroupOrdering::H4 => Some(BitHeuristic::H4),
            _ => None,
        }
    }
}

impl fmt::Display for GroupOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A complete ordering specification: how to order the multiple-valued
/// variables and how to order the bits inside each encoding group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderingSpec {
    /// Ordering of the multiple-valued variables.
    pub mv: MvOrdering,
    /// Ordering of the bits within each group.
    pub group: GroupOrdering,
}

impl OrderingSpec {
    /// Creates a specification, enforcing the paper's combination rules:
    /// `ml` and `lm` group orderings combine with any multiple-valued
    /// ordering, while a heuristic group ordering is only allowed together
    /// with the *same* heuristic multiple-valued ordering.
    ///
    /// # Errors
    ///
    /// Returns [`OrderingError::IncompatibleCombination`] for disallowed
    /// pairs.
    pub fn new(mv: MvOrdering, group: GroupOrdering) -> Result<Self, OrderingError> {
        let spec = Self { mv, group };
        if spec.is_allowed() {
            Ok(spec)
        } else {
            Err(OrderingError::IncompatibleCombination { mv, group })
        }
    }

    /// Whether this combination is one the paper permits.
    pub fn is_allowed(&self) -> bool {
        match self.group.heuristic() {
            None => true,
            Some(h) => self.mv.heuristic() == Some(h),
        }
    }

    /// The default specification used by Table 4: weight heuristic for the
    /// multiple-valued variables, most-significant-bit-first groups.
    pub fn paper_default() -> Self {
        Self { mv: MvOrdering::Weight, group: GroupOrdering::MsbFirst }
    }

    /// The seven specifications evaluated in Table 2 (all multiple-valued
    /// orderings, each with `ml` bit groups).
    pub fn table2_specs() -> Vec<Self> {
        MvOrdering::ALL.iter().map(|&mv| Self { mv, group: GroupOrdering::MsbFirst }).collect()
    }

    /// The three specifications evaluated in Table 3 (`w` multiple-valued
    /// ordering with `ml`, `lm` and `w` bit groups).
    pub fn table3_specs() -> Vec<Self> {
        vec![
            Self { mv: MvOrdering::Weight, group: GroupOrdering::MsbFirst },
            Self { mv: MvOrdering::Weight, group: GroupOrdering::LsbFirst },
            Self { mv: MvOrdering::Weight, group: GroupOrdering::Weight },
        ]
    }

    /// A short `mv/group` label such as `w/ml`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.mv.mnemonic(), self.group.mnemonic())
    }
}

impl fmt::Display for OrderingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Errors produced when constructing or applying ordering specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderingError {
    /// A heuristic group ordering was combined with an incompatible
    /// multiple-valued ordering.
    IncompatibleCombination {
        /// The multiple-valued ordering.
        mv: MvOrdering,
        /// The group ordering.
        group: GroupOrdering,
    },
    /// The variable groups handed to [`crate::compute_ordering`] do not
    /// partition the netlist inputs.
    GroupsDoNotPartitionInputs {
        /// Number of binary variables covered by the groups.
        covered: usize,
        /// Number of primary inputs in the netlist.
        inputs: usize,
    },
}

impl fmt::Display for OrderingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingError::IncompatibleCombination { mv, group } => write!(
                f,
                "group ordering `{group}` may only be combined with the matching \
                 multiple-valued ordering, not `{mv}`"
            ),
            OrderingError::GroupsDoNotPartitionInputs { covered, inputs } => write!(
                f,
                "variable groups cover {covered} binary variables but the netlist has {inputs} inputs"
            ),
        }
    }
}

impl std::error::Error for OrderingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_paper() {
        assert_eq!(MvOrdering::Wvr.mnemonic(), "wvr");
        assert_eq!(MvOrdering::Weight.to_string(), "w");
        assert_eq!(GroupOrdering::MsbFirst.to_string(), "ml");
        assert_eq!(GroupOrdering::LsbFirst.mnemonic(), "lm");
        assert_eq!(OrderingSpec::paper_default().label(), "w/ml");
    }

    #[test]
    fn combination_rules() {
        // ml / lm combine with everything.
        for mv in MvOrdering::ALL {
            assert!(OrderingSpec::new(mv, GroupOrdering::MsbFirst).is_ok());
            assert!(OrderingSpec::new(mv, GroupOrdering::LsbFirst).is_ok());
        }
        // Heuristic groups only with the matching heuristic MV ordering.
        assert!(OrderingSpec::new(MvOrdering::Weight, GroupOrdering::Weight).is_ok());
        assert!(OrderingSpec::new(MvOrdering::Topology, GroupOrdering::Topology).is_ok());
        assert!(OrderingSpec::new(MvOrdering::H4, GroupOrdering::H4).is_ok());
        assert!(OrderingSpec::new(MvOrdering::Weight, GroupOrdering::H4).is_err());
        assert!(OrderingSpec::new(MvOrdering::Wv, GroupOrdering::Weight).is_err());
        let err = OrderingSpec::new(MvOrdering::Wv, GroupOrdering::Weight).unwrap_err();
        assert!(format!("{err}").contains("may only be combined"));
    }

    #[test]
    fn table_spec_lists() {
        assert_eq!(OrderingSpec::table2_specs().len(), 7);
        assert_eq!(OrderingSpec::table3_specs().len(), 3);
        assert!(OrderingSpec::table2_specs().iter().all(|s| s.is_allowed()));
        assert!(OrderingSpec::table3_specs().iter().all(|s| s.is_allowed()));
    }

    #[test]
    fn heuristic_accessors() {
        assert_eq!(MvOrdering::Weight.heuristic(), Some(BitHeuristic::Weight));
        assert_eq!(MvOrdering::Wv.heuristic(), None);
        assert_eq!(GroupOrdering::H4.heuristic(), Some(BitHeuristic::H4));
        assert_eq!(GroupOrdering::LsbFirst.heuristic(), None);
    }
}
