//! Binary-variable ordering heuristics over gate-level netlists.
//!
//! All three heuristics derive an input-variable order from a depth-first,
//! left-most traversal of the gate DAG; they differ in how the fan-in of
//! each gate is (re)ordered before being descended into:
//!
//! * **topology** — fan-ins are visited in their original order;
//! * **weight** — fan-ins are statically sorted by increasing *weight*,
//!   where inputs weigh 1 and a gate weighs the sum of its fan-in weights;
//! * **H4** — fan-ins are sorted *dynamically* when the gate is first
//!   visited, by (1) the number of not-yet-visited inputs in their
//!   dependency cone and then (2) the sum of the already-assigned indices
//!   of visited inputs in their cone.
//!
//! Ties always preserve the original fan-in order, as the paper specifies.

use socy_faulttree::{Netlist, NodeId, VarId};

/// The binary-variable ordering heuristics evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitHeuristic {
    /// Depth-first left-most traversal with original fan-in order.
    Topology,
    /// Fan-ins statically reordered by increasing weight (Minato et al.).
    Weight,
    /// Fan-ins dynamically reordered by visited-input criteria (Bouissou et al.).
    H4,
}

impl BitHeuristic {
    /// Short mnemonic used in tables (`t`, `w`, `h`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BitHeuristic::Topology => "t",
            BitHeuristic::Weight => "w",
            BitHeuristic::H4 => "h",
        }
    }
}

/// Computes the input-variable order produced by `heuristic` on the
/// designated output cone of `netlist`.
///
/// Input variables that do not appear in the output cone are appended at
/// the end in their declaration order, so the result is always a
/// permutation of all input variables.
///
/// # Panics
///
/// Panics if the netlist has no designated output.
pub fn heuristic_input_order(netlist: &Netlist, heuristic: BitHeuristic) -> Vec<VarId> {
    let output = netlist.output().expect("netlist must have a designated output");
    let mut order = match heuristic {
        BitHeuristic::Topology => netlist.dfs_input_order(output),
        BitHeuristic::Weight => {
            let weights = netlist.weights();
            netlist.dfs_input_order_with(output, |_, fanin| {
                let mut indexed: Vec<(usize, NodeId)> = fanin.iter().copied().enumerate().collect();
                indexed.sort_by_key(|&(pos, id)| (weights[id.index()], pos));
                indexed.into_iter().map(|(_, id)| id).collect()
            })
        }
        BitHeuristic::H4 => h4_order(netlist, output),
    };
    // Append inputs outside the output cone, keeping declaration order.
    let mut present = vec![false; netlist.num_inputs()];
    for v in &order {
        present[v.index()] = true;
    }
    for (i, covered) in present.iter().enumerate() {
        if !covered {
            order.push(VarId::new(i));
        }
    }
    order
}

/// Dependency-cone input sets per node, as bitsets over input variables.
fn supports(netlist: &Netlist) -> Vec<Vec<u64>> {
    let words = netlist.num_inputs().div_ceil(64);
    let mut sets: Vec<Vec<u64>> = vec![vec![0u64; words]; netlist.len()];
    for (id, gate) in netlist.iter() {
        if let Some(var) = netlist.var_of(id) {
            sets[id.index()][var.index() / 64] |= 1u64 << (var.index() % 64);
            continue;
        }
        // Arena order is topological, so fan-ins are already computed. To appease the
        // borrow checker the fan-in sets are OR-ed via split indexing.
        for f in &gate.fanin {
            let (lo, hi) = sets.split_at_mut(id.index());
            debug_assert!(f.index() < id.index());
            for (w, word) in lo[f.index()].iter().enumerate() {
                hi[0][w] |= word;
            }
        }
    }
    sets
}

/// The H4 traversal: depth-first left-most with dynamic fan-in sorting.
fn h4_order(netlist: &Netlist, output: NodeId) -> Vec<VarId> {
    let supports = supports(netlist);
    let num_inputs = netlist.num_inputs();
    let mut visited_node = vec![false; netlist.len()];
    // Index assigned to each visited input (usize::MAX = not yet visited).
    let mut input_index = vec![usize::MAX; num_inputs];
    let mut order: Vec<VarId> = Vec::new();

    // Recursive traversal implemented with an explicit stack of work items.
    enum Frame {
        Enter(NodeId),
        Children { children: Vec<NodeId>, next: usize },
    }
    let mut stack = vec![Frame::Enter(output)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(id) => {
                if visited_node[id.index()] {
                    continue;
                }
                visited_node[id.index()] = true;
                if let Some(var) = netlist.var_of(id) {
                    input_index[var.index()] = order.len();
                    order.push(var);
                    continue;
                }
                let gate = netlist.gate(id);
                if !gate.kind.has_fanin() {
                    continue;
                }
                // Sort the fan-in by (non-visited inputs in cone, sum of visited indices, original position).
                let mut keyed: Vec<(usize, u64, usize, NodeId)> = gate
                    .fanin
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(pos, child)| {
                        let set = &supports[child.index()];
                        let mut non_visited = 0usize;
                        let mut index_sum = 0u64;
                        for input in iter_bits(set) {
                            if input_index[input] == usize::MAX {
                                non_visited += 1;
                            } else {
                                index_sum += input_index[input] as u64;
                            }
                        }
                        (non_visited, index_sum, pos, child)
                    })
                    .collect();
                keyed
                    .sort_by_key(|&(non_visited, index_sum, pos, _)| (non_visited, index_sum, pos));
                let children: Vec<NodeId> = keyed.into_iter().map(|(_, _, _, id)| id).collect();
                stack.push(Frame::Children { children, next: 0 });
            }
            Frame::Children { children, next } => {
                if next < children.len() {
                    let child = children[next];
                    stack.push(Frame::Children { children, next: next + 1 });
                    stack.push(Frame::Enter(child));
                }
            }
        }
    }
    order
}

/// Iterates over the set bit positions of a bitset.
fn iter_bits(set: &[u64]) -> impl Iterator<Item = usize> + '_ {
    set.iter().enumerate().flat_map(|(w, &word)| {
        (0..64).filter_map(move |b| if word & (1u64 << b) != 0 { Some(w * 64 + b) } else { None })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(netlist: &Netlist, order: &[VarId]) -> Vec<String> {
        order.iter().map(|v| netlist.var_name(*v).to_string()).collect()
    }

    /// F = or(and(a, b, c), and(d, e))  — the weight heuristic should visit the
    /// lighter AND (d, e) first even though it is declared second.
    fn weighted_example() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let d = nl.input("d");
        let e = nl.input("e");
        let heavy = nl.and([a, b, c]);
        let light = nl.and([d, e]);
        let f = nl.or([heavy, light]);
        nl.set_output(f);
        nl
    }

    #[test]
    fn topology_keeps_declaration_order() {
        let nl = weighted_example();
        let order = heuristic_input_order(&nl, BitHeuristic::Topology);
        assert_eq!(names(&nl, &order), vec!["a", "b", "c", "d", "e"]);
        assert_eq!(BitHeuristic::Topology.mnemonic(), "t");
    }

    #[test]
    fn weight_visits_light_cone_first() {
        let nl = weighted_example();
        let order = heuristic_input_order(&nl, BitHeuristic::Weight);
        assert_eq!(names(&nl, &order), vec!["d", "e", "a", "b", "c"]);
        assert_eq!(BitHeuristic::Weight.mnemonic(), "w");
    }

    #[test]
    fn weight_is_stable_on_ties() {
        // Two AND gates of equal weight keep their original order.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let d = nl.input("d");
        let g1 = nl.and([a, b]);
        let g2 = nl.and([c, d]);
        let f = nl.or([g1, g2]);
        nl.set_output(f);
        let order = heuristic_input_order(&nl, BitHeuristic::Weight);
        assert_eq!(names(&nl, &order), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn h4_prefers_cones_with_fewer_unvisited_inputs() {
        // F = or(and(a, b), Q) with Q = or(and(d, e), and(b, c)).
        // When Q is first visited, a and b are already visited, so the cone
        // {b, c} (one unvisited input) must be descended before {d, e} (two).
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let d = nl.input("d");
        let e = nl.input("e");
        let c = nl.input("c");
        let g1 = nl.and([a, b]);
        let g2 = nl.and([d, e]);
        let g3 = nl.and([b, c]);
        let q = nl.or([g2, g3]);
        let f = nl.or([g1, q]);
        nl.set_output(f);
        let h = heuristic_input_order(&nl, BitHeuristic::H4);
        assert_eq!(names(&nl, &h), vec!["a", "b", "c", "d", "e"]);
        // Topology descends Q's fan-in in declaration order and visits d, e before c.
        let t = heuristic_input_order(&nl, BitHeuristic::Topology);
        assert_eq!(names(&nl, &t), vec!["a", "b", "d", "e", "c"]);
        assert_eq!(BitHeuristic::H4.mnemonic(), "h");
    }

    #[test]
    fn h4_breaks_ties_by_index_sum() {
        // F = or(and(a, b), Q) with Q = or(and(b, x), and(a, y)).
        // When Q is first visited, a has index 0 and b index 1; both of Q's
        // fan-ins have one unvisited input, so the sum-of-visited-indices
        // criterion prefers the cone containing a (sum 0) over b (sum 1).
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.input("x");
        let y = nl.input("y");
        let g1 = nl.and([a, b]);
        let g2 = nl.and([b, x]);
        let g3 = nl.and([a, y]);
        let q = nl.or([g2, g3]);
        let f = nl.or([g1, q]);
        nl.set_output(f);
        let h = heuristic_input_order(&nl, BitHeuristic::H4);
        assert_eq!(names(&nl, &h), vec!["a", "b", "y", "x"]);
        // Without the dynamic criterion the x-cone would be visited first.
        let t = heuristic_input_order(&nl, BitHeuristic::Topology);
        assert_eq!(names(&nl, &t), vec!["a", "b", "x", "y"]);
    }

    #[test]
    fn unused_inputs_are_appended() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let unused = nl.input("unused");
        let b = nl.input("b");
        let f = nl.or([a, b]);
        nl.set_output(f);
        for h in [BitHeuristic::Topology, BitHeuristic::Weight, BitHeuristic::H4] {
            let order = heuristic_input_order(&nl, h);
            assert_eq!(order.len(), 3, "{h:?}");
            assert_eq!(*order.last().unwrap(), nl.var_of(unused).unwrap(), "{h:?}");
        }
    }

    #[test]
    fn all_heuristics_return_permutations() {
        let nl = weighted_example();
        for h in [BitHeuristic::Topology, BitHeuristic::Weight, BitHeuristic::H4] {
            let mut order = heuristic_input_order(&nl, h);
            order.sort();
            let expect: Vec<VarId> = (0..nl.num_inputs()).map(VarId::new).collect();
            assert_eq!(order, expect, "{h:?}");
        }
    }
}
