//! Description of how a coded ROBDD encodes multiple-valued variables.
//!
//! A *coded ROBDD* of a multiple-valued function is an ordinary ROBDD over
//! groups of binary variables, one group per multiple-valued variable. To
//! be convertible into the ROMDD the paper requires that the binary
//! variables of each group are kept **contiguous** in the ROBDD order and
//! that the groups appear in the same order as the multiple-valued
//! variables. [`CodedLayout`] captures that structure: per multiple-valued
//! variable, the domain size, the ROBDD levels of its bits and the
//! codeword assigned to every domain value.

use std::fmt;

/// Layout of one multiple-valued variable inside the coded ROBDD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvVarLayout {
    /// Domain size of the multiple-valued variable.
    pub domain: usize,
    /// ROBDD levels of the binary variables encoding this variable, in
    /// *code order*: `bit_levels[j]` is the level holding bit `j` of every
    /// codeword.
    pub bit_levels: Vec<usize>,
    /// `codes[value][j]` is the value of bit `j` (aligned with
    /// `bit_levels`) in the codeword assigned to `value`.
    pub codes: Vec<Vec<bool>>,
}

impl MvVarLayout {
    /// The assignment (sorted by increasing ROBDD level) of this group's
    /// bits that encodes `value`.
    pub fn assignment_for(&self, value: usize) -> Vec<(usize, bool)> {
        let mut pairs: Vec<(usize, bool)> =
            self.bit_levels.iter().copied().zip(self.codes[value].iter().copied()).collect();
        pairs.sort_by_key(|&(level, _)| level);
        pairs
    }

    /// Smallest ROBDD level used by this group.
    pub fn min_level(&self) -> usize {
        *self.bit_levels.iter().min().expect("group has at least one bit")
    }

    /// Largest ROBDD level used by this group.
    pub fn max_level(&self) -> usize {
        *self.bit_levels.iter().max().expect("group has at least one bit")
    }
}

/// Errors detected when validating a [`CodedLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A variable has no values or no bits.
    EmptyVariable {
        /// Index of the offending multiple-valued variable.
        var: usize,
    },
    /// The number of codewords does not match the domain size, or a
    /// codeword has the wrong width.
    CodeShape {
        /// Index of the offending multiple-valued variable.
        var: usize,
    },
    /// Two domain values share the same codeword.
    DuplicateCode {
        /// Index of the offending multiple-valued variable.
        var: usize,
    },
    /// A ROBDD level is used by more than one bit.
    OverlappingLevels,
    /// Groups are not contiguous and ordered like the multiple-valued
    /// variables (a later variable uses a level below an earlier one).
    GroupsNotOrdered {
        /// Index of the first variable of the offending pair.
        var: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::EmptyVariable { var } => {
                write!(f, "multiple-valued variable {var} has an empty domain or no bits")
            }
            LayoutError::CodeShape { var } => {
                write!(f, "codeword table of variable {var} has the wrong shape")
            }
            LayoutError::DuplicateCode { var } => {
                write!(f, "variable {var} assigns the same codeword to two values")
            }
            LayoutError::OverlappingLevels => write!(f, "two bits share the same ROBDD level"),
            LayoutError::GroupsNotOrdered { var } => write!(
                f,
                "bit group of variable {var} is not strictly below the group of variable {}",
                var + 1
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Full layout of a coded ROBDD: one [`MvVarLayout`] per multiple-valued
/// variable, in multiple-valued variable order (level 0 first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedLayout {
    /// Per-variable layouts, indexed by multiple-valued level.
    pub vars: Vec<MvVarLayout>,
}

impl CodedLayout {
    /// Creates a layout and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] describing the first violated structural
    /// requirement (shape, distinct codes, non-overlapping levels, groups
    /// contiguous and ordered).
    pub fn new(vars: Vec<MvVarLayout>) -> Result<Self, LayoutError> {
        for (i, var) in vars.iter().enumerate() {
            if var.domain == 0 || var.bit_levels.is_empty() {
                return Err(LayoutError::EmptyVariable { var: i });
            }
            if var.codes.len() != var.domain
                || var.codes.iter().any(|c| c.len() != var.bit_levels.len())
            {
                return Err(LayoutError::CodeShape { var: i });
            }
            let mut sorted = var.codes.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() != var.codes.len() {
                return Err(LayoutError::DuplicateCode { var: i });
            }
        }
        let mut all_levels: Vec<usize> =
            vars.iter().flat_map(|v| v.bit_levels.iter().copied()).collect();
        let n = all_levels.len();
        all_levels.sort_unstable();
        all_levels.dedup();
        if all_levels.len() != n {
            return Err(LayoutError::OverlappingLevels);
        }
        for i in 0..vars.len().saturating_sub(1) {
            if vars[i].max_level() >= vars[i + 1].min_level() {
                return Err(LayoutError::GroupsNotOrdered { var: i });
            }
        }
        Ok(Self { vars })
    }

    /// Builds the standard minimal-width binary layout the paper uses:
    /// variable `i` (domain `domains[i]`) is encoded on
    /// `ceil(log2(domain))` bits holding the plain binary representation of
    /// the value, with groups laid out consecutively starting at ROBDD
    /// level 0 and bits within each group ordered most-significant-first.
    ///
    /// # Panics
    ///
    /// Panics if a domain size is zero.
    pub fn binary_msb_first(domains: &[usize]) -> Self {
        let mut vars = Vec::with_capacity(domains.len());
        let mut next_level = 0usize;
        for &domain in domains {
            assert!(domain >= 1, "domain sizes must be positive");
            let width = bits_for(domain);
            let bit_levels: Vec<usize> = (next_level..next_level + width).collect();
            next_level += width;
            let codes = (0..domain)
                .map(|value| (0..width).map(|j| (value >> (width - 1 - j)) & 1 == 1).collect())
                .collect();
            vars.push(MvVarLayout { domain, bit_levels, codes });
        }
        Self::new(vars).expect("binary layout is structurally valid")
    }

    /// Number of multiple-valued variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Total number of binary (ROBDD) variables used.
    pub fn num_bits(&self) -> usize {
        self.vars.iter().map(|v| v.bit_levels.len()).sum()
    }

    /// Domain sizes of the multiple-valued variables, in order.
    pub fn domains(&self) -> Vec<usize> {
        self.vars.iter().map(|v| v.domain).collect()
    }

    /// Maps each ROBDD level to the index of the multiple-valued variable
    /// that owns it (`None` for unused levels).
    pub fn mv_of_bit(&self) -> Vec<Option<usize>> {
        let max_level = self.vars.iter().map(|v| v.max_level()).max().unwrap_or(0);
        let mut map = vec![None; max_level + 1];
        for (i, var) in self.vars.iter().enumerate() {
            for &l in &var.bit_levels {
                map[l] = Some(i);
            }
        }
        map
    }

    /// The binary assignment (sorted by ROBDD level) encoding
    /// `value` for multiple-valued variable `var`.
    pub fn assignment_for(&self, var: usize, value: usize) -> Vec<(usize, bool)> {
        self.vars[var].assignment_for(value)
    }
}

/// Number of bits needed to represent values `0 .. domain-1`
/// (at least 1 even for singleton domains).
pub fn bits_for(domain: usize) -> usize {
    if domain <= 2 {
        1
    } else {
        (usize::BITS - (domain - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_domains() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
    }

    #[test]
    fn binary_layout_structure() {
        let layout = CodedLayout::binary_msb_first(&[4, 3, 2]);
        assert_eq!(layout.num_vars(), 3);
        assert_eq!(layout.num_bits(), 2 + 2 + 1);
        assert_eq!(layout.domains(), vec![4, 3, 2]);
        assert_eq!(layout.vars[0].bit_levels, vec![0, 1]);
        assert_eq!(layout.vars[1].bit_levels, vec![2, 3]);
        assert_eq!(layout.vars[2].bit_levels, vec![4]);
        // Value 2 of a 4-valued variable is binary 10, MSB first.
        assert_eq!(layout.vars[0].codes[2], vec![true, false]);
        // Assignment is sorted by level.
        assert_eq!(layout.assignment_for(0, 2), vec![(0, true), (1, false)]);
        let map = layout.mv_of_bit();
        assert_eq!(map[0], Some(0));
        assert_eq!(map[3], Some(1));
        assert_eq!(map[4], Some(2));
    }

    #[test]
    fn validation_rejects_bad_layouts() {
        // Duplicate code.
        let bad = CodedLayout::new(vec![MvVarLayout {
            domain: 2,
            bit_levels: vec![0],
            codes: vec![vec![true], vec![true]],
        }]);
        assert_eq!(bad.unwrap_err(), LayoutError::DuplicateCode { var: 0 });
        // Wrong code shape.
        let bad = CodedLayout::new(vec![MvVarLayout {
            domain: 2,
            bit_levels: vec![0],
            codes: vec![vec![true]],
        }]);
        assert_eq!(bad.unwrap_err(), LayoutError::CodeShape { var: 0 });
        // Overlapping levels.
        let bad = CodedLayout::new(vec![
            MvVarLayout { domain: 2, bit_levels: vec![0], codes: vec![vec![false], vec![true]] },
            MvVarLayout { domain: 2, bit_levels: vec![0], codes: vec![vec![false], vec![true]] },
        ]);
        assert_eq!(bad.unwrap_err(), LayoutError::OverlappingLevels);
        // Out-of-order groups.
        let bad = CodedLayout::new(vec![
            MvVarLayout { domain: 2, bit_levels: vec![1], codes: vec![vec![false], vec![true]] },
            MvVarLayout { domain: 2, bit_levels: vec![0], codes: vec![vec![false], vec![true]] },
        ]);
        assert_eq!(bad.unwrap_err(), LayoutError::GroupsNotOrdered { var: 0 });
        // Empty variable.
        let bad =
            CodedLayout::new(vec![MvVarLayout { domain: 0, bit_levels: vec![], codes: vec![] }]);
        assert_eq!(bad.unwrap_err(), LayoutError::EmptyVariable { var: 0 });
        // Error messages are non-empty.
        assert!(!format!("{}", LayoutError::OverlappingLevels).is_empty());
    }

    #[test]
    fn lsb_first_groups_are_also_valid() {
        // Within-group bit order is free; only group contiguity matters.
        let layout = CodedLayout::new(vec![MvVarLayout {
            domain: 3,
            bit_levels: vec![1, 0], // LSB at level 1, MSB at level 0... order given by codes
            codes: vec![vec![false, false], vec![true, false], vec![false, true]],
        }]);
        assert!(layout.is_ok());
        let layout = layout.unwrap();
        // Value 1 has bit_levels[0]=1 → true, bit_levels[1]=0 → false; sorted by level:
        assert_eq!(layout.assignment_for(0, 1), vec![(0, false), (1, true)]);
    }
}
