//! Parallel sections for the ROMDD engine: the n-ary apply connectives
//! and the coded-ROBDD → ROMDD conversion, split across a work-stealing
//! pool over a [`socy_dd::ParSession`].
//!
//! Both follow the same shape as the ROBDD engine's parallel apply: a
//! splitter mirrors the sequential machine's terminal rules exactly
//! (plus a read-only probe of the frozen op cache where one exists),
//! expanding at the top variable — per *domain value*, so the fan-out is
//! the variable's arity — until enough leaves exist to keep the pool
//! busy; each leaf then runs the ordinary explicit-stack machine against
//! the shared session. Hash-consing makes the result canonical and
//! bit-identical at every thread count.
//!
//! Conversion leaves keep a per-worker dense memo (a `ConvScratch`)
//! alive across all tasks the worker executes, and additionally share
//! converted subtrees *across* workers through the session's lossy cache
//! keyed `OP_CONV` on the ROBDD node id (sound by the layering
//! requirement; see [`crate::from_bdd`]).

use crate::apply::{run_apply, ApplyScratch, OP_NOT, OP_XOR};
use crate::from_bdd::{convert_with_ctx, follow_code, ConvScratch, GroupAssignments};
use crate::manager::MddManager;
use socy_bdd::{BddId, BddManager};
use socy_dd::kernel::DdKernel;
use socy_dd::{run_tasks, ParSession, Split, ONE, ZERO};

/// One apply subproblem `(op, a, b)` (NOT carries the operand twice) —
/// the op-cache key shape minus the unused third operand.
type ApplyTask = (u8, u32, u32);

/// Normalised binary subtask (the connectives are commutative, so
/// sorting the operands makes task deduplication match cache keying).
fn binary_task(op: u8, a: u32, b: u32) -> ApplyTask {
    if a <= b {
        (op, a, b)
    } else {
        (op, b, a)
    }
}

/// Terminal rules + frozen-cache probe + one expansion across the top
/// variable's domain, mirroring `eval_step` of the sequential machine
/// rule for rule. Runs only on the frozen kernel, so every id in a task
/// is a frozen arena id.
fn split_apply(dd: &DdKernel, task: &ApplyTask) -> Split<ApplyTask> {
    let &(op, a, b) = task;
    if op == OP_NOT {
        if a == ZERO {
            return Split::Done(ONE);
        }
        if a == ONE {
            return Split::Done(ZERO);
        }
        if let Some(r) = dd.cache_peek((OP_NOT, a, a, 0)) {
            return Split::Done(r);
        }
        let top = dd.raw_level(a);
        let tasks = (0..dd.arity(top as usize))
            .map(|v| {
                let c = dd.child(a, v);
                (OP_NOT, c, c)
            })
            .collect();
        return Split::Branch { level: top, tasks };
    }
    // Binary connectives (AND = 0, OR = 1, XOR = 2).
    match op {
        0 => {
            if a == ZERO || b == ZERO {
                return Split::Done(ZERO);
            }
            if a == ONE {
                return Split::Done(b);
            }
            if b == ONE || a == b {
                return Split::Done(a);
            }
        }
        1 => {
            if a == ONE || b == ONE {
                return Split::Done(ONE);
            }
            if a == ZERO {
                return Split::Done(b);
            }
            if b == ZERO || a == b {
                return Split::Done(a);
            }
        }
        OP_XOR => {
            if a == ZERO {
                return Split::Done(b);
            }
            if b == ZERO {
                return Split::Done(a);
            }
            if a == b {
                return Split::Done(ZERO);
            }
            if a == ONE {
                return Split::Chain((OP_NOT, b, b));
            }
            if b == ONE {
                return Split::Chain((OP_NOT, a, a));
            }
        }
        _ => unreachable!("unknown binary op"),
    }
    let (_, x, y) = binary_task(op, a, b);
    if let Some(r) = dd.cache_peek((op, x, y, 0)) {
        return Split::Done(r);
    }
    let la = dd.raw_level(x);
    let lb = dd.raw_level(y);
    let top = la.min(lb);
    let tasks = (0..dd.arity(top as usize))
        .map(|v| {
            let ca = if la == top { dd.child(x, v) } else { x };
            let cb = if lb == top { dd.child(y, v) } else { y };
            binary_task(op, ca, cb)
        })
        .collect();
    Split::Branch { level: top, tasks }
}

/// Runs `op(a, b)` as a parallel section when the operands are large
/// enough to be worth it; returns `None` to fall back to the sequential
/// machine. The returned id is a frozen arena id (the session is
/// absorbed before returning).
pub(crate) fn try_par_apply(mgr: &mut MddManager, op: u8, a: u32, b: u32) -> Option<u32> {
    let grain = mgr.par_grain;
    if mgr.dd.node_count_capped(&[a, b], grain) < grain {
        return None;
    }
    let threads = mgr.compile_threads;
    let root = if op == OP_NOT { (OP_NOT, a, a) } else { binary_task(op, a, b) };
    let session = ParSession::new(&mgr.dd);
    let kernel = session.kernel();
    let got = run_tasks(
        &session,
        threads,
        threads * 8,
        root,
        |task| split_apply(kernel, task),
        ApplyScratch::default,
        |ctx, scratch, &(op, a, b)| run_apply(ctx, scratch, op, a, b),
    );
    let parts = session.into_parts();
    let mut roots = [got];
    mgr.dd.absorb_par(parts, &mut roots);
    Some(roots[0])
}

/// One conversion subproblem: a coded-ROBDD node. The layering
/// requirement makes the node id alone a sound task identity (see
/// [`crate::from_bdd`]), so task deduplication is exact.
fn split_convert(
    bdd: &BddManager,
    node: &BddId,
    assignments: &GroupAssignments,
    mv_of_bit: &[Option<usize>],
) -> Split<BddId> {
    let node = *node;
    if node.is_zero() {
        return Split::Done(ZERO);
    }
    if node.is_one() {
        return Split::Done(ONE);
    }
    let bit_level = bdd.level(node).expect("non-terminal");
    let mv = mv_of_bit
        .get(bit_level)
        .copied()
        .flatten()
        .unwrap_or_else(|| panic!("ROBDD level {bit_level} is not mapped by the layout"));
    let tasks =
        assignments[mv].iter().map(|assignment| follow_code(bdd, node, assignment)).collect();
    Split::Branch { level: mv as u32, tasks }
}

/// Runs the coded-ROBDD → ROMDD conversion as a parallel section when
/// the source ROBDD is large enough to be worth it; returns `None` to
/// fall back to the sequential converter. Each worker keeps one
/// `ConvScratch` (dense memo over the ROBDD arena) for all its leaf
/// tasks, and the session cache shares converted subtrees across
/// workers under `OP_CONV` keys — lossily, which only costs
/// recomputation, never canonicity.
pub(crate) fn try_par_convert(
    mgr: &mut MddManager,
    bdd: &BddManager,
    root: BddId,
    assignments: &GroupAssignments,
    mv_of_bit: &[Option<usize>],
) -> Option<u32> {
    let grain = mgr.par_grain;
    if bdd.node_count_capped(root, grain) < grain {
        return None;
    }
    let threads = mgr.compile_threads;
    let session = ParSession::new(&mgr.dd);
    let got = run_tasks(
        &session,
        threads,
        threads * 8,
        root,
        |node| split_convert(bdd, node, assignments, mv_of_bit),
        || {
            let mut scratch = ConvScratch::default();
            scratch.prepare(bdd);
            scratch
        },
        |ctx, scratch, &node| {
            convert_with_ctx(ctx, bdd, node, assignments, mv_of_bit, scratch, true)
        },
    );
    let parts = session.into_parts();
    let mut roots = [got];
    mgr.dd.absorb_par(parts, &mut roots);
    Some(roots[0])
}

#[cfg(test)]
mod tests {
    use crate::coded::CodedLayout;
    use crate::manager::{MddId, MddManager};
    use socy_bdd::{BddId, BddManager};

    fn build(mgr: &mut MddManager) -> MddId {
        let domains = mgr.domains().to_vec();
        let lits: Vec<MddId> = (0..domains.len()).map(|i| mgr.value_at_least(i, 1)).collect();
        let t = mgr.at_least(3, &lits);
        let x = mgr.xor(lits[0], lits[domains.len() - 1]);
        let anded = mgr.and(t, x);
        let n = mgr.not(anded);
        mgr.or(n, t)
    }

    fn eval_all(mgr: &MddManager, f: MddId) -> Vec<bool> {
        let domains = mgr.domains().to_vec();
        let mut out = Vec::new();
        let mut assignment = vec![0usize; domains.len()];
        loop {
            out.push(mgr.eval(f, &assignment));
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return out;
                }
                assignment[i] += 1;
                if assignment[i] < domains[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn parallel_apply_is_bit_identical_across_thread_counts() {
        let domains = vec![3usize, 4, 2, 3, 3, 2];
        let mut seq = MddManager::new(domains.clone());
        let f_seq = build(&mut seq);
        let truth = eval_all(&seq, f_seq);
        for threads in [2usize, 4] {
            let mut par = MddManager::new(domains.clone());
            par.set_compile_threads(threads);
            par.set_par_grain(8); // tiny grain: force parallel sections on a small model
            let f_par = build(&mut par);
            assert_eq!(
                par.inner_node_count(f_par),
                seq.inner_node_count(f_seq),
                "node counts must be thread-count-invariant"
            );
            assert_eq!(eval_all(&par, f_par), truth);
            let stats = par.stats();
            assert!(stats.par_sections > 0, "grain 8 must open parallel sections");
            assert!(stats.par_tasks > 0);
        }
        assert_eq!(seq.stats().par_sections, 0, "sequential manager never parallelises");
    }

    /// Coded ROBDD of a function over the layout's variables, built by
    /// explicit case analysis (small inputs only).
    fn coded_bdd_of<F: Fn(&[usize]) -> bool>(layout: &CodedLayout, f: &F) -> (BddManager, BddId) {
        let mut bdd = BddManager::new(layout.num_bits());
        let domains = layout.domains();
        let mut root = bdd.zero();
        let mut assignment = vec![0usize; domains.len()];
        loop {
            if f(&assignment) {
                let mut term = bdd.one();
                for (var, &value) in assignment.iter().enumerate() {
                    for (level, bit) in layout.assignment_for(var, value) {
                        let lit = bdd.literal(level, bit);
                        term = bdd.and(term, lit);
                    }
                }
                root = bdd.or(root, term);
            }
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return (bdd, root);
                }
                assignment[i] += 1;
                if assignment[i] < domains[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn parallel_conversion_is_bit_identical_across_thread_counts() {
        let layout = CodedLayout::binary_msb_first(&[3, 4, 2, 3, 3]);
        let f = |a: &[usize]| (a[0] + a[1] + a[2] + a[3] + a[4]) % 3 == 1 || a[1] == 3;
        let (bdd, root) = coded_bdd_of(&layout, &f);
        let mut seq = MddManager::new(layout.domains());
        let m_seq = seq.from_coded_bdd(&bdd, root, &layout);
        let truth = eval_all(&seq, m_seq);
        for threads in [2usize, 4] {
            let mut par = MddManager::new(layout.domains());
            par.set_compile_threads(threads);
            par.set_par_grain(4); // tiny grain: force the parallel converter
            let m_par = par.from_coded_bdd(&bdd, root, &layout);
            assert_eq!(
                par.inner_node_count(m_par),
                seq.inner_node_count(m_seq),
                "node counts must be thread-count-invariant"
            );
            assert_eq!(eval_all(&par, m_par), truth);
            assert!(par.stats().par_sections > 0, "grain 4 must open a parallel section");
        }
        assert_eq!(seq.stats().par_sections, 0);
    }

    #[test]
    fn parallel_conversion_is_canonical_within_one_manager() {
        // Converting twice in the same parallel manager yields the same id,
        // and matches a sequential conversion in a fresh manager node-for-node.
        let layout = CodedLayout::binary_msb_first(&[4, 4, 3]);
        let f = |a: &[usize]| a[0] * a[1] >= 4 || a[2] == 1;
        let (bdd, root) = coded_bdd_of(&layout, &f);
        let mut par = MddManager::new(layout.domains());
        par.set_compile_threads(3);
        par.set_par_grain(4);
        let a = par.from_coded_bdd(&bdd, root, &layout);
        let b = par.from_coded_bdd(&bdd, root, &layout);
        assert_eq!(a, b, "conversion must be canonical across repeated runs");
    }
}
