//! The paper's bottom-up, layer-by-layer coded-ROBDD → ROMDD conversion.
//!
//! The coded ROBDD is viewed as a stack of *layers*, one per
//! multiple-valued variable, each layer containing the ROBDD nodes whose
//! binary variable encodes that multiple-valued variable. *Entry nodes* of
//! a layer are the nodes with incoming edges from other layers (plus the
//! root). Layers are processed bottom-up: for every entry node and every
//! domain value the group's codeword is "simulated" downwards until a node
//! of a lower layer (or a terminal) is reached, and the corresponding
//! already-converted ROMDD node becomes the child for that value.
//!
//! The top-down converter in [`crate::from_bdd`] produces the same
//! canonical ROMDD; both are kept because the layered procedure is the one
//! described in the paper (and it exercises the algorithm the way the
//! original implementation did), while the top-down version is the one the
//! analysis pipeline uses by default.

use socy_bdd::{BddId, BddManager};
use socy_dd::hash::FxHashMap;

use crate::coded::CodedLayout;
use crate::from_bdd::follow_code;
use crate::manager::{MddId, MddManager};

impl MddManager {
    /// Converts the coded ROBDD rooted at `root` into an ROMDD using the
    /// paper's bottom-up layer algorithm.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`MddManager::from_coded_bdd`]: mismatched domains or ROBDD levels
    /// not covered by the layout.
    pub fn from_coded_bdd_layered(
        &mut self,
        bdd: &BddManager,
        root: BddId,
        layout: &CodedLayout,
    ) -> MddId {
        assert_eq!(
            self.domains(),
            layout.domains().as_slice(),
            "MddManager domains must match the coded layout"
        );
        if root.is_zero() {
            return MddId::ZERO;
        }
        if root.is_one() {
            return MddId::ONE;
        }
        let mv_of_bit = layout.mv_of_bit();
        let layer_of = |id: BddId| -> usize {
            let level = bdd.level(id).expect("non-terminal");
            mv_of_bit
                .get(level)
                .copied()
                .flatten()
                .unwrap_or_else(|| panic!("ROBDD level {level} is not mapped by the layout"))
        };

        // Collect the entry nodes of every layer: the root plus every node whose
        // incoming edge crosses a layer boundary. The walk is over *edge
        // values*, not physical nodes: with complemented edges one
        // physical node can be reached under both parities, and each
        // parity denotes the complement function of the other — two
        // distinct entries converting to two different ROMDD nodes.
        // (`low`/`high` propagate the edge's parity into the cofactors.)
        let mut entries: Vec<Vec<BddId>> = vec![Vec::new(); layout.num_vars()];
        let mut seen_entry: FxHashMap<BddId, ()> = FxHashMap::default();
        entries[layer_of(root)].push(root);
        seen_entry.insert(root, ());
        let mut visited: FxHashMap<BddId, ()> = FxHashMap::default();
        let mut stack = vec![root];
        visited.insert(root, ());
        while let Some(node) = stack.pop() {
            let node_layer = layer_of(node);
            for child in [bdd.low(node), bdd.high(node)] {
                if child.is_terminal() {
                    continue;
                }
                if layer_of(child) != node_layer && seen_entry.insert(child, ()).is_none() {
                    entries[layer_of(child)].push(child);
                }
                if visited.insert(child, ()).is_none() {
                    stack.push(child);
                }
            }
        }

        // Process layers bottom-up.
        let mut mapping: FxHashMap<BddId, MddId> = FxHashMap::default();
        mapping.insert(BddId::ZERO, MddId::ZERO);
        mapping.insert(BddId::ONE, MddId::ONE);
        for layer in (0..layout.num_vars()).rev() {
            // Clone the entry list to avoid holding a borrow across `mk`.
            let layer_entries = entries[layer].clone();
            for entry in layer_entries {
                let domain = layout.vars[layer].domain;
                let mut children = Vec::with_capacity(domain);
                for value in 0..domain {
                    let below = follow_code(bdd, entry, &layout.assignment_for(layer, value));
                    let mapped = *mapping.get(&below).unwrap_or_else(|| {
                        panic!("simulation reached an unprocessed node {below}")
                    });
                    children.push(mapped);
                }
                let node = self.mk(layer, children);
                mapping.insert(entry, node);
            }
        }
        mapping[&root]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coded::MvVarLayout;

    /// Builds a coded ROBDD of `f` by summing minterms (small inputs only).
    fn coded_bdd_of<F: Fn(&[usize]) -> bool>(layout: &CodedLayout, f: &F) -> (BddManager, BddId) {
        let mut bdd = BddManager::new(layout.num_bits());
        let domains = layout.domains();
        let mut root = bdd.zero();
        let mut assignment = vec![0usize; domains.len()];
        loop {
            if f(&assignment) {
                let mut term = bdd.one();
                for (var, &value) in assignment.iter().enumerate() {
                    for (level, bit) in layout.assignment_for(var, value) {
                        let lit = bdd.literal(level, bit);
                        term = bdd.and(term, lit);
                    }
                }
                root = bdd.or(root, term);
            }
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return (bdd, root);
                }
                assignment[i] += 1;
                if assignment[i] < domains[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    fn agree_with_top_down<F: Fn(&[usize]) -> bool>(layout: &CodedLayout, f: F) {
        let (bdd, root) = coded_bdd_of(layout, &f);
        let mut mdd = MddManager::new(layout.domains());
        let top_down = mdd.from_coded_bdd(&bdd, root, layout);
        let layered = mdd.from_coded_bdd_layered(&bdd, root, layout);
        assert_eq!(
            top_down, layered,
            "both conversions must produce the identical canonical ROMDD"
        );
    }

    #[test]
    fn agrees_on_indicators_and_composites() {
        let layout = CodedLayout::binary_msb_first(&[3, 4, 2]);
        agree_with_top_down(&layout, |a| a[0] == 2);
        agree_with_top_down(&layout, |a| (a[0] == 2 && a[1] >= 2) || a[2] == 1);
        agree_with_top_down(&layout, |a| a[0] + a[1] + a[2] >= 4);
    }

    #[test]
    fn agrees_on_constants() {
        let layout = CodedLayout::binary_msb_first(&[3, 3]);
        agree_with_top_down(&layout, |_| true);
        agree_with_top_down(&layout, |_| false);
    }

    #[test]
    fn agrees_with_dont_care_codes() {
        let layout = CodedLayout::binary_msb_first(&[5, 3]);
        agree_with_top_down(&layout, |a| a[0] == 4 || (a[0] == 0 && a[1] == 2));
        agree_with_top_down(&layout, |a| a[0] % 3 == a[1]);
    }

    #[test]
    fn agrees_with_lsb_first_groups() {
        let domain = 4usize;
        let codes_lsb: Vec<Vec<bool>> =
            (0..domain).map(|v| vec![v & 1 == 1, v >> 1 & 1 == 1]).collect();
        let layout = CodedLayout::new(vec![
            MvVarLayout { domain, bit_levels: vec![0, 1], codes: codes_lsb.clone() },
            MvVarLayout { domain, bit_levels: vec![2, 3], codes: codes_lsb },
        ])
        .unwrap();
        agree_with_top_down(&layout, |a| a[0] > a[1]);
        agree_with_top_down(&layout, |a| a[0] == a[1]);
    }

    #[test]
    fn evaluates_correctly_standalone() {
        // Also verify the layered result against the reference function directly.
        let layout = CodedLayout::binary_msb_first(&[3, 3]);
        let f = |a: &[usize]| a[0] != a[1];
        let (bdd, root) = coded_bdd_of(&layout, &f);
        let mut mdd = MddManager::new(layout.domains());
        let converted = mdd.from_coded_bdd_layered(&bdd, root, &layout);
        for x in 0..3 {
            for y in 0..3 {
                assert_eq!(mdd.eval(converted, &[x, y]), f(&[x, y]));
            }
        }
    }
}
