//! Probability evaluation on ROMDDs.
//!
//! This is the computation at the heart of the yield method: given the
//! ROMDD of `G(W, V_1, …, V_M)` and the (independent) distributions of the
//! multiple-valued random variables, a single depth-first traversal
//! computes `P(G = 1)` — exactly the procedure illustrated with the
//! paper's Figure 2 example.

use crate::manager::{MddId, MddManager};

impl MddManager {
    /// Probability that the boolean function rooted at `f` evaluates to 1
    /// when the variable at every level `l` independently takes value `v`
    /// with probability `probabilities[l][v]`.
    ///
    /// Every `probabilities[l]` must have exactly `domain(l)` entries and
    /// (for a meaningful result) sum to 1; levels skipped by the diagram
    /// then contribute a factor of 1 automatically.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities` is shorter than a level appearing in `f`
    /// or an entry has the wrong arity.
    pub fn probability(&mut self, f: MddId, probabilities: &[Vec<f64>]) -> f64 {
        let domains = &self.domains;
        self.dd.probability(f.0, |level, value| {
            let dist = &probabilities[level];
            assert_eq!(
                dist.len(),
                domains[level],
                "probability vector arity mismatch at level {level}"
            );
            dist[value]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_of_indicators() {
        let mut mgr = MddManager::new(vec![3]);
        let dist = vec![vec![0.2, 0.3, 0.5]];
        let is1 = mgr.value_is(0, 1);
        assert!((mgr.probability(is1, &dist) - 0.3).abs() < 1e-12);
        let ge1 = mgr.value_at_least(0, 1);
        assert!((mgr.probability(ge1, &dist) - 0.8).abs() < 1e-12);
        assert_eq!(mgr.probability(mgr.one(), &dist), 1.0);
        assert_eq!(mgr.probability(mgr.zero(), &dist), 0.0);
    }

    #[test]
    fn probability_of_composite_function() {
        // Two variables; f = (x0 >= 1) AND (x1 == 2), independent.
        let mut mgr = MddManager::new(vec![2, 3]);
        let a = mgr.value_at_least(0, 1);
        let b = mgr.value_is(1, 2);
        let f = mgr.and(a, b);
        let dist = vec![vec![0.4, 0.6], vec![0.1, 0.2, 0.7]];
        assert!((mgr.probability(f, &dist) - 0.6 * 0.7).abs() < 1e-12);
        let g = mgr.or(a, b);
        // P(a or b) = 1 - P(!a)P(!b) by independence.
        assert!((mgr.probability(g, &dist) - (1.0 - 0.4 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn probability_matches_enumeration() {
        let mut mgr = MddManager::new(vec![3, 2, 4]);
        let a = mgr.value_is(0, 2);
        let b = mgr.value_is(1, 1);
        let c = mgr.value_at_least(2, 3);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let dist = vec![vec![0.5, 0.25, 0.25], vec![0.9, 0.1], vec![0.4, 0.3, 0.2, 0.1]];
        // Brute-force enumeration.
        let mut expect = 0.0;
        for x0 in 0..3 {
            for x1 in 0..2 {
                for x2 in 0..4 {
                    if mgr.eval(f, &[x0, x1, x2]) {
                        expect += dist[0][x0] * dist[1][x1] * dist[2][x2];
                    }
                }
            }
        }
        assert!((mgr.probability(f, &dist) - expect).abs() < 1e-12);
    }

    #[test]
    fn paper_figure_2_structure() {
        // The paper's Figure 2: F(x1,x2,x3) = x1·x2 + x3 with M = 2 defects and
        // C = 3 components. Variables of G in the order v1, v2, w with domains
        // {1,2,3} (coded 0..2) for v's and {0,1,2,3} for w.
        //
        // Here we build G directly with MDD operations and check the probability
        // against a hand enumeration; the end-to-end pipeline test in the core
        // crate reproduces the same number through the coded-ROBDD route.
        let m = 2usize;
        let domains = vec![3, 3, m + 2]; // v1, v2, w
        let mut mgr = MddManager::new(domains);
        let w_level = 2;
        // x_i = OR_l ( I_{>= l}(w) AND I_i(v_l) )
        let mut x = Vec::new();
        for comp in 0..3usize {
            let mut terms = Vec::new();
            for l in 1..=m {
                let ge = mgr.value_at_least(w_level, l);
                let hit = mgr.value_is(l - 1, comp);
                terms.push(mgr.and(ge, hit));
            }
            x.push(mgr.or_many(terms));
        }
        // F = x1 x2 + x3, G = I_{M+1}(w) OR F(...)
        let x12 = mgr.and(x[0], x[1]);
        let f_sub = mgr.or(x12, x[2]);
        let clamp = mgr.value_is(w_level, m + 1);
        let g = mgr.or(clamp, f_sub);

        let q = vec![0.5, 0.3, 0.15, 0.05]; // Q'_0, Q'_1, Q'_2, P(W = M+1)
        let p = vec![0.2, 0.3, 0.5]; // P'_1..P'_3
        let dist = vec![p.clone(), p.clone(), q.clone()];
        let p_g = mgr.probability(g, &dist);

        // Hand enumeration of 1 - Y_M = P(G = 1).
        let mut expect = q[3]; // W = M+1 always makes G = 1
        for (w, &qw) in q.iter().enumerate().take(m + 1) {
            // enumerate v1, v2 (only the first w defects matter)
            for v1 in 0..3 {
                for v2 in 0..3 {
                    let mut failed = [false; 3];
                    if w >= 1 {
                        failed[v1] = true;
                    }
                    if w >= 2 {
                        failed[v2] = true;
                    }
                    let f_val = (failed[0] && failed[1]) || failed[2];
                    if f_val {
                        expect += qw * p[v1] * p[v2];
                    }
                }
            }
        }
        assert!((p_g - expect).abs() < 1e-12, "got {p_g}, expected {expect}");
    }
}
