//! Boolean operations on (boolean-valued) ROMDDs.
//!
//! These are used to build ROMDDs *directly* from a multiple-valued gate
//! description — the cross-check path for the coded-ROBDD route the paper
//! recommends — and by tests.
//!
//! Like the ROBDD connectives, the apply kernels are **iterative**: an
//! explicit work-stack machine drives NOT and the binary connectives,
//! with the n-ary cofactor results accumulated on a result stack held in
//! a scratch arena owned by the manager (no allocation per operation).

use crate::manager::{MddId, MddManager, TERMINAL_LEVEL};
use socy_dd::{DdCtx, ONE, ZERO};

pub(crate) const OP_AND: u8 = 0;
pub(crate) const OP_OR: u8 = 1;
pub(crate) const OP_XOR: u8 = 2;
pub(crate) const OP_NOT: u8 = 3;

/// One unit of work of the iterative apply machine. `Eval` asks for
/// `op(a, b)` (NOT carries the operand twice); `Combine` fires once the
/// level's `arity(top)` cofactor results are on the result stack.
#[derive(Debug, Clone, Copy)]
enum Frame {
    Eval { op: u8, a: u32, b: u32 },
    Combine { op: u8, a: u32, b: u32, top: u32 },
}

/// Reusable buffers of the apply machine.
#[derive(Debug, Clone, Default)]
pub(crate) struct ApplyScratch {
    frames: Vec<Frame>,
    results: Vec<u32>,
}

impl MddManager {
    /// Logical negation of a boolean-valued ROMDD.
    pub fn not(&mut self, f: MddId) -> MddId {
        self.apply_root(OP_NOT, f.0, f.0)
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: MddId, g: MddId) -> MddId {
        self.binary(OP_AND, f, g)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: MddId, g: MddId) -> MddId {
        self.binary(OP_OR, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: MddId, g: MddId) -> MddId {
        self.binary(OP_XOR, f, g)
    }

    /// Conjunction of many operands.
    pub fn and_many(&mut self, operands: impl IntoIterator<Item = MddId>) -> MddId {
        let mut acc = MddId::ONE;
        for op in operands {
            acc = self.and(acc, op);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of many operands.
    pub fn or_many(&mut self, operands: impl IntoIterator<Item = MddId>) -> MddId {
        let mut acc = MddId::ZERO;
        for op in operands {
            acc = self.or(acc, op);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// "At least `k` of the operands are true".
    pub fn at_least(&mut self, k: usize, operands: &[MddId]) -> MddId {
        let n = operands.len();
        if k == 0 {
            return MddId::ONE;
        }
        if k > n {
            return MddId::ZERO;
        }
        let mut state = vec![MddId::ZERO; k + 1];
        state[0] = MddId::ONE;
        for &op in operands {
            for j in (1..=k).rev() {
                let with_op = self.and(state[j - 1], op);
                state[j] = self.or(state[j], with_op);
            }
        }
        state[k]
    }

    fn binary(&mut self, op: u8, f: MddId, g: MddId) -> MddId {
        self.apply_root(op, f.0, g.0)
    }

    /// Runs the apply machine on the sequential kernel, reusing the
    /// manager's scratch arena (or dispatches a parallel section for
    /// large operands when compile-threads are enabled).
    fn apply_root(&mut self, op: u8, a: u32, b: u32) -> MddId {
        if self.compile_threads > 1 {
            if let Some(r) = crate::par::try_par_apply(self, op, a, b) {
                return MddId(r);
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = run_apply(&mut self.dd, &mut scratch, op, a, b);
        self.scratch = scratch;
        MddId(result)
    }
}

/// The explicit-stack apply machine serving NOT, AND, OR and XOR over
/// n-ary nodes, generic over the kernel view (sequential kernel or a
/// parallel section's worker handle, where it acts as the leaf
/// executor). Cofactor `Eval`s are pushed in reverse domain order, so
/// their results accumulate on the result stack in value order and
/// `Combine` consumes exactly the tail `arity(top)` slots.
pub(crate) fn run_apply<C: DdCtx>(
    ctx: &mut C,
    scratch: &mut ApplyScratch,
    op: u8,
    a: u32,
    b: u32,
) -> u32 {
    debug_assert!(scratch.frames.is_empty() && scratch.results.is_empty());
    scratch.frames.push(Frame::Eval { op, a, b });
    while let Some(frame) = scratch.frames.pop() {
        match frame {
            Frame::Eval { op, a, b } => eval_step(ctx, op, a, b, scratch),
            Frame::Combine { op, a, b, top } => {
                let domain = ctx.arity(top as usize);
                let start = scratch.results.len() - domain;
                let r = ctx.mk(top, &scratch.results[start..]);
                scratch.results.truncate(start);
                ctx.cache_insert((op, a, b, 0), r);
                scratch.results.push(r);
            }
        }
    }
    let result = scratch.results.pop().expect("the root frame pushed a result");
    debug_assert!(scratch.results.is_empty());
    result
}

/// One `Eval` step: terminal rules, cache probe, or expansion.
fn eval_step<C: DdCtx>(ctx: &mut C, op: u8, a: u32, b: u32, scratch: &mut ApplyScratch) {
    if op == OP_NOT {
        if a == ZERO {
            scratch.results.push(ONE);
            return;
        }
        if a == ONE {
            scratch.results.push(ZERO);
            return;
        }
        if let Some(r) = ctx.cache_get((OP_NOT, a, a, 0)) {
            scratch.results.push(r);
            return;
        }
        let top = ctx.raw_level(a);
        scratch.frames.push(Frame::Combine { op, a, b: a, top });
        for v in (0..ctx.arity(top as usize)).rev() {
            let child = ctx.child(a, v);
            scratch.frames.push(Frame::Eval { op, a: child, b: child });
        }
        return;
    }
    match op {
        OP_AND => {
            if a == ZERO || b == ZERO {
                scratch.results.push(ZERO);
                return;
            }
            if a == ONE {
                scratch.results.push(b);
                return;
            }
            if b == ONE || a == b {
                scratch.results.push(a);
                return;
            }
        }
        OP_OR => {
            if a == ONE || b == ONE {
                scratch.results.push(ONE);
                return;
            }
            if a == ZERO {
                scratch.results.push(b);
                return;
            }
            if b == ZERO || a == b {
                scratch.results.push(a);
                return;
            }
        }
        OP_XOR => {
            if a == ZERO {
                scratch.results.push(b);
                return;
            }
            if b == ZERO {
                scratch.results.push(a);
                return;
            }
            if a == b {
                scratch.results.push(ZERO);
                return;
            }
            if a == ONE {
                scratch.frames.push(Frame::Eval { op: OP_NOT, a: b, b });
                return;
            }
            if b == ONE {
                scratch.frames.push(Frame::Eval { op: OP_NOT, a, b: a });
                return;
            }
        }
        _ => unreachable!("unknown op"),
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    if let Some(r) = ctx.cache_get((op, x, y, 0)) {
        scratch.results.push(r);
        return;
    }
    let la = ctx.raw_level(x);
    let lb = ctx.raw_level(y);
    let top = la.min(lb);
    debug_assert_ne!(top, TERMINAL_LEVEL);
    scratch.frames.push(Frame::Combine { op, a: x, b: y, top });
    for v in (0..ctx.arity(top as usize)).rev() {
        let ca = if la == top { ctx.child(x, v) } else { x };
        let cb = if lb == top { ctx.child(y, v) } else { y };
        scratch.frames.push(Frame::Eval { op, a: ca, b: cb });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive comparison over all assignments of the manager's variables.
    fn check<F: Fn(&[usize]) -> bool>(mgr: &MddManager, f: MddId, reference: F) {
        let domains = mgr.domains().to_vec();
        let mut assignment = vec![0usize; domains.len()];
        loop {
            assert_eq!(mgr.eval(f, &assignment), reference(&assignment), "{assignment:?}");
            // Advance mixed-radix counter.
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return;
                }
                assignment[i] += 1;
                if assignment[i] < domains[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn connectives_on_multivalued_variables() {
        let mut mgr = MddManager::new(vec![3, 4, 2]);
        let a = mgr.value_is(0, 2);
        let b = mgr.value_at_least(1, 2);
        let c = mgr.value_is(2, 1);
        let and = mgr.and(a, b);
        check(&mgr, and, |x| x[0] == 2 && x[1] >= 2);
        let or = mgr.or(and, c);
        check(&mgr, or, |x| (x[0] == 2 && x[1] >= 2) || x[2] == 1);
        let xor = mgr.xor(a, c);
        check(&mgr, xor, |x| (x[0] == 2) ^ (x[2] == 1));
        let not = mgr.not(or);
        check(&mgr, not, |x| !((x[0] == 2 && x[1] >= 2) || x[2] == 1));
    }

    #[test]
    fn de_morgan_canonicity() {
        let mut mgr = MddManager::new(vec![3, 3]);
        let a = mgr.value_at_least(0, 1);
        let b = mgr.value_is(1, 0);
        let and = mgr.and(a, b);
        let lhs = mgr.not(and);
        let na = mgr.not(a);
        let nb = mgr.not(b);
        let rhs = mgr.or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn many_and_threshold() {
        let mut mgr = MddManager::new(vec![2, 2, 2, 2]);
        let lits: Vec<MddId> = (0..4).map(|i| mgr.value_is(i, 1)).collect();
        let all = mgr.and_many(lits.iter().copied());
        check(&mgr, all, |x| x.iter().all(|&v| v == 1));
        let any = mgr.or_many(lits.iter().copied());
        check(&mgr, any, |x| x.contains(&1));
        let two = mgr.at_least(2, &lits);
        check(&mgr, two, |x| x.iter().filter(|&&v| v == 1).count() >= 2);
        assert_eq!(mgr.at_least(0, &lits), mgr.one());
        assert_eq!(mgr.at_least(5, &lits), mgr.zero());
        assert_eq!(mgr.and_many(std::iter::empty()), mgr.one());
        assert_eq!(mgr.or_many(std::iter::empty()), mgr.zero());
    }

    #[test]
    fn xor_terminal_cases() {
        let mut mgr = MddManager::new(vec![3]);
        let a = mgr.value_is(0, 1);
        assert_eq!(mgr.xor(a, mgr.zero()), a);
        assert_eq!(mgr.xor(mgr.zero(), a), a);
        assert_eq!(mgr.xor(a, a), mgr.zero());
        let na = mgr.not(a);
        assert_eq!(mgr.xor(a, mgr.one()), na);
    }
}
