//! Boolean operations on (boolean-valued) ROMDDs.
//!
//! These are used to build ROMDDs *directly* from a multiple-valued gate
//! description — the cross-check path for the coded-ROBDD route the paper
//! recommends — and by tests.

use crate::manager::{MddId, MddManager, TERMINAL_LEVEL};

const OP_AND: u8 = 0;
const OP_OR: u8 = 1;
const OP_XOR: u8 = 2;
const OP_NOT: u8 = 3;

impl MddManager {
    /// Logical negation of a boolean-valued ROMDD.
    pub fn not(&mut self, f: MddId) -> MddId {
        if f.is_zero() {
            return MddId::ONE;
        }
        if f.is_one() {
            return MddId::ZERO;
        }
        if let Some(r) = self.dd.cache_get((OP_NOT, f.0, f.0, 0)) {
            return MddId(r);
        }
        let level = self.level(f).expect("non-terminal");
        let children = self.children(f);
        let new_children: Vec<MddId> = children.into_iter().map(|c| self.not(c)).collect();
        let r = self.mk(level, new_children);
        self.dd.cache_insert((OP_NOT, f.0, f.0, 0), r.0);
        r
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: MddId, g: MddId) -> MddId {
        self.binary(OP_AND, f, g)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: MddId, g: MddId) -> MddId {
        self.binary(OP_OR, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: MddId, g: MddId) -> MddId {
        self.binary(OP_XOR, f, g)
    }

    /// Conjunction of many operands.
    pub fn and_many(&mut self, operands: impl IntoIterator<Item = MddId>) -> MddId {
        let mut acc = MddId::ONE;
        for op in operands {
            acc = self.and(acc, op);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of many operands.
    pub fn or_many(&mut self, operands: impl IntoIterator<Item = MddId>) -> MddId {
        let mut acc = MddId::ZERO;
        for op in operands {
            acc = self.or(acc, op);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// "At least `k` of the operands are true".
    pub fn at_least(&mut self, k: usize, operands: &[MddId]) -> MddId {
        let n = operands.len();
        if k == 0 {
            return MddId::ONE;
        }
        if k > n {
            return MddId::ZERO;
        }
        let mut state = vec![MddId::ZERO; k + 1];
        state[0] = MddId::ONE;
        for &op in operands {
            for j in (1..=k).rev() {
                let with_op = self.and(state[j - 1], op);
                state[j] = self.or(state[j], with_op);
            }
        }
        state[k]
    }

    fn binary(&mut self, op: u8, f: MddId, g: MddId) -> MddId {
        match op {
            OP_AND => {
                if f.is_zero() || g.is_zero() {
                    return MddId::ZERO;
                }
                if f.is_one() {
                    return g;
                }
                if g.is_one() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            OP_OR => {
                if f.is_one() || g.is_one() {
                    return MddId::ONE;
                }
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            OP_XOR => {
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
                if f == g {
                    return MddId::ZERO;
                }
                if f.is_one() {
                    return self.not(g);
                }
                if g.is_one() {
                    return self.not(f);
                }
            }
            _ => unreachable!("unknown op"),
        }
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.dd.cache_get((op, a.0, b.0, 0)) {
            return MddId(r);
        }
        let la = self.raw_level(a);
        let lb = self.raw_level(b);
        let top = la.min(lb);
        debug_assert_ne!(top, TERMINAL_LEVEL);
        let domain = self.domain(top as usize);
        let mut children = Vec::with_capacity(domain);
        for v in 0..domain {
            let ca = if la == top { self.child(a, v) } else { a };
            let cb = if lb == top { self.child(b, v) } else { b };
            children.push(self.binary(op, ca, cb));
        }
        let r = self.mk(top as usize, children);
        self.dd.cache_insert((op, a.0, b.0, 0), r.0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive comparison over all assignments of the manager's variables.
    fn check<F: Fn(&[usize]) -> bool>(mgr: &MddManager, f: MddId, reference: F) {
        let domains = mgr.domains().to_vec();
        let mut assignment = vec![0usize; domains.len()];
        loop {
            assert_eq!(mgr.eval(f, &assignment), reference(&assignment), "{assignment:?}");
            // Advance mixed-radix counter.
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return;
                }
                assignment[i] += 1;
                if assignment[i] < domains[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn connectives_on_multivalued_variables() {
        let mut mgr = MddManager::new(vec![3, 4, 2]);
        let a = mgr.value_is(0, 2);
        let b = mgr.value_at_least(1, 2);
        let c = mgr.value_is(2, 1);
        let and = mgr.and(a, b);
        check(&mgr, and, |x| x[0] == 2 && x[1] >= 2);
        let or = mgr.or(and, c);
        check(&mgr, or, |x| (x[0] == 2 && x[1] >= 2) || x[2] == 1);
        let xor = mgr.xor(a, c);
        check(&mgr, xor, |x| (x[0] == 2) ^ (x[2] == 1));
        let not = mgr.not(or);
        check(&mgr, not, |x| !((x[0] == 2 && x[1] >= 2) || x[2] == 1));
    }

    #[test]
    fn de_morgan_canonicity() {
        let mut mgr = MddManager::new(vec![3, 3]);
        let a = mgr.value_at_least(0, 1);
        let b = mgr.value_is(1, 0);
        let and = mgr.and(a, b);
        let lhs = mgr.not(and);
        let na = mgr.not(a);
        let nb = mgr.not(b);
        let rhs = mgr.or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn many_and_threshold() {
        let mut mgr = MddManager::new(vec![2, 2, 2, 2]);
        let lits: Vec<MddId> = (0..4).map(|i| mgr.value_is(i, 1)).collect();
        let all = mgr.and_many(lits.iter().copied());
        check(&mgr, all, |x| x.iter().all(|&v| v == 1));
        let any = mgr.or_many(lits.iter().copied());
        check(&mgr, any, |x| x.contains(&1));
        let two = mgr.at_least(2, &lits);
        check(&mgr, two, |x| x.iter().filter(|&&v| v == 1).count() >= 2);
        assert_eq!(mgr.at_least(0, &lits), mgr.one());
        assert_eq!(mgr.at_least(5, &lits), mgr.zero());
        assert_eq!(mgr.and_many(std::iter::empty()), mgr.one());
        assert_eq!(mgr.or_many(std::iter::empty()), mgr.zero());
    }

    #[test]
    fn xor_terminal_cases() {
        let mut mgr = MddManager::new(vec![3]);
        let a = mgr.value_is(0, 1);
        assert_eq!(mgr.xor(a, mgr.zero()), a);
        assert_eq!(mgr.xor(mgr.zero(), a), a);
        assert_eq!(mgr.xor(a, a), mgr.zero());
        let na = mgr.not(a);
        assert_eq!(mgr.xor(a, mgr.one()), na);
    }
}
