//! A from-scratch ROMDD (reduced ordered multiple-valued decision diagram)
//! engine, plus the coded-ROBDD → ROMDD conversion used by the DSN'03
//! combinatorial yield method.
//!
//! An ROMDD represents a boolean-valued function of *multiple-valued*
//! variables: variable `x_i` at level `i` ranges over the finite domain
//! `{0, …, d_i − 1}` and every non-terminal node at level `i` has `d_i`
//! outgoing edges, one per domain value. As with ROBDDs, hash-consing plus
//! the redundant-node rule make the representation canonical for a fixed
//! variable order; both disciplines are provided by the shared
//! [`socy_dd`] kernel, over which this crate is a thin multi-valued
//! layer.
//!
//! The yield method evaluates `P(G(W, V_1, …, V_M) = 1)` on the ROMDD of
//! the generalized fault tree `G`; this crate provides:
//!
//! * the node manager ([`MddManager`]) with indicator constructors,
//!   boolean operations ([`MddManager::and`], [`MddManager::or`],
//!   [`MddManager::not`]) and evaluation;
//! * probability evaluation under independent multiple-valued variables
//!   ([`MddManager::probability`]), the paper's depth-first computation;
//! * conversion of a *coded ROBDD* (binary-encoded, with bit groups kept
//!   contiguous and ordered like the multiple-valued variables) into the
//!   ROMDD, in two independent implementations: a top-down memoized
//!   converter ([`MddManager::from_coded_bdd`]) and the paper's bottom-up
//!   layer-by-layer procedure ([`MddManager::from_coded_bdd_layered`]);
//! * DOT export.
//!
//! # Example
//!
//! ```
//! use socy_mdd::MddManager;
//!
//! // One ternary variable; f(x) = 1 iff x >= 1.
//! let mut mgr = MddManager::new(vec![3]);
//! let f = mgr.value_at_least(0, 1);
//! assert!(!mgr.eval(f, &[0]));
//! assert!(mgr.eval(f, &[2]));
//! let p = mgr.probability(f, &[vec![0.2, 0.3, 0.5]]);
//! assert!((p - 0.8).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod coded;
pub mod dot;
pub mod from_bdd;
pub mod layered;
pub mod manager;
pub mod par;
pub mod prob;

pub use coded::{CodedLayout, MvVarLayout};
pub use manager::{MddId, MddManager};

// Each parallel sweep worker (socy-exec) owns private managers; assert
// the thread bounds the executor relies on (see socy-dd for rationale).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MddManager>();
};
