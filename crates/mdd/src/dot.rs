//! Graphviz (DOT) export of ROMDDs.

use socy_dd::dot::{level_label, DotWriter};

use crate::manager::{MddId, MddManager};

impl MddManager {
    /// Renders the ROMDD rooted at `f` in Graphviz DOT syntax.
    ///
    /// Edges leading to the same child are merged and labelled with the set
    /// of domain values following them, mirroring the edge-labelling used
    /// by the paper's figures. `var_names` optionally maps levels to names.
    pub fn to_dot(&self, f: MddId, var_names: Option<&[String]>) -> String {
        let mut dot = DotWriter::new("romdd");
        for id in self.reachable(f) {
            if id.is_terminal() {
                continue;
            }
            let level = self.level(id).expect("non-terminal");
            dot.node(id.0, &level_label(var_names, level));
            // Merge parallel edges by destination.
            let mut by_child: Vec<(MddId, Vec<usize>)> = Vec::new();
            for (value, child) in self.children(id).into_iter().enumerate() {
                match by_child.iter_mut().find(|(c, _)| *c == child) {
                    Some((_, values)) => values.push(value),
                    None => by_child.push((child, vec![value])),
                }
            }
            for (child, values) in by_child {
                let label: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                dot.edge(id.0, child.0, Some(&format!("label=\"{}\"", label.join(","))));
            }
        }
        dot.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_merges_parallel_edges() {
        let mut mgr = MddManager::new(vec![4]);
        let f = mgr.value_at_least(0, 2);
        let dot = mgr.to_dot(f, None);
        assert!(dot.contains("label=\"0,1\""));
        assert!(dot.contains("label=\"2,3\""));
        assert!(dot.contains("label=\"x0\""));
    }

    #[test]
    fn dot_uses_names_and_terminals() {
        let mut mgr = MddManager::new(vec![2, 3]);
        let a = mgr.value_is(1, 0);
        let f = mgr.mk(0, vec![MddId::ZERO, a]);
        let names = vec!["w".to_string(), "v1".to_string()];
        let dot = mgr.to_dot(f, Some(&names));
        assert!(dot.contains("label=\"w\""));
        assert!(dot.contains("label=\"v1\""));
        assert!(dot.contains("node0 [label=\"0\""));
        assert!(dot.trim_end().ends_with('}'));
    }
}
