//! Top-down conversion of a coded ROBDD into the ROMDD.
//!
//! The paper builds the ROMDD from the coded ROBDD bottom-up, layer by
//! layer (implemented in [`crate::layered`]). This module provides an
//! equivalent *top-down, memoized* converter which is simpler to reason
//! about and never materialises nodes that end up unreachable; the two
//! implementations are cross-checked against each other in the test suites
//! (they must produce the identical canonical ROMDD).
//!
//! The key observation making the conversion possible is the layering
//! requirement: because all bits encoding multiple-valued variable `x_k`
//! sit above all bits of `x_{k+1}, …` in the ROBDD order, every ROBDD node
//! reached after assigning a full group of bits represents a function of
//! the *remaining* multiple-valued variables only, so it maps to a unique
//! ROMDD node — the memoization key is just the ROBDD node id.

use socy_bdd::{BddId, BddManager};
use socy_dd::DdCtx;

use crate::coded::CodedLayout;
use crate::manager::{MddId, MddManager};

/// Sentinel of the dense conversion memo ("not converted yet"). Node ids
/// are arena indices, so `u32::MAX` can never be a real ROMDD id.
const UNSET: u32 = u32::MAX;

/// Operation tag of conversion results in a parallel section's cache
/// (tags 0–3 are the connectives, 4 is ITE in the ROBDD engine). Keyed
/// on the *ROBDD* edge value — the node id including any complement
/// bit, since `f` and `¬f` convert to different ROMDD nodes — which the
/// layering requirement makes sound; only used inside one conversion's
/// session cache, never the kernel's.
pub(crate) const OP_CONV: u8 = 5;

/// Index of a coded-ROBDD edge in the dense conversion memo: with
/// complemented edges one physical node can be reached under both
/// parities and converts to two different ROMDD nodes, so the memo holds
/// two slots per physical node — `(strip(id) << 1) | parity`.
#[inline]
fn memo_index(raw_edge: u32) -> usize {
    ((socy_dd::strip(raw_edge) as usize) << 1) | usize::from(socy_dd::is_complemented(raw_edge))
}

/// Precomputed codeword assignments: `assignments[mv][value]` is the
/// sorted `(bit_level, bit)` list encoding `value` for group `mv`.
pub(crate) type GroupAssignments = Vec<Vec<Vec<(usize, bool)>>>;

/// One unit of work of the iterative converter: `Visit` resolves a coded
/// ROBDD node into the memo; `Build` fires once every node reached below
/// the group's codewords is converted and hash-conses the ROMDD node.
#[derive(Debug, Clone, Copy)]
enum ConvFrame {
    Visit(BddId),
    Build {
        node: BddId,
        mv: u32,
        /// Start of this node's per-value "below" ids in the scratch.
        start: u32,
    },
}

/// Reusable buffers of the iterative converter (held by the manager).
#[derive(Debug, Clone, Default)]
pub(crate) struct ConvScratch {
    /// ROMDD id per ROBDD node id (`UNSET` until converted).
    memo: Vec<u32>,
    frames: Vec<ConvFrame>,
    /// Flattened per-value codeword-simulation targets of the pending
    /// `Build` frames.
    below: Vec<u32>,
    /// Staging for one `mk` call.
    children: Vec<u32>,
}

impl MddManager {
    /// Converts the coded ROBDD rooted at `root` (owned by `bdd`) into an
    /// ROMDD in this manager.
    ///
    /// The manager's domains must match `layout.domains()`, and the ROBDD
    /// variable order must respect the layout's grouping (which
    /// [`CodedLayout::new`] validates).
    ///
    /// The converter is iterative (explicit work stack, reusable scratch
    /// held by the manager) and memoizes through a dense per-ROBDD-node
    /// array — the memo key is just the ROBDD node id, which the layering
    /// requirement makes sound (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if the manager's domains do not match the layout, or if the
    /// ROBDD tests a level that the layout does not assign to any
    /// multiple-valued variable.
    pub fn from_coded_bdd(&mut self, bdd: &BddManager, root: BddId, layout: &CodedLayout) -> MddId {
        assert_eq!(
            self.domains(),
            layout.domains().as_slice(),
            "MddManager domains must match the coded layout"
        );
        let mv_of_bit = layout.mv_of_bit();
        // Precompute every group's codeword assignments once; the
        // simulation below follows them per (node, value).
        let assignments: GroupAssignments = (0..layout.num_vars())
            .map(|mv| (0..layout.vars[mv].domain).map(|v| layout.assignment_for(mv, v)).collect())
            .collect();
        if self.compile_threads > 1 {
            if let Some(r) = crate::par::try_par_convert(self, bdd, root, &assignments, &mv_of_bit)
            {
                return MddId(r);
            }
        }
        let mut scratch = std::mem::take(&mut self.conv);
        scratch.prepare(bdd);
        let result = convert_with_ctx(
            &mut self.dd,
            bdd,
            root,
            &assignments,
            &mv_of_bit,
            &mut scratch,
            false,
        );
        self.conv = scratch;
        MddId(result)
    }
}

impl ConvScratch {
    /// Resets the memo for a fresh conversion out of `bdd` (terminals
    /// pre-seeded, everything else unconverted). Two slots per physical
    /// ROBDD node — one per complement parity (see [`memo_index`]).
    pub(crate) fn prepare(&mut self, bdd: &BddManager) {
        self.memo.clear();
        self.memo.resize(2 * bdd.allocated_nodes(), UNSET);
        self.memo[memo_index(BddId::ZERO.index() as u32)] = socy_dd::ZERO;
        self.memo[memo_index(BddId::ONE.index() as u32)] = socy_dd::ONE;
    }
}

/// The iterative top-down converter, generic over the kernel view: the
/// sequential kernel, or a parallel section's worker handle — there it
/// acts as the leaf executor, with `use_cache` sharing converted
/// subtrees across workers through the section's lossy cache (keyed
/// [`OP_CONV`] on the ROBDD node id).
///
/// `scratch.memo` must be prepared for `bdd` (see [`ConvScratch::prepare`])
/// and is *kept* across calls — a worker converts many subtrees against
/// one memo.
pub(crate) fn convert_with_ctx<C: DdCtx>(
    ctx: &mut C,
    bdd: &BddManager,
    root: BddId,
    assignments: &GroupAssignments,
    mv_of_bit: &[Option<usize>],
    scratch: &mut ConvScratch,
    use_cache: bool,
) -> u32 {
    debug_assert!(scratch.frames.is_empty() && scratch.below.is_empty());
    scratch.frames.push(ConvFrame::Visit(root));
    while let Some(frame) = scratch.frames.pop() {
        match frame {
            ConvFrame::Visit(node) => {
                if scratch.memo[memo_index(node.index() as u32)] != UNSET {
                    continue;
                }
                if use_cache {
                    let id = node.index() as u32;
                    if let Some(r) = ctx.cache_get((OP_CONV, id, id, 0)) {
                        scratch.memo[memo_index(id)] = r;
                        continue;
                    }
                }
                let bit_level = bdd.level(node).expect("non-terminal");
                let mv = mv_of_bit.get(bit_level).copied().flatten().unwrap_or_else(|| {
                    panic!("ROBDD level {bit_level} is not mapped by the layout")
                });
                let start = scratch.below.len() as u32;
                scratch.frames.push(ConvFrame::Build { node, mv: mv as u32, start });
                for assignment in &assignments[mv] {
                    let below = follow_code(bdd, node, assignment);
                    scratch.below.push(below.index() as u32);
                    if scratch.memo[memo_index(below.index() as u32)] == UNSET {
                        scratch.frames.push(ConvFrame::Visit(below));
                    }
                }
            }
            ConvFrame::Build { node, mv, start } => {
                scratch.children.clear();
                for &below in &scratch.below[start as usize..] {
                    let converted = scratch.memo[memo_index(below)];
                    debug_assert_ne!(converted, UNSET, "children are converted before parents");
                    scratch.children.push(converted);
                }
                scratch.below.truncate(start as usize);
                let result = ctx.mk(mv, &scratch.children);
                if use_cache {
                    let id = node.index() as u32;
                    ctx.cache_insert((OP_CONV, id, id, 0), result);
                }
                scratch.memo[memo_index(node.index() as u32)] = result;
            }
        }
    }
    scratch.memo[memo_index(root.index() as u32)]
}

/// Walks down from `node` assigning the group bits given by `assignment`
/// (sorted by increasing ROBDD level) and returns the node reached below
/// the group. Bits that the ROBDD does not test are simply skipped.
pub(crate) fn follow_code(bdd: &BddManager, node: BddId, assignment: &[(usize, bool)]) -> BddId {
    let mut cur = node;
    for &(level, value) in assignment {
        if cur.is_terminal() {
            break;
        }
        match bdd.level(cur) {
            Some(l) if l == level => {
                cur = if value { bdd.high(cur) } else { bdd.low(cur) };
            }
            // The ROBDD skips this bit (function does not depend on it), or the
            // current node already lies below this group.
            _ => {}
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coded::MvVarLayout;

    /// Builds the coded ROBDD of a function of multiple-valued variables by
    /// explicit case analysis on all assignments (small inputs only), then
    /// converts it and compares against direct evaluation.
    fn coded_bdd_of<F: Fn(&[usize]) -> bool>(layout: &CodedLayout, f: &F) -> (BddManager, BddId) {
        let mut bdd = BddManager::new(layout.num_bits());
        let domains = layout.domains();
        let mut root = bdd.zero();
        let mut assignment = vec![0usize; domains.len()];
        loop {
            if f(&assignment) {
                // minterm over the coded bits
                let mut term = bdd.one();
                for (var, &value) in assignment.iter().enumerate() {
                    for (level, bit) in layout.assignment_for(var, value) {
                        let lit = bdd.literal(level, bit);
                        term = bdd.and(term, lit);
                    }
                }
                root = bdd.or(root, term);
            }
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return (bdd, root);
                }
                assignment[i] += 1;
                if assignment[i] < domains[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    fn exhaustive_check<F: Fn(&[usize]) -> bool>(layout: &CodedLayout, f: F) {
        let (bdd, root) = coded_bdd_of(layout, &f);
        let mut mdd = MddManager::new(layout.domains());
        let converted = mdd.from_coded_bdd(&bdd, root, layout);
        let domains = layout.domains();
        let mut assignment = vec![0usize; domains.len()];
        loop {
            assert_eq!(
                mdd.eval(converted, &assignment),
                f(&assignment),
                "assignment {assignment:?}"
            );
            let mut i = 0;
            loop {
                if i == domains.len() {
                    return;
                }
                assignment[i] += 1;
                if assignment[i] < domains[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn converts_simple_indicator() {
        let layout = CodedLayout::binary_msb_first(&[3]);
        exhaustive_check(&layout, |a| a[0] == 2);
        exhaustive_check(&layout, |a| a[0] >= 1);
    }

    #[test]
    fn converts_multi_variable_functions() {
        let layout = CodedLayout::binary_msb_first(&[3, 4, 2]);
        exhaustive_check(&layout, |a| (a[0] == 2 && a[1] >= 2) || a[2] == 1);
        exhaustive_check(&layout, |a| a[0] + a[1] + a[2] >= 4);
        exhaustive_check(&layout, |a| (a[0] ^ a[1]) % 2 == 1);
    }

    #[test]
    fn converts_functions_with_dont_care_codes() {
        // Domain 5 uses 3 bits, so codes 5..7 are don't-cares that must never be followed.
        let layout = CodedLayout::binary_msb_first(&[5, 3]);
        exhaustive_check(&layout, |a| a[0] == 4 || (a[0] == 0 && a[1] == 2));
        exhaustive_check(&layout, |a| a[0] % 2 == a[1] % 2);
    }

    #[test]
    fn converts_constants() {
        let layout = CodedLayout::binary_msb_first(&[3, 3]);
        exhaustive_check(&layout, |_| true);
        exhaustive_check(&layout, |_| false);
    }

    #[test]
    fn lsb_first_group_order() {
        // Same function, bits within the group ordered least-significant-first.
        let domain = 4usize;
        let codes_lsb: Vec<Vec<bool>> =
            (0..domain).map(|v| vec![v & 1 == 1, v >> 1 & 1 == 1]).collect();
        let layout = CodedLayout::new(vec![
            MvVarLayout { domain, bit_levels: vec![0, 1], codes: codes_lsb.clone() },
            MvVarLayout { domain, bit_levels: vec![2, 3], codes: codes_lsb },
        ])
        .unwrap();
        exhaustive_check(&layout, |a| a[0] > a[1]);
    }

    #[test]
    fn conversion_is_canonical() {
        // Converting the same coded ROBDD twice yields the identical root id.
        let layout = CodedLayout::binary_msb_first(&[3, 3]);
        let (bdd, root) = coded_bdd_of(&layout, &|a: &[usize]| a[0] == a[1]);
        let mut mdd = MddManager::new(layout.domains());
        let a = mdd.from_coded_bdd(&bdd, root, &layout);
        let b = mdd.from_coded_bdd(&bdd, root, &layout);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn domain_mismatch_panics() {
        let layout = CodedLayout::binary_msb_first(&[3]);
        let (bdd, root) = coded_bdd_of(&layout, &|a: &[usize]| a[0] == 1);
        let mut mdd = MddManager::new(vec![4]);
        let _ = mdd.from_coded_bdd(&bdd, root, &layout);
    }
}
