//! The [`MddManager`]: a thin multiple-valued layer (variable domains,
//! indicator constructors, evaluation) over the shared [`socy_dd`] kernel.

use std::fmt;

use socy_dd::kernel::{DdKernel, DdStats};

/// Identifier of an ROMDD node within an [`MddManager`].
///
/// Identifiers `0` and `1` denote the boolean terminal nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MddId(pub(crate) u32);

impl MddId {
    /// The FALSE terminal.
    pub const ZERO: MddId = MddId(socy_dd::ZERO);
    /// The TRUE terminal.
    pub const ONE: MddId = MddId(socy_dd::ONE);

    /// Raw index of this node in the manager's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// True if this is the TRUE terminal.
    pub fn is_one(self) -> bool {
        self.0 == 1
    }

    /// True if this is the FALSE terminal.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for MddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "FALSE"),
            1 => write!(f, "TRUE"),
            i => write!(f, "m{i}"),
        }
    }
}

pub(crate) const TERMINAL_LEVEL: u32 = socy_dd::TERMINAL_LEVEL;

/// A manager owning a forest of ROMDD nodes over a fixed sequence of
/// multiple-valued variables (one per level, each with its own finite
/// domain size).
#[derive(Debug, Clone)]
pub struct MddManager {
    pub(crate) dd: DdKernel,
    domains: Vec<usize>,
}

impl MddManager {
    /// Creates a manager for multiple-valued variables with the given
    /// domain sizes: the variable at level `i` ranges over
    /// `0 .. domains[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any domain size is zero.
    pub fn new(domains: Vec<usize>) -> Self {
        assert!(domains.iter().all(|&d| d >= 1), "every domain must have at least one value");
        let dd = DdKernel::new(domains.iter().map(|&d| d as u32).collect());
        Self { dd, domains }
    }

    /// The FALSE terminal.
    pub fn zero(&self) -> MddId {
        MddId::ZERO
    }

    /// The TRUE terminal.
    pub fn one(&self) -> MddId {
        MddId::ONE
    }

    /// Boolean constant terminal.
    pub fn constant(&self, value: bool) -> MddId {
        if value {
            MddId::ONE
        } else {
            MddId::ZERO
        }
    }

    /// Number of multiple-valued variable levels.
    pub fn num_levels(&self) -> usize {
        self.domains.len()
    }

    /// Domain size of the variable at `level`.
    pub fn domain(&self, level: usize) -> usize {
        self.domains[level]
    }

    /// All domain sizes, indexed by level.
    pub fn domains(&self) -> &[usize] {
        &self.domains
    }

    /// The level tested by `id`, or `None` for terminals.
    pub fn level(&self, id: MddId) -> Option<usize> {
        self.dd.level(id.0)
    }

    pub(crate) fn raw_level(&self, id: MddId) -> u32 {
        self.dd.raw_level(id.0)
    }

    /// The child followed when the variable at the node's level takes
    /// `value`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal or `value` is outside the variable's
    /// domain.
    pub fn child(&self, id: MddId, value: usize) -> MddId {
        assert!(!id.is_terminal(), "terminals have no children");
        MddId(self.dd.child(id.0, value))
    }

    /// All children of a non-terminal node, indexed by domain value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn children(&self, id: MddId) -> Vec<MddId> {
        assert!(!id.is_terminal(), "terminals have no children");
        self.dd.children(id.0).iter().map(|&c| MddId(c)).collect()
    }

    /// Returns (creating if necessary) the canonical node at `level` with
    /// the given children (one per domain value).
    ///
    /// Applies the ROMDD reduction rule: if all children are identical the
    /// node is redundant and the child is returned directly.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range, the child count does not match
    /// the domain size, or a child tests a level that is not strictly
    /// greater than `level`.
    pub fn mk(&mut self, level: usize, children: Vec<MddId>) -> MddId {
        assert!(level < self.domains.len(), "level {level} out of range");
        assert_eq!(
            children.len(),
            self.domains[level],
            "child count must equal the domain size of level {level}"
        );
        debug_assert!(
            children.iter().all(|c| self.raw_level(*c) > level as u32),
            "children must test strictly lower levels"
        );
        let raw: Vec<u32> = children.iter().map(|c| c.0).collect();
        MddId(self.dd.mk(level as u32, &raw))
    }

    /// Indicator of `x_level == value` (the paper's "filter gate" `= i`).
    pub fn value_is(&mut self, level: usize, value: usize) -> MddId {
        let d = self.domains[level];
        assert!(value < d, "value {value} outside domain of level {level}");
        let children = (0..d).map(|v| if v == value { MddId::ONE } else { MddId::ZERO }).collect();
        self.mk(level, children)
    }

    /// Indicator of `x_level >= value` (the paper's "filter gate" `≥ l`).
    pub fn value_at_least(&mut self, level: usize, value: usize) -> MddId {
        let d = self.domains[level];
        let children = (0..d).map(|v| if v >= value { MddId::ONE } else { MddId::ZERO }).collect();
        self.mk(level, children)
    }

    /// Indicator of an arbitrary predicate on the value of `x_level`.
    pub fn value_pred<P: FnMut(usize) -> bool>(&mut self, level: usize, mut pred: P) -> MddId {
        let d = self.domains[level];
        let children = (0..d).map(|v| if pred(v) { MddId::ONE } else { MddId::ZERO }).collect();
        self.mk(level, children)
    }

    /// Evaluates the boolean function rooted at `f` under the assignment
    /// `assignment[level] = value`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than a level tested on the
    /// followed path or contains an out-of-domain value at such a level.
    pub fn eval(&self, f: MddId, assignment: &[usize]) -> bool {
        self.dd.eval(f.0, |level| assignment[level])
    }

    /// Number of nodes reachable from `f`, including terminals.
    pub fn node_count(&self, f: MddId) -> usize {
        self.dd.node_count(f.0)
    }

    /// Number of non-terminal nodes reachable from `f`.
    pub fn inner_node_count(&self, f: MddId) -> usize {
        self.dd.inner_node_count(f.0)
    }

    /// All nodes reachable from `f` (each exactly once), root first.
    pub fn reachable(&self, f: MddId) -> Vec<MddId> {
        self.dd.reachable(f.0).into_iter().map(MddId).collect()
    }

    /// Total number of nodes ever created (the manager never collects
    /// garbage, so this is also the peak).
    pub fn peak_nodes(&self) -> usize {
        self.dd.peak_nodes()
    }

    /// Kernel statistics: peak nodes, unique-table entries and
    /// operation-cache hit/miss counts.
    pub fn stats(&self) -> DdStats {
        self.dd.stats()
    }

    /// The set of levels appearing in `f`, in increasing order.
    pub fn support(&self, f: MddId) -> Vec<usize> {
        self.dd.support(f.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_domains() {
        let mgr = MddManager::new(vec![2, 3, 4]);
        assert_eq!(mgr.num_levels(), 3);
        assert_eq!(mgr.domain(1), 3);
        assert_eq!(mgr.domains(), &[2, 3, 4]);
        assert!(mgr.one().is_one());
        assert!(mgr.zero().is_zero());
        assert_eq!(mgr.constant(true), mgr.one());
        assert_eq!(mgr.level(mgr.one()), None);
        assert_eq!(mgr.peak_nodes(), 2);
        assert_eq!(format!("{}", MddId(7)), "m7");
        assert_eq!(format!("{}", MddId::ONE), "TRUE");
    }

    #[test]
    #[should_panic]
    fn zero_domain_rejected() {
        let _ = MddManager::new(vec![2, 0]);
    }

    #[test]
    fn mk_reduces_redundant_nodes() {
        let mut mgr = MddManager::new(vec![3]);
        let r = mgr.mk(0, vec![MddId::ONE, MddId::ONE, MddId::ONE]);
        assert_eq!(r, MddId::ONE);
        let n = mgr.mk(0, vec![MddId::ZERO, MddId::ONE, MddId::ONE]);
        assert!(!n.is_terminal());
        let again = mgr.mk(0, vec![MddId::ZERO, MddId::ONE, MddId::ONE]);
        assert_eq!(n, again, "hash consing must return the same node");
        assert_eq!(mgr.children(n), &[MddId::ZERO, MddId::ONE, MddId::ONE]);
        assert_eq!(mgr.child(n, 2), MddId::ONE);
        assert_eq!(mgr.level(n), Some(0));
    }

    #[test]
    #[should_panic]
    fn mk_checks_child_count() {
        let mut mgr = MddManager::new(vec![3]);
        let _ = mgr.mk(0, vec![MddId::ZERO, MddId::ONE]);
    }

    #[test]
    fn indicators() {
        let mut mgr = MddManager::new(vec![4]);
        let is2 = mgr.value_is(0, 2);
        for v in 0..4 {
            assert_eq!(mgr.eval(is2, &[v]), v == 2);
        }
        let ge1 = mgr.value_at_least(0, 1);
        for v in 0..4 {
            assert_eq!(mgr.eval(ge1, &[v]), v >= 1);
        }
        let even = mgr.value_pred(0, |v| v % 2 == 0);
        for v in 0..4 {
            assert_eq!(mgr.eval(even, &[v]), v % 2 == 0);
        }
        let ge0 = mgr.value_at_least(0, 0);
        assert_eq!(ge0, mgr.one(), "x >= 0 is a tautology and must reduce to TRUE");
    }

    #[test]
    fn counting_and_support() {
        let mut mgr = MddManager::new(vec![2, 3]);
        let a = mgr.value_is(1, 2);
        let n = mgr.mk(0, vec![MddId::ZERO, a]);
        assert_eq!(mgr.inner_node_count(n), 2);
        assert_eq!(mgr.node_count(n), 4);
        assert_eq!(mgr.support(n), vec![0, 1]);
        assert_eq!(mgr.support(mgr.one()), Vec::<usize>::new());
        assert_eq!(mgr.inner_node_count(mgr.zero()), 0);
    }

    #[test]
    fn eval_skips_untested_levels() {
        let mut mgr = MddManager::new(vec![5, 2]);
        // Function depends only on level 1.
        let f = mgr.value_is(1, 1);
        assert!(mgr.eval(f, &[4, 1]));
        assert!(!mgr.eval(f, &[0, 0]));
    }

    #[test]
    fn stats_track_the_kernel() {
        let mut mgr = MddManager::new(vec![3, 3]);
        let a = mgr.value_is(0, 1);
        let b = mgr.value_is(1, 2);
        let _ = mgr.and(a, b);
        let stats = mgr.stats();
        assert_eq!(stats.peak_nodes, mgr.peak_nodes());
        assert_eq!(stats.unique_entries, mgr.peak_nodes() - 2);
        assert!(stats.op_cache_misses > 0);
    }
}
