//! The [`MddManager`]: a thin multiple-valued layer (variable domains,
//! indicator constructors, evaluation) over the shared [`socy_dd`] kernel.

use std::fmt;

use socy_dd::kernel::{DdKernel, DdStats, GcStats, Ref};
use socy_dd::reorder::{SiftConfig, SiftOutcome};

/// Identifier of an ROMDD node within an [`MddManager`].
///
/// Identifiers `0` and `1` denote the boolean terminal nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MddId(pub(crate) u32);

impl MddId {
    /// The FALSE terminal.
    pub const ZERO: MddId = MddId(socy_dd::ZERO);
    /// The TRUE terminal.
    pub const ONE: MddId = MddId(socy_dd::ONE);

    /// Raw index of this node in the manager's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// True if this is the TRUE terminal.
    pub fn is_one(self) -> bool {
        self.0 == 1
    }

    /// True if this is the FALSE terminal.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for MddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "FALSE"),
            1 => write!(f, "TRUE"),
            i => write!(f, "m{i}"),
        }
    }
}

pub(crate) const TERMINAL_LEVEL: u32 = socy_dd::TERMINAL_LEVEL;

/// A manager owning a forest of ROMDD nodes over a fixed sequence of
/// multiple-valued variables (one per level, each with its own finite
/// domain size).
#[derive(Debug, Clone)]
pub struct MddManager {
    pub(crate) dd: DdKernel,
    pub(crate) domains: Vec<usize>,
    /// Reusable stacks of the iterative apply machine (see
    /// [`crate::apply`]).
    pub(crate) scratch: crate::apply::ApplyScratch,
    /// Reusable buffers of the iterative coded-ROBDD converter (see
    /// [`crate::from_bdd`]).
    pub(crate) conv: crate::from_bdd::ConvScratch,
    /// Worker threads for intra-operation parallel sections (1 = always
    /// sequential; see [`crate::par`]).
    pub(crate) compile_threads: usize,
    /// Minimum operand size (capped node count) below which an operation
    /// stays sequential even when `compile_threads > 1`.
    pub(crate) par_grain: usize,
}

/// Default sequential-grain cutoff: operands smaller than this never
/// open a parallel section (splitting overhead would dominate).
pub const DEFAULT_PAR_GRAIN: usize = 4096;

impl MddManager {
    /// Creates a manager for multiple-valued variables with the given
    /// domain sizes: the variable at level `i` ranges over
    /// `0 .. domains[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any domain size is zero.
    pub fn new(domains: Vec<usize>) -> Self {
        assert!(domains.iter().all(|&d| d >= 1), "every domain must have at least one value");
        let dd = DdKernel::new(domains.iter().map(|&d| d as u32).collect());
        Self {
            dd,
            domains,
            scratch: Default::default(),
            conv: Default::default(),
            compile_threads: 1,
            par_grain: DEFAULT_PAR_GRAIN,
        }
    }

    /// Sets the number of worker threads used *inside* a single
    /// apply/conversion call. `1` (the default) keeps every operation on
    /// the calling thread; higher counts split large operations across a
    /// work-stealing pool with canonical, thread-count-invariant results
    /// (node counts and probabilities are bit-identical at every
    /// setting).
    pub fn set_compile_threads(&mut self, threads: usize) {
        self.compile_threads = threads.max(1);
    }

    /// Worker threads used inside a single operation.
    pub fn compile_threads(&self) -> usize {
        self.compile_threads
    }

    /// Sets the sequential-grain cutoff: operations whose operands hold
    /// fewer than `grain` nodes stay sequential even with
    /// [`MddManager::set_compile_threads`] above 1.
    pub fn set_par_grain(&mut self, grain: usize) {
        self.par_grain = grain.max(1);
    }

    /// Creates a manager whose operation cache starts with `capacity`
    /// slots and may grow up to `max_capacity` (both rounded to powers of
    /// two; equal bounds pin the size). The cache is lossy, so any
    /// capacity — even 1 — produces identical diagrams; smaller caches
    /// only recompute more.
    ///
    /// # Panics
    ///
    /// Panics if any domain size is zero.
    pub fn with_cache_capacity(domains: Vec<usize>, capacity: usize, max_capacity: usize) -> Self {
        assert!(domains.iter().all(|&d| d >= 1), "every domain must have at least one value");
        let arities = domains.iter().map(|&d| d as u32).collect();
        let dd = DdKernel::with_cache_capacity(arities, capacity, max_capacity);
        Self {
            dd,
            domains,
            scratch: Default::default(),
            conv: Default::default(),
            compile_threads: 1,
            par_grain: DEFAULT_PAR_GRAIN,
        }
    }

    /// The FALSE terminal.
    pub fn zero(&self) -> MddId {
        MddId::ZERO
    }

    /// The TRUE terminal.
    pub fn one(&self) -> MddId {
        MddId::ONE
    }

    /// Boolean constant terminal.
    pub fn constant(&self, value: bool) -> MddId {
        if value {
            MddId::ONE
        } else {
            MddId::ZERO
        }
    }

    /// Number of multiple-valued variable levels.
    pub fn num_levels(&self) -> usize {
        self.domains.len()
    }

    /// Domain size of the variable at `level`.
    pub fn domain(&self, level: usize) -> usize {
        self.domains[level]
    }

    /// All domain sizes, indexed by level.
    pub fn domains(&self) -> &[usize] {
        &self.domains
    }

    /// The level tested by `id`, or `None` for terminals.
    pub fn level(&self, id: MddId) -> Option<usize> {
        self.dd.level(id.0)
    }

    pub(crate) fn raw_level(&self, id: MddId) -> u32 {
        self.dd.raw_level(id.0)
    }

    /// The child followed when the variable at the node's level takes
    /// `value`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal or `value` is outside the variable's
    /// domain.
    pub fn child(&self, id: MddId, value: usize) -> MddId {
        assert!(!id.is_terminal(), "terminals have no children");
        MddId(self.dd.child(id.0, value))
    }

    /// All children of a non-terminal node, indexed by domain value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn children(&self, id: MddId) -> Vec<MddId> {
        assert!(!id.is_terminal(), "terminals have no children");
        self.dd.children(id.0).iter().map(|&c| MddId(c)).collect()
    }

    /// Returns (creating if necessary) the canonical node at `level` with
    /// the given children (one per domain value).
    ///
    /// Applies the ROMDD reduction rule: if all children are identical the
    /// node is redundant and the child is returned directly.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range, the child count does not match
    /// the domain size, or a child tests a level that is not strictly
    /// greater than `level`.
    pub fn mk(&mut self, level: usize, children: Vec<MddId>) -> MddId {
        assert!(level < self.domains.len(), "level {level} out of range");
        assert_eq!(
            children.len(),
            self.domains[level],
            "child count must equal the domain size of level {level}"
        );
        debug_assert!(
            children.iter().all(|c| self.raw_level(*c) > level as u32),
            "children must test strictly lower levels"
        );
        let raw: Vec<u32> = children.iter().map(|c| c.0).collect();
        MddId(self.dd.mk(level as u32, &raw))
    }

    /// Indicator of `x_level == value` (the paper's "filter gate" `= i`).
    pub fn value_is(&mut self, level: usize, value: usize) -> MddId {
        let d = self.domains[level];
        assert!(value < d, "value {value} outside domain of level {level}");
        let children = (0..d).map(|v| if v == value { MddId::ONE } else { MddId::ZERO }).collect();
        self.mk(level, children)
    }

    /// Indicator of `x_level >= value` (the paper's "filter gate" `≥ l`).
    pub fn value_at_least(&mut self, level: usize, value: usize) -> MddId {
        let d = self.domains[level];
        let children = (0..d).map(|v| if v >= value { MddId::ONE } else { MddId::ZERO }).collect();
        self.mk(level, children)
    }

    /// Indicator of an arbitrary predicate on the value of `x_level`.
    pub fn value_pred<P: FnMut(usize) -> bool>(&mut self, level: usize, mut pred: P) -> MddId {
        let d = self.domains[level];
        let children = (0..d).map(|v| if pred(v) { MddId::ONE } else { MddId::ZERO }).collect();
        self.mk(level, children)
    }

    /// Evaluates the boolean function rooted at `f` under the assignment
    /// `assignment[level] = value`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than a level tested on the
    /// followed path or contains an out-of-domain value at such a level.
    pub fn eval(&self, f: MddId, assignment: &[usize]) -> bool {
        self.dd.eval(f.0, |level| assignment[level])
    }

    /// Number of nodes reachable from `f`, including terminals.
    pub fn node_count(&self, f: MddId) -> usize {
        self.dd.node_count(f.0)
    }

    /// Number of non-terminal nodes reachable from `f`.
    pub fn inner_node_count(&self, f: MddId) -> usize {
        self.dd.inner_node_count(f.0)
    }

    /// All nodes reachable from `f` (each exactly once), root first.
    pub fn reachable(&self, f: MddId) -> Vec<MddId> {
        self.dd.reachable(f.0).into_iter().map(MddId).collect()
    }

    /// Largest number of simultaneously allocated nodes observed so far,
    /// including the two terminals. Until the first [`MddManager::gc`]
    /// this equals the total nodes ever created.
    pub fn peak_nodes(&self) -> usize {
        self.dd.peak_nodes()
    }

    /// Nodes currently allocated, including the two terminals (live
    /// closures of all roots plus any garbage not yet collected).
    pub fn allocated_nodes(&self) -> usize {
        self.dd.allocated_nodes()
    }

    /// Kernel statistics: peak/live nodes, unique-table entries,
    /// operation-cache hit/miss counts and collection totals.
    pub fn stats(&self) -> DdStats {
        self.dd.stats()
    }

    /// Arms (or, with `None`, disarms) the kernel's resource governor:
    /// every subsequent node materialisation — sequential or through a
    /// parallel section — reports to it. See
    /// [`DdKernel::set_governor`](socy_dd::DdKernel::set_governor).
    pub fn set_governor(&mut self, governor: Option<socy_dd::Governor>) {
        self.dd.set_governor(governor);
    }

    /// The set of levels appearing in `f`, in increasing order.
    pub fn support(&self, f: MddId) -> Vec<usize> {
        self.dd.support(f.0)
    }

    // ---- garbage collection and reordering ---------------------------------

    /// Registers `id` as an external root surviving every
    /// [`MddManager::gc`] until the handle is passed to
    /// [`MddManager::unprotect`].
    pub fn protect(&mut self, id: MddId) -> Ref {
        self.dd.protect(id.0)
    }

    /// Releases a protection and returns the root's current id.
    pub fn unprotect(&mut self, handle: Ref) -> MddId {
        MddId(self.dd.unprotect(handle))
    }

    /// Current id of a protected root (collections renumber node ids).
    pub fn resolve(&self, handle: Ref) -> MddId {
        MddId(self.dd.resolve(handle))
    }

    /// Mark-and-sweep garbage collection over the protected roots.
    ///
    /// Every [`MddId`] obtained before the collection is invalidated;
    /// carry roots across with [`MddManager::protect`] /
    /// [`MddManager::resolve`]. The recorded peak is unaffected.
    pub fn gc(&mut self) -> GcStats {
        self.dd.gc()
    }

    /// Dynamic variable reordering by sifting, minimising the node count
    /// of the union of `roots` (each entry is updated in place).
    ///
    /// Every multiple-valued variable moves as a unit, carrying its
    /// domain along: after the run, level `l` holds the variable (and
    /// domain) previously at level `SiftOutcome::level_origin[l]`, and
    /// level-indexed inputs to [`MddManager::eval`] /
    /// [`MddManager::probability`] must be permuted the same way. The
    /// swap garbage is collected before returning: anything not reachable
    /// from `roots` or a separately protected root is reclaimed and all
    /// prior [`MddId`]s are invalidated.
    pub fn reorder_sift(&mut self, roots: &mut [MddId], config: &SiftConfig) -> SiftOutcome {
        let mut raw: Vec<u32> = roots.iter().map(|r| r.0).collect();
        let outcome = self.dd.sift(&mut raw, config);
        self.domains = outcome.level_origin.iter().map(|&o| self.domains[o]).collect();
        for (slot, &id) in roots.iter_mut().zip(&raw) {
            *slot = MddId(id);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_domains() {
        let mgr = MddManager::new(vec![2, 3, 4]);
        assert_eq!(mgr.num_levels(), 3);
        assert_eq!(mgr.domain(1), 3);
        assert_eq!(mgr.domains(), &[2, 3, 4]);
        assert!(mgr.one().is_one());
        assert!(mgr.zero().is_zero());
        assert_eq!(mgr.constant(true), mgr.one());
        assert_eq!(mgr.level(mgr.one()), None);
        assert_eq!(mgr.peak_nodes(), 2);
        assert_eq!(format!("{}", MddId(7)), "m7");
        assert_eq!(format!("{}", MddId::ONE), "TRUE");
    }

    #[test]
    #[should_panic]
    fn zero_domain_rejected() {
        let _ = MddManager::new(vec![2, 0]);
    }

    #[test]
    fn mk_reduces_redundant_nodes() {
        let mut mgr = MddManager::new(vec![3]);
        let r = mgr.mk(0, vec![MddId::ONE, MddId::ONE, MddId::ONE]);
        assert_eq!(r, MddId::ONE);
        let n = mgr.mk(0, vec![MddId::ZERO, MddId::ONE, MddId::ONE]);
        assert!(!n.is_terminal());
        let again = mgr.mk(0, vec![MddId::ZERO, MddId::ONE, MddId::ONE]);
        assert_eq!(n, again, "hash consing must return the same node");
        assert_eq!(mgr.children(n), &[MddId::ZERO, MddId::ONE, MddId::ONE]);
        assert_eq!(mgr.child(n, 2), MddId::ONE);
        assert_eq!(mgr.level(n), Some(0));
    }

    #[test]
    #[should_panic]
    fn mk_checks_child_count() {
        let mut mgr = MddManager::new(vec![3]);
        let _ = mgr.mk(0, vec![MddId::ZERO, MddId::ONE]);
    }

    #[test]
    fn indicators() {
        let mut mgr = MddManager::new(vec![4]);
        let is2 = mgr.value_is(0, 2);
        for v in 0..4 {
            assert_eq!(mgr.eval(is2, &[v]), v == 2);
        }
        let ge1 = mgr.value_at_least(0, 1);
        for v in 0..4 {
            assert_eq!(mgr.eval(ge1, &[v]), v >= 1);
        }
        let even = mgr.value_pred(0, |v| v % 2 == 0);
        for v in 0..4 {
            assert_eq!(mgr.eval(even, &[v]), v % 2 == 0);
        }
        let ge0 = mgr.value_at_least(0, 0);
        assert_eq!(ge0, mgr.one(), "x >= 0 is a tautology and must reduce to TRUE");
    }

    #[test]
    fn counting_and_support() {
        let mut mgr = MddManager::new(vec![2, 3]);
        let a = mgr.value_is(1, 2);
        let n = mgr.mk(0, vec![MddId::ZERO, a]);
        assert_eq!(mgr.inner_node_count(n), 2);
        assert_eq!(mgr.node_count(n), 4);
        assert_eq!(mgr.support(n), vec![0, 1]);
        assert_eq!(mgr.support(mgr.one()), Vec::<usize>::new());
        assert_eq!(mgr.inner_node_count(mgr.zero()), 0);
    }

    #[test]
    fn eval_skips_untested_levels() {
        let mut mgr = MddManager::new(vec![5, 2]);
        // Function depends only on level 1.
        let f = mgr.value_is(1, 1);
        assert!(mgr.eval(f, &[4, 1]));
        assert!(!mgr.eval(f, &[0, 0]));
    }

    #[test]
    fn stats_track_the_kernel() {
        let mut mgr = MddManager::new(vec![3, 3]);
        let a = mgr.value_is(0, 1);
        let b = mgr.value_is(1, 2);
        let _ = mgr.and(a, b);
        let stats = mgr.stats();
        assert_eq!(stats.peak_nodes, mgr.peak_nodes());
        assert_eq!(stats.unique_entries, mgr.peak_nodes() - 2);
        assert!(stats.op_cache_misses > 0);
    }

    #[test]
    fn gc_keeps_protected_functions() {
        let mut mgr = MddManager::new(vec![3, 4]);
        let a = mgr.value_at_least(0, 1);
        let b = mgr.value_is(1, 2);
        let keep = mgr.and(a, b);
        let waste = mgr.value_pred(1, |v| v % 2 == 1);
        let _ = mgr.or(waste, a);
        let handle = mgr.protect(keep);
        let gc = mgr.gc();
        assert!(gc.reclaimed_nodes > 0);
        let keep = mgr.unprotect(handle);
        for x0 in 0..3 {
            for x1 in 0..4 {
                assert_eq!(mgr.eval(keep, &[x0, x1]), x0 >= 1 && x1 == 2);
            }
        }
    }

    #[test]
    fn reorder_sift_permutes_domains_with_the_levels() {
        // Three variables with distinct domains; the function couples
        // levels 0 and 2, so sifting may move them together.
        let mut mgr = MddManager::new(vec![2, 3, 4]);
        let a = mgr.value_is(0, 1);
        let c = mgr.value_is(2, 3);
        let ac = mgr.and(a, c);
        let b = mgr.value_at_least(1, 2);
        let f = mgr.or(ac, b);
        let mut truth = Vec::new();
        for x0 in 0..2 {
            for x1 in 0..3 {
                for x2 in 0..4 {
                    truth.push(((x0, x1, x2), mgr.eval(f, &[x0, x1, x2])));
                }
            }
        }
        let mut roots = [f];
        let outcome = mgr.reorder_sift(&mut roots, &SiftConfig { max_growth: 3.0, max_rounds: 2 });
        let f = roots[0];
        // Domains follow their variables.
        let original = [2usize, 3, 4];
        for (level, &o) in outcome.level_origin.iter().enumerate() {
            assert_eq!(mgr.domain(level), original[o]);
        }
        for ((x0, x1, x2), want) in truth {
            let by_var = [x0, x1, x2];
            let by_level: Vec<usize> = outcome.level_origin.iter().map(|&o| by_var[o]).collect();
            assert_eq!(mgr.eval(f, &by_level), want);
        }
        assert_eq!(mgr.allocated_nodes(), mgr.node_count(f), "garbage was collected");
    }
}
