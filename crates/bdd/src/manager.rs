//! The [`BddManager`]: a thin boolean-logic layer over the shared
//! [`socy_dd`] kernel (arena, unique table, operation cache).

use std::fmt;

use socy_dd::kernel::{DdKernel, DdStats, GcStats, Ref};
use socy_dd::reorder::{SiftConfig, SiftOutcome};

/// Identifier of a BDD node within a [`BddManager`].
///
/// The identifiers `0` and `1` are reserved for the terminal nodes FALSE
/// and TRUE respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddId(pub(crate) u32);

impl BddId {
    /// The FALSE terminal.
    pub const ZERO: BddId = BddId(socy_dd::ZERO);
    /// The TRUE terminal.
    pub const ONE: BddId = BddId(socy_dd::ONE);

    /// Raw index of this node in the manager's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// True if this is the TRUE terminal.
    pub fn is_one(self) -> bool {
        self.0 == 1
    }

    /// True if this is the FALSE terminal.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for BddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "FALSE"),
            1 => write!(f, "TRUE"),
            i => write!(f, "b{i}"),
        }
    }
}

/// Level used internally for terminal nodes (greater than every variable
/// level, so terminals sort below all variables).
pub(crate) const TERMINAL_LEVEL: u32 = socy_dd::TERMINAL_LEVEL;

/// A manager owning a forest of ROBDD nodes over a fixed number of
/// variable levels.
///
/// All functions created through one manager share structure via the
/// kernel's unique table, which is what makes the representation
/// canonical: two [`BddId`]s are equal **iff** they denote the same
/// boolean function under the manager's variable order.
#[derive(Debug, Clone)]
pub struct BddManager {
    pub(crate) dd: DdKernel,
    /// Reusable stacks of the iterative apply machine (see
    /// [`crate::apply`]).
    pub(crate) scratch: crate::apply::ApplyScratch,
    /// Worker threads for intra-operation parallel sections (1 = always
    /// sequential; see [`crate::par`]).
    pub(crate) compile_threads: usize,
    /// Minimum operand size (capped node count) below which an operation
    /// stays sequential even when `compile_threads > 1`.
    pub(crate) par_grain: usize,
}

/// Default sequential-grain cutoff: operands smaller than this never
/// open a parallel section (splitting overhead would dominate).
pub const DEFAULT_PAR_GRAIN: usize = 4096;

impl BddManager {
    /// Creates a manager over `num_levels` boolean variable levels.
    ///
    /// Complemented edges are **enabled** by default (negation becomes
    /// O(1) and a function shares every node with its complement); call
    /// [`BddManager::set_complement`] before building anything to opt
    /// out.
    pub fn new(num_levels: usize) -> Self {
        let mut dd = DdKernel::new(vec![2; num_levels]);
        dd.set_complement(true);
        Self { dd, scratch: Default::default(), compile_threads: 1, par_grain: DEFAULT_PAR_GRAIN }
    }

    /// Creates a manager whose operation cache starts with `capacity`
    /// slots and may grow up to `max_capacity` (both rounded to powers of
    /// two; equal bounds pin the size). The cache is lossy, so any
    /// capacity — even 1 — produces identical diagrams; smaller caches
    /// only recompute more. Complemented edges default to enabled, as in
    /// [`BddManager::new`].
    pub fn with_cache_capacity(num_levels: usize, capacity: usize, max_capacity: usize) -> Self {
        let mut dd = DdKernel::with_cache_capacity(vec![2; num_levels], capacity, max_capacity);
        dd.set_complement(true);
        Self { dd, scratch: Default::default(), compile_threads: 1, par_grain: DEFAULT_PAR_GRAIN }
    }

    /// Enables or disables complemented-edge mode. Must be called before
    /// any node is created (the kernel panics otherwise): mixing plain
    /// and complemented canonical forms in one arena would break
    /// canonicity.
    pub fn set_complement(&mut self, on: bool) {
        self.dd.set_complement(on);
    }

    /// Whether this manager uses complemented edges.
    pub fn complement_enabled(&self) -> bool {
        self.dd.complement_enabled()
    }

    /// Verifies the complemented-edge canonical form over the whole
    /// arena: with complement mode on, no stored node may carry a
    /// complemented **or ZERO** high (then) edge — exactly one of `f` and
    /// `¬f` has a regular top edge, which is what makes edges canonical.
    /// With complement mode off, no stored edge may carry the complement
    /// bit at all. Returns `true` when the invariant holds (test/debug
    /// helper; cost is linear in the arena).
    pub fn check_complement_invariant(&self) -> bool {
        let cpl = self.dd.complement_enabled();
        (2..self.dd.allocated_nodes() as u32).all(|id| {
            let children = self.dd.children(id);
            if children.is_empty() {
                return true; // only terminals are childless, and they sit at ids 0 and 1
            }
            if cpl {
                !socy_dd::is_complemented(children[1]) && children[1] != socy_dd::ZERO
            } else {
                children.iter().all(|&c| !socy_dd::is_complemented(c))
            }
        })
    }

    /// Sets the number of worker threads used *inside* a single
    /// apply/ITE call. `1` (the default) keeps every operation on the
    /// calling thread; higher counts split large operations across a
    /// work-stealing pool with canonical, thread-count-invariant results
    /// (node counts and probabilities are bit-identical at every
    /// setting).
    pub fn set_compile_threads(&mut self, threads: usize) {
        self.compile_threads = threads.max(1);
    }

    /// Worker threads used inside a single operation.
    pub fn compile_threads(&self) -> usize {
        self.compile_threads
    }

    /// Sets the sequential-grain cutoff: operations whose operands hold
    /// fewer than `grain` nodes stay sequential even with
    /// [`BddManager::set_compile_threads`] above 1.
    pub fn set_par_grain(&mut self, grain: usize) {
        self.par_grain = grain.max(1);
    }

    /// The FALSE terminal.
    pub fn zero(&self) -> BddId {
        BddId::ZERO
    }

    /// The TRUE terminal.
    pub fn one(&self) -> BddId {
        BddId::ONE
    }

    /// Number of variable levels this manager was created with.
    pub fn num_levels(&self) -> usize {
        self.dd.num_levels()
    }

    /// Extends the manager with additional variable levels (appended after
    /// the existing ones). Existing nodes are unaffected.
    pub fn add_levels(&mut self, extra: usize) {
        self.dd.add_levels(std::iter::repeat_n(2, extra));
    }

    /// The level tested by `id`, or `None` for terminals.
    pub fn level(&self, id: BddId) -> Option<usize> {
        self.dd.level(id.0)
    }

    /// The low (variable = 0) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn low(&self, id: BddId) -> BddId {
        assert!(!id.is_terminal(), "terminals have no children");
        BddId(self.dd.child(id.0, 0))
    }

    /// The high (variable = 1) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn high(&self, id: BddId) -> BddId {
        assert!(!id.is_terminal(), "terminals have no children");
        BddId(self.dd.child(id.0, 1))
    }

    pub(crate) fn raw_level(&self, id: BddId) -> u32 {
        self.dd.raw_level(id.0)
    }

    /// Returns (creating if necessary) the canonical node `(level, low, high)`.
    ///
    /// Applies the ROBDD reduction rule: if `low == high` the node is
    /// redundant and `low` is returned directly.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range or if either child tests a level
    /// not strictly below `level` (which would violate the ordering
    /// invariant).
    pub fn mk(&mut self, level: usize, low: BddId, high: BddId) -> BddId {
        assert!(level < self.dd.num_levels(), "level {level} out of range");
        debug_assert!(
            self.raw_level(low) > level as u32 && self.raw_level(high) > level as u32,
            "children must test strictly lower levels"
        );
        BddId(self.dd.mk(level as u32, &[low.0, high.0]))
    }

    /// The positive literal of the variable at `level`.
    pub fn var(&mut self, level: usize) -> BddId {
        self.mk(level, BddId::ZERO, BddId::ONE)
    }

    /// The negative literal of the variable at `level`.
    pub fn nvar(&mut self, level: usize) -> BddId {
        self.mk(level, BddId::ONE, BddId::ZERO)
    }

    /// A literal: positive when `positive` is true, negated otherwise.
    pub fn literal(&mut self, level: usize, positive: bool) -> BddId {
        if positive {
            self.var(level)
        } else {
            self.nvar(level)
        }
    }

    /// Constant node for a boolean value.
    pub fn constant(&self, value: bool) -> BddId {
        if value {
            BddId::ONE
        } else {
            BddId::ZERO
        }
    }

    /// Largest number of simultaneously allocated nodes observed so far,
    /// including the two terminals — the metric the paper reports as
    /// "ROBDD peak" (it determines peak memory consumption). Until the
    /// first [`BddManager::gc`] this equals the total nodes ever created.
    pub fn peak_nodes(&self) -> usize {
        self.dd.peak_nodes()
    }

    /// Nodes currently allocated, including the two terminals (live
    /// closures of all roots plus any garbage not yet collected).
    pub fn allocated_nodes(&self) -> usize {
        self.dd.allocated_nodes()
    }

    /// Number of nodes reachable from `root`, but never counting past
    /// `cap` — a cheap "is this operand at least this big?" probe (used
    /// by the coded-ROBDD → ROMDD converter's parallel-grain gate).
    pub fn node_count_capped(&self, root: BddId, cap: usize) -> usize {
        self.dd.node_count_capped(&[root.0], cap)
    }

    /// Kernel statistics: peak/live nodes, unique-table entries,
    /// operation-cache hit/miss counts and collection totals.
    pub fn stats(&self) -> DdStats {
        self.dd.stats()
    }

    /// Arms (or, with `None`, disarms) the kernel's resource governor:
    /// every subsequent node materialisation — sequential or through a
    /// parallel section — reports to it. See
    /// [`DdKernel::set_governor`](socy_dd::DdKernel::set_governor).
    pub fn set_governor(&mut self, governor: Option<socy_dd::Governor>) {
        self.dd.set_governor(governor);
    }

    /// Clears the operation caches (the unique table is kept, so canonicity
    /// is unaffected). Useful between large independent builds to bound
    /// cache memory.
    pub fn clear_op_caches(&mut self) {
        self.dd.clear_op_cache();
    }

    // ---- garbage collection and reordering ---------------------------------

    /// Registers `id` as an external root surviving every
    /// [`BddManager::gc`] until the handle is passed to
    /// [`BddManager::unprotect`].
    pub fn protect(&mut self, id: BddId) -> Ref {
        self.dd.protect(id.0)
    }

    /// Releases a protection and returns the root's current id.
    pub fn unprotect(&mut self, handle: Ref) -> BddId {
        BddId(self.dd.unprotect(handle))
    }

    /// Current id of a protected root (collections renumber node ids).
    pub fn resolve(&self, handle: Ref) -> BddId {
        BddId(self.dd.resolve(handle))
    }

    /// Mark-and-sweep garbage collection over the protected roots.
    ///
    /// Every [`BddId`] obtained before the collection is invalidated;
    /// carry roots across with [`BddManager::protect`] /
    /// [`BddManager::resolve`]. The recorded peak is unaffected.
    pub fn gc(&mut self) -> GcStats {
        self.dd.gc()
    }

    /// Dynamic variable reordering by sifting, minimising the node count
    /// of the union of `roots` (each entry is updated to the root's id
    /// after the run). Equivalent to
    /// [`reorder_sift_grouped`](BddManager::reorder_sift_grouped) with
    /// every level in its own block.
    pub fn reorder_sift(&mut self, roots: &mut [BddId], config: &SiftConfig) -> SiftOutcome {
        let ones = vec![1; self.num_levels()];
        self.reorder_sift_grouped(roots, &ones, config)
    }

    /// Grouped sifting: contiguous blocks of levels (e.g. the bit groups
    /// of a coded ROBDD) move as indivisible units, so group contiguity
    /// invariants survive the reordering.
    ///
    /// After the run, level `l` tests the variable previously tested at
    /// level `SiftOutcome::level_origin[l]`; callers evaluating by level
    /// (e.g. [`BddManager::eval`]) must remap their assignments
    /// accordingly. The swap garbage is collected before returning:
    /// anything not reachable from `roots` or a separately protected root
    /// is reclaimed and all prior [`BddId`]s are invalidated — `roots` is
    /// updated in place with the post-collection ids.
    pub fn reorder_sift_grouped(
        &mut self,
        roots: &mut [BddId],
        block_sizes: &[usize],
        config: &SiftConfig,
    ) -> SiftOutcome {
        let mut raw: Vec<u32> = roots.iter().map(|r| r.0).collect();
        let outcome = self.dd.sift_blocks(&mut raw, block_sizes, config);
        for (slot, &id) in roots.iter_mut().zip(&raw) {
            *slot = BddId(id);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let mgr = BddManager::new(2);
        assert!(mgr.zero().is_zero());
        assert!(mgr.one().is_one());
        assert!(mgr.zero().is_terminal());
        assert_eq!(mgr.level(mgr.one()), None);
        assert_eq!(mgr.constant(true), mgr.one());
        assert_eq!(mgr.constant(false), mgr.zero());
        assert_eq!(format!("{}", mgr.one()), "TRUE");
        assert_eq!(format!("{}", mgr.zero()), "FALSE");
        assert_eq!(format!("{}", BddId(5)), "b5");
        assert_eq!(mgr.peak_nodes(), 2);
    }

    #[test]
    fn hash_consing_is_canonical() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(1);
        let b = mgr.var(1);
        assert_eq!(a, b);
        assert_eq!(mgr.peak_nodes(), 3);
        let n1 = mgr.mk(0, a, mgr.one());
        let n2 = mgr.mk(0, a, mgr.one());
        assert_eq!(n1, n2);
    }

    #[test]
    fn redundant_nodes_are_eliminated() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(1);
        let r = mgr.mk(0, x, x);
        assert_eq!(r, x, "node with equal children must collapse");
    }

    #[test]
    fn literals() {
        let mut mgr = BddManager::new(2);
        let pos = mgr.literal(0, true);
        let neg = mgr.literal(0, false);
        assert_eq!(mgr.low(pos), mgr.zero());
        assert_eq!(mgr.high(pos), mgr.one());
        assert_eq!(mgr.low(neg), mgr.one());
        assert_eq!(mgr.high(neg), mgr.zero());
        assert_eq!(mgr.level(pos), Some(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_level_panics() {
        let mut mgr = BddManager::new(1);
        let _ = mgr.var(1);
    }

    #[test]
    #[should_panic]
    fn children_of_terminals_panic() {
        let mgr = BddManager::new(1);
        let _ = mgr.low(mgr.one());
    }

    #[test]
    fn add_levels_extends_range() {
        let mut mgr = BddManager::new(1);
        mgr.add_levels(2);
        assert_eq!(mgr.num_levels(), 3);
        let _ = mgr.var(2);
    }

    #[test]
    fn stats_track_the_kernel() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let _ = mgr.and(x, y);
        let stats = mgr.stats();
        assert_eq!(stats.peak_nodes, mgr.peak_nodes());
        assert_eq!(stats.unique_entries, mgr.peak_nodes() - 2);
        assert!(stats.op_cache_misses > 0);
    }

    #[test]
    fn gc_keeps_protected_functions() {
        let mut mgr = BddManager::new(4);
        let vars: Vec<BddId> = (0..4).map(|i| mgr.var(i)).collect();
        let keep = mgr.at_least(2, &vars);
        let _drop = mgr.at_least(3, &vars); // garbage after the collection
        let before = mgr.allocated_nodes();
        let handle = mgr.protect(keep);
        let gc = mgr.gc();
        assert!(gc.reclaimed_nodes > 0);
        assert!(mgr.allocated_nodes() < before);
        assert_eq!(mgr.peak_nodes(), before, "peak survives the collection");
        let keep = mgr.unprotect(handle);
        for row in 0..16u32 {
            let a: Vec<bool> = (0..4).map(|i| (row >> i) & 1 == 1).collect();
            assert_eq!(mgr.eval(keep, &a), a.iter().filter(|&&v| v).count() >= 2);
        }
    }

    #[test]
    fn reorder_sift_shrinks_a_separated_order() {
        // x0·x3 + x1·x4 + x2·x5 with the pair-separating order is the
        // classic blow-up; sifting must interleave the pairs again.
        let mut mgr = BddManager::new(6);
        let mut f = mgr.zero();
        for i in 0..3 {
            let a = mgr.var(i);
            let b = mgr.var(i + 3);
            let pair = mgr.and(a, b);
            f = mgr.or(f, pair);
        }
        let truth: Vec<bool> = (0..64u32)
            .map(|row| {
                let a: Vec<bool> = (0..6).map(|i| (row >> i) & 1 == 1).collect();
                mgr.eval(f, &a)
            })
            .collect();
        let before = mgr.node_count(f);
        let mut roots = [f];
        let outcome = mgr.reorder_sift(&mut roots, &SiftConfig { max_growth: 2.0, max_rounds: 4 });
        let f = roots[0];
        assert!(outcome.final_size < before, "{} -> {}", before, outcome.final_size);
        assert_eq!(mgr.node_count(f), outcome.final_size);
        assert_eq!(mgr.allocated_nodes(), outcome.final_size, "sift garbage was collected");
        // Unchanged function modulo the reported level permutation.
        for (row, &want) in truth.iter().enumerate() {
            let by_var: Vec<bool> = (0..6).map(|i| (row >> i) & 1 == 1).collect();
            let by_level: Vec<bool> = outcome.level_origin.iter().map(|&o| by_var[o]).collect();
            assert_eq!(mgr.eval(f, &by_level), want);
        }
    }
}
