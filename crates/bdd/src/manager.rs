//! The [`BddManager`]: a thin boolean-logic layer over the shared
//! [`socy_dd`] kernel (arena, unique table, operation cache).

use std::fmt;

use socy_dd::kernel::{DdKernel, DdStats};

/// Identifier of a BDD node within a [`BddManager`].
///
/// The identifiers `0` and `1` are reserved for the terminal nodes FALSE
/// and TRUE respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddId(pub(crate) u32);

impl BddId {
    /// The FALSE terminal.
    pub const ZERO: BddId = BddId(socy_dd::ZERO);
    /// The TRUE terminal.
    pub const ONE: BddId = BddId(socy_dd::ONE);

    /// Raw index of this node in the manager's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// True if this is the TRUE terminal.
    pub fn is_one(self) -> bool {
        self.0 == 1
    }

    /// True if this is the FALSE terminal.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for BddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "FALSE"),
            1 => write!(f, "TRUE"),
            i => write!(f, "b{i}"),
        }
    }
}

/// Level used internally for terminal nodes (greater than every variable
/// level, so terminals sort below all variables).
pub(crate) const TERMINAL_LEVEL: u32 = socy_dd::TERMINAL_LEVEL;

/// A manager owning a forest of ROBDD nodes over a fixed number of
/// variable levels.
///
/// All functions created through one manager share structure via the
/// kernel's unique table, which is what makes the representation
/// canonical: two [`BddId`]s are equal **iff** they denote the same
/// boolean function under the manager's variable order.
#[derive(Debug, Clone)]
pub struct BddManager {
    pub(crate) dd: DdKernel,
}

impl BddManager {
    /// Creates a manager over `num_levels` boolean variable levels.
    pub fn new(num_levels: usize) -> Self {
        Self { dd: DdKernel::new(vec![2; num_levels]) }
    }

    /// The FALSE terminal.
    pub fn zero(&self) -> BddId {
        BddId::ZERO
    }

    /// The TRUE terminal.
    pub fn one(&self) -> BddId {
        BddId::ONE
    }

    /// Number of variable levels this manager was created with.
    pub fn num_levels(&self) -> usize {
        self.dd.num_levels()
    }

    /// Extends the manager with additional variable levels (appended after
    /// the existing ones). Existing nodes are unaffected.
    pub fn add_levels(&mut self, extra: usize) {
        self.dd.add_levels(std::iter::repeat_n(2, extra));
    }

    /// The level tested by `id`, or `None` for terminals.
    pub fn level(&self, id: BddId) -> Option<usize> {
        self.dd.level(id.0)
    }

    /// The low (variable = 0) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn low(&self, id: BddId) -> BddId {
        assert!(!id.is_terminal(), "terminals have no children");
        BddId(self.dd.child(id.0, 0))
    }

    /// The high (variable = 1) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    pub fn high(&self, id: BddId) -> BddId {
        assert!(!id.is_terminal(), "terminals have no children");
        BddId(self.dd.child(id.0, 1))
    }

    pub(crate) fn raw_level(&self, id: BddId) -> u32 {
        self.dd.raw_level(id.0)
    }

    /// Returns (creating if necessary) the canonical node `(level, low, high)`.
    ///
    /// Applies the ROBDD reduction rule: if `low == high` the node is
    /// redundant and `low` is returned directly.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range or if either child tests a level
    /// not strictly below `level` (which would violate the ordering
    /// invariant).
    pub fn mk(&mut self, level: usize, low: BddId, high: BddId) -> BddId {
        assert!(level < self.dd.num_levels(), "level {level} out of range");
        debug_assert!(
            self.raw_level(low) > level as u32 && self.raw_level(high) > level as u32,
            "children must test strictly lower levels"
        );
        BddId(self.dd.mk(level as u32, &[low.0, high.0]))
    }

    /// The positive literal of the variable at `level`.
    pub fn var(&mut self, level: usize) -> BddId {
        self.mk(level, BddId::ZERO, BddId::ONE)
    }

    /// The negative literal of the variable at `level`.
    pub fn nvar(&mut self, level: usize) -> BddId {
        self.mk(level, BddId::ONE, BddId::ZERO)
    }

    /// A literal: positive when `positive` is true, negated otherwise.
    pub fn literal(&mut self, level: usize, positive: bool) -> BddId {
        if positive {
            self.var(level)
        } else {
            self.nvar(level)
        }
    }

    /// Constant node for a boolean value.
    pub fn constant(&self, value: bool) -> BddId {
        if value {
            BddId::ONE
        } else {
            BddId::ZERO
        }
    }

    /// Total number of nodes ever created in this manager, including the
    /// two terminals. Because the manager never garbage-collects, this is
    /// the *peak* number of live ROBDD nodes — the metric the paper reports
    /// as "ROBDD peak" (it determines peak memory consumption).
    pub fn peak_nodes(&self) -> usize {
        self.dd.peak_nodes()
    }

    /// Kernel statistics: peak nodes, unique-table entries and
    /// operation-cache hit/miss counts.
    pub fn stats(&self) -> DdStats {
        self.dd.stats()
    }

    /// Clears the operation caches (the unique table is kept, so canonicity
    /// is unaffected). Useful between large independent builds to bound
    /// cache memory.
    pub fn clear_op_caches(&mut self) {
        self.dd.clear_op_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let mgr = BddManager::new(2);
        assert!(mgr.zero().is_zero());
        assert!(mgr.one().is_one());
        assert!(mgr.zero().is_terminal());
        assert_eq!(mgr.level(mgr.one()), None);
        assert_eq!(mgr.constant(true), mgr.one());
        assert_eq!(mgr.constant(false), mgr.zero());
        assert_eq!(format!("{}", mgr.one()), "TRUE");
        assert_eq!(format!("{}", mgr.zero()), "FALSE");
        assert_eq!(format!("{}", BddId(5)), "b5");
        assert_eq!(mgr.peak_nodes(), 2);
    }

    #[test]
    fn hash_consing_is_canonical() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(1);
        let b = mgr.var(1);
        assert_eq!(a, b);
        assert_eq!(mgr.peak_nodes(), 3);
        let n1 = mgr.mk(0, a, mgr.one());
        let n2 = mgr.mk(0, a, mgr.one());
        assert_eq!(n1, n2);
    }

    #[test]
    fn redundant_nodes_are_eliminated() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(1);
        let r = mgr.mk(0, x, x);
        assert_eq!(r, x, "node with equal children must collapse");
    }

    #[test]
    fn literals() {
        let mut mgr = BddManager::new(2);
        let pos = mgr.literal(0, true);
        let neg = mgr.literal(0, false);
        assert_eq!(mgr.low(pos), mgr.zero());
        assert_eq!(mgr.high(pos), mgr.one());
        assert_eq!(mgr.low(neg), mgr.one());
        assert_eq!(mgr.high(neg), mgr.zero());
        assert_eq!(mgr.level(pos), Some(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_level_panics() {
        let mut mgr = BddManager::new(1);
        let _ = mgr.var(1);
    }

    #[test]
    #[should_panic]
    fn children_of_terminals_panic() {
        let mgr = BddManager::new(1);
        let _ = mgr.low(mgr.one());
    }

    #[test]
    fn add_levels_extends_range() {
        let mut mgr = BddManager::new(1);
        mgr.add_levels(2);
        assert_eq!(mgr.num_levels(), 3);
        let _ = mgr.var(2);
    }

    #[test]
    fn stats_track_the_kernel() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let _ = mgr.and(x, y);
        let stats = mgr.stats();
        assert_eq!(stats.peak_nodes, mgr.peak_nodes());
        assert_eq!(stats.unique_entries, mgr.peak_nodes() - 2);
        assert!(stats.op_cache_misses > 0);
    }
}
