//! Graphviz (DOT) export of ROBDDs, for inspection and documentation.

use socy_dd::dot::{level_label, DotWriter};

use crate::manager::{BddId, BddManager};

impl BddManager {
    /// Renders the BDD rooted at `f` in Graphviz DOT syntax.
    ///
    /// Dashed edges are low (variable = 0) edges, solid edges are high
    /// (variable = 1) edges. `var_names` optionally maps levels to
    /// human-readable names; levels without a name are rendered as `x<level>`.
    pub fn to_dot(&self, f: BddId, var_names: Option<&[String]>) -> String {
        let mut dot = DotWriter::new("robdd");
        for id in self.reachable(f) {
            if id.is_terminal() {
                continue;
            }
            let level = self.level(id).expect("non-terminal");
            dot.node(id.0, &level_label(var_names, level));
            dot.edge(id.0, self.low(id).0, Some("style=dashed"));
            dot.edge(id.0, self.high(id).0, None);
        }
        dot.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let dot = mgr.to_dot(f, None);
        assert!(dot.starts_with("digraph robdd {"));
        assert!(dot.contains("label=\"x0\""));
        assert!(dot.contains("label=\"x1\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_uses_supplied_names() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(0);
        let names = vec!["alpha".to_string(), "beta".to_string()];
        let dot = mgr.to_dot(x, Some(&names));
        assert!(dot.contains("label=\"alpha\""));
        assert!(!dot.contains("label=\"beta\""));
    }

    #[test]
    fn dot_of_terminal() {
        let mgr = BddManager::new(1);
        let dot = mgr.to_dot(mgr.one(), None);
        assert!(dot.contains("node1 [label=\"1\""));
    }
}
