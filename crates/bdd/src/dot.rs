//! Graphviz (DOT) export of ROBDDs, for inspection and documentation.

use socy_dd::dot::{level_label, DotWriter};

use crate::manager::{BddId, BddManager};

impl BddManager {
    /// Renders the BDD rooted at `f` in Graphviz DOT syntax.
    ///
    /// Dashed edges are low (variable = 0) edges, solid edges are high
    /// (variable = 1) edges. With complemented edges enabled, a
    /// complemented low edge is drawn with an `odot` arrowhead (the CUDD
    /// convention); the rendered graph is the *physical* diagram, so a
    /// complemented root `f` renders the nodes of `¬f`. `var_names`
    /// optionally maps levels to human-readable names; levels without a
    /// name are rendered as `x<level>`.
    pub fn to_dot(&self, f: BddId, var_names: Option<&[String]>) -> String {
        let mut dot = DotWriter::new("robdd");
        for id in self.reachable(f) {
            if id.is_terminal() {
                continue;
            }
            let level = self.level(id).expect("non-terminal");
            let (low, high) = (self.low(id), self.high(id));
            dot.node(id.0, &level_label(var_names, level));
            if socy_dd::is_complemented(low.0) {
                dot.edge(id.0, socy_dd::strip(low.0), Some("style=dashed,arrowhead=odot"));
            } else {
                dot.edge(id.0, low.0, Some("style=dashed"));
            }
            dot.edge(id.0, high.0, None);
        }
        dot.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let dot = mgr.to_dot(f, None);
        assert!(dot.starts_with("digraph robdd {"));
        assert!(dot.contains("label=\"x0\""));
        assert!(dot.contains("label=\"x1\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_uses_supplied_names() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(0);
        let names = vec!["alpha".to_string(), "beta".to_string()];
        let dot = mgr.to_dot(x, Some(&names));
        assert!(dot.contains("label=\"alpha\""));
        assert!(!dot.contains("label=\"beta\""));
    }

    #[test]
    fn dot_of_terminal() {
        let mgr = BddManager::new(1);
        let dot = mgr.to_dot(mgr.one(), None);
        assert!(dot.contains("node1 [label=\"1\""));
    }
}
