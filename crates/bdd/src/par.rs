//! Parallel apply/ITE: splits one operation across a work-stealing pool
//! over a [`socy_dd::ParSession`].
//!
//! The splitter mirrors the terminal rules of the sequential machine
//! exactly (plus a read-only probe of the frozen op cache), Shannon-
//! expanding at the top variable until enough leaves exist to keep the
//! pool busy; each leaf then runs the ordinary explicit-stack
//! [`crate::apply`] machine against the shared session. Hash-consing
//! makes the result canonical and bit-identical at every thread count.

use crate::apply::{cofactors_at, run_apply, ApplyScratch, OP_ITE, OP_NOT, OP_XOR};
use crate::manager::BddManager;
use socy_dd::kernel::DdKernel;
use socy_dd::{is_complemented, negate, negate_if, run_tasks, strip, ParSession, Split, ONE, ZERO};

/// One apply subproblem: `(op, a, b, c)`, exactly the op-cache key shape.
type Task = (u8, u32, u32, u32);

/// Normalised binary subtask (the connectives are commutative, so
/// sorting the operands makes task deduplication match cache keying).
fn binary_task(op: u8, a: u32, b: u32) -> Task {
    if a <= b {
        (op, a, b, 0)
    } else {
        (op, b, a, 0)
    }
}

/// Terminal rules + frozen-cache probe + one Shannon expansion, mirroring
/// `eval_step` of the sequential machine rule for rule. Runs only on the
/// frozen kernel, so every id in a task is a frozen arena id (possibly a
/// complemented edge onto one).
///
/// A subtask's value is consumed directly by its parent `Branch`, so the
/// splitter may only rewrite operands *result-preservingly* (the ITE
/// ¬f-swap qualifies; output-complementing normalizations do not — those
/// are applied to cache-probe keys only, negating any hit).
fn split_task(dd: &DdKernel, task: &Task) -> Split<Task> {
    let &(op, mut a, mut b, mut c) = task;
    let cpl = dd.complement_enabled();
    if op == OP_NOT {
        if cpl {
            return Split::Done(negate(a));
        }
        if a == ZERO {
            return Split::Done(ONE);
        }
        if a == ONE {
            return Split::Done(ZERO);
        }
        if let Some(r) = dd.cache_peek((OP_NOT, a, a, 0)) {
            return Split::Done(r);
        }
        let top = dd.raw_level(a);
        let (lo, hi) = (dd.child(a, 0), dd.child(a, 1));
        return Split::Branch { level: top, tasks: vec![(OP_NOT, lo, lo, 0), (OP_NOT, hi, hi, 0)] };
    }
    if op == OP_ITE {
        if a == ONE {
            return Split::Done(b);
        }
        if a == ZERO {
            return Split::Done(c);
        }
        if cpl && is_complemented(a) {
            // ite(¬f, g, h) = ite(f, h, g): result-preserving.
            a = negate(a);
            std::mem::swap(&mut b, &mut c);
        }
        if b == c {
            return Split::Done(b);
        }
        if b == ONE && c == ZERO {
            return Split::Done(a);
        }
        if cpl && b == ZERO && c == ONE {
            return Split::Done(negate(a));
        }
        // The leaves key ITE entries with a regular then-branch; probe
        // under that normalization and undo it on the value.
        let mut neg = false;
        let (kb, kc) = if cpl && is_complemented(b) {
            neg = true;
            (negate(b), negate(c))
        } else {
            (b, c)
        };
        if let Some(r) = dd.cache_peek((OP_ITE, a, kb, kc)) {
            return Split::Done(negate_if(neg, r));
        }
        let top = dd.raw_level(a).min(dd.raw_level(b)).min(dd.raw_level(c));
        let (f0, f1) = cofactors_at(dd, a, top);
        let (g0, g1) = cofactors_at(dd, b, top);
        let (h0, h1) = cofactors_at(dd, c, top);
        return Split::Branch {
            level: top,
            tasks: vec![(OP_ITE, f0, g0, h0), (OP_ITE, f1, g1, h1)],
        };
    }
    // Binary connectives (AND = 0, OR = 1, XOR = 2).
    match op {
        0 => {
            if a == ZERO || b == ZERO {
                return Split::Done(ZERO);
            }
            if a == ONE {
                return Split::Done(b);
            }
            if b == ONE || a == b {
                return Split::Done(a);
            }
            if cpl && a == negate(b) {
                return Split::Done(ZERO);
            }
        }
        1 => {
            if a == ONE || b == ONE {
                return Split::Done(ONE);
            }
            if a == ZERO {
                return Split::Done(b);
            }
            if b == ZERO || a == b {
                return Split::Done(a);
            }
            if cpl && a == negate(b) {
                return Split::Done(ONE);
            }
        }
        OP_XOR => {
            if a == ZERO {
                return Split::Done(b);
            }
            if b == ZERO {
                return Split::Done(a);
            }
            if a == b {
                return Split::Done(ZERO);
            }
            if cpl {
                if a == negate(b) {
                    return Split::Done(ONE);
                }
                if a == ONE {
                    return Split::Done(negate(b));
                }
                if b == ONE {
                    return Split::Done(negate(a));
                }
                if is_complemented(a) || is_complemented(b) {
                    // The leaves key XOR on the parity-stripped pair.
                    let neg = is_complemented(a) ^ is_complemented(b);
                    let (_, x, y, _) = binary_task(op, strip(a), strip(b));
                    if let Some(r) = dd.cache_peek((op, x, y, 0)) {
                        return Split::Done(negate_if(neg, r));
                    }
                    // Expand the original operands: cofactor subtasks of
                    // (a, b) recombine to xor(a, b) itself.
                    let top = dd.raw_level(a).min(dd.raw_level(b));
                    let (f0, f1) = cofactors_at(dd, a, top);
                    let (g0, g1) = cofactors_at(dd, b, top);
                    return Split::Branch {
                        level: top,
                        tasks: vec![binary_task(op, f0, g0), binary_task(op, f1, g1)],
                    };
                }
            } else {
                if a == ONE {
                    return Split::Chain((OP_NOT, b, b, 0));
                }
                if b == ONE {
                    return Split::Chain((OP_NOT, a, a, 0));
                }
            }
        }
        _ => unreachable!("unknown binary op"),
    }
    let (_, x, y, _) = binary_task(op, a, b);
    if let Some(r) = dd.cache_peek((op, x, y, 0)) {
        return Split::Done(r);
    }
    let top = dd.raw_level(x).min(dd.raw_level(y));
    let (f0, f1) = cofactors_at(dd, x, top);
    let (g0, g1) = cofactors_at(dd, y, top);
    Split::Branch { level: top, tasks: vec![binary_task(op, f0, g0), binary_task(op, f1, g1)] }
}

/// Runs `op(a, b, c)` as a parallel section when the operands are large
/// enough to be worth it; returns `None` to fall back to the sequential
/// machine. The returned id is a frozen arena id (the session is
/// absorbed before returning).
pub(crate) fn try_par_apply(mgr: &mut BddManager, op: u8, a: u32, b: u32, c: u32) -> Option<u32> {
    let grain = mgr.par_grain;
    if mgr.dd.node_count_capped(&[a, b, c], grain) < grain {
        return None;
    }
    let threads = mgr.compile_threads;
    let root = match op {
        OP_NOT | OP_ITE => (op, a, b, c),
        _ => binary_task(op, a, b),
    };
    let session = ParSession::new(&mgr.dd);
    let kernel = session.kernel();
    let got = run_tasks(
        &session,
        threads,
        threads * 8,
        root,
        |task| split_task(kernel, task),
        ApplyScratch::default,
        |ctx, scratch, &(op, a, b, c)| run_apply(ctx, scratch, op, a, b, c),
    );
    let parts = session.into_parts();
    let mut roots = [got];
    mgr.dd.absorb_par(parts, &mut roots);
    Some(roots[0])
}

#[cfg(test)]
mod tests {
    use crate::manager::{BddId, BddManager};

    fn build(mgr: &mut BddManager) -> BddId {
        let vars: Vec<BddId> = (0..14).map(|i| mgr.var(i)).collect();
        let t = mgr.at_least(5, &vars);
        let x = mgr.xor(vars[0], vars[13]);
        let anded = mgr.and(t, x);
        let n = mgr.not(anded);
        mgr.ite(n, t, x)
    }

    #[test]
    fn parallel_apply_is_bit_identical_across_thread_counts() {
        let mut seq = BddManager::new(14);
        let f_seq = build(&mut seq);
        for threads in [2usize, 4] {
            let mut par = BddManager::new(14);
            par.set_compile_threads(threads);
            par.set_par_grain(8); // tiny grain: force parallel sections on a small model
            let f_par = build(&mut par);
            assert_eq!(
                par.inner_node_count(f_par),
                seq.inner_node_count(f_seq),
                "node counts must be thread-count-invariant"
            );
            for row in (0..1u32 << 14).step_by(97) {
                let assignment: Vec<bool> = (0..14).map(|i| (row >> i) & 1 == 1).collect();
                assert_eq!(par.eval(f_par, &assignment), seq.eval(f_seq, &assignment));
            }
            let stats = par.stats();
            assert!(stats.par_sections > 0, "grain 8 must open parallel sections");
            assert!(stats.par_tasks > 0);
            assert_eq!(seq.stats().par_sections, 0, "sequential manager never parallelises");
        }
    }
}
