//! Compilation of gate-level netlists into ROBDDs.
//!
//! The paper processes the gate-level description of the (binary-encoded)
//! generalized fault tree bottom-up, building one ROBDD per gate output
//! until the root is reached. The peak number of simultaneously live nodes
//! during that process is the memory-limiting quantity reported in Table 4
//! ("ROBDD peak"); since this manager does not garbage-collect, the total
//! number of nodes ever allocated is exactly that peak.

use socy_faulttree::{GateKind, Netlist, NodeId, VarId};

use crate::manager::{BddId, BddManager};

/// Result of compiling a netlist: the root BDD plus the build statistics
/// the paper reports.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistBuild {
    /// BDD of the designated netlist output.
    pub root: BddId,
    /// Number of nodes reachable from the root (the "coded ROBDD size").
    pub size: usize,
    /// Total number of nodes allocated by the manager during the build
    /// (the "ROBDD peak" metric).
    pub peak: usize,
}

impl BddManager {
    /// Compiles the designated output of `netlist` into an ROBDD.
    ///
    /// `var_level[v]` gives the BDD level assigned to netlist input
    /// variable `v`; it must be a permutation of `0..netlist.num_inputs()`
    /// onto distinct levels available in this manager.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no designated output, if `var_level` does
    /// not cover all inputs, or if any level is out of range for this
    /// manager.
    pub fn build_netlist(&mut self, netlist: &Netlist, var_level: &[usize]) -> NetlistBuild {
        let output = netlist.output().expect("netlist must have an output");
        assert_eq!(
            var_level.len(),
            netlist.num_inputs(),
            "var_level must assign a level to every netlist input"
        );
        let root = self.build_node(netlist, output, var_level);
        NetlistBuild { root, size: self.node_count(root), peak: self.peak_nodes() }
    }

    /// Compiles an arbitrary node of `netlist` into an ROBDD (same
    /// conventions as [`BddManager::build_netlist`]).
    pub fn build_node(&mut self, netlist: &Netlist, node: NodeId, var_level: &[usize]) -> BddId {
        // Results per netlist node, indexed by arena position (arena order is topological).
        let mut results: Vec<Option<BddId>> = vec![None; netlist.len()];
        for (id, gate) in netlist.iter() {
            if id.index() > node.index() {
                break;
            }
            let bdd = match gate.kind {
                GateKind::Input => {
                    let var: VarId = netlist.var_of(id).expect("input node has a variable");
                    self.var(var_level[var.index()])
                }
                GateKind::Const(c) => self.constant(c),
                GateKind::Not => {
                    let a = results[gate.fanin[0].index()].expect("topological order");
                    self.not(a)
                }
                GateKind::And => {
                    let operands: Vec<BddId> = gate
                        .fanin
                        .iter()
                        .map(|f| results[f.index()].expect("topological order"))
                        .collect();
                    self.and_many(operands)
                }
                GateKind::Or => {
                    let operands: Vec<BddId> = gate
                        .fanin
                        .iter()
                        .map(|f| results[f.index()].expect("topological order"))
                        .collect();
                    self.or_many(operands)
                }
                GateKind::Xor => {
                    let operands: Vec<BddId> = gate
                        .fanin
                        .iter()
                        .map(|f| results[f.index()].expect("topological order"))
                        .collect();
                    self.xor_many(operands)
                }
                GateKind::AtLeast(k) => {
                    let operands: Vec<BddId> = gate
                        .fanin
                        .iter()
                        .map(|f| results[f.index()].expect("topological order"))
                        .collect();
                    self.at_least(k as usize, &operands)
                }
            };
            results[id.index()] = Some(bdd);
        }
        results[node.index()].expect("requested node was built")
    }
}

/// Convenience: builds a fresh manager sized for `netlist` and compiles it
/// with the identity variable order (input variable `i` at level `i`).
pub fn build_with_identity_order(netlist: &Netlist) -> (BddManager, NetlistBuild) {
    let n = netlist.num_inputs();
    let mut mgr = BddManager::new(n);
    let order: Vec<usize> = (0..n).collect();
    let build = mgr.build_netlist(netlist, &order);
    (mgr, build)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_netlist() -> Netlist {
        // F = (a AND b) OR (NOT c AND atleast2(a,b,d))
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let d = nl.input("d");
        let g1 = nl.and([a, b]);
        let nc = nl.not(c);
        let v = nl.at_least(2, [a, b, d]);
        let g2 = nl.and([nc, v]);
        let f = nl.or([g1, g2]);
        nl.set_output(f);
        nl
    }

    #[test]
    fn build_matches_netlist_evaluation() {
        let nl = example_netlist();
        let (mgr, build) = build_with_identity_order(&nl);
        for row in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| (row >> i) & 1 == 1).collect();
            assert_eq!(
                mgr.eval(build.root, &assignment),
                nl.eval_output(&assignment),
                "assignment {assignment:?}"
            );
        }
        assert!(build.size >= 3);
        assert!(build.peak >= build.size);
    }

    #[test]
    fn build_with_permuted_order_is_equivalent() {
        let nl = example_netlist();
        let n = nl.num_inputs();
        let mut mgr = BddManager::new(n);
        // Reverse order: variable i at level n-1-i.
        let order: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
        let build = mgr.build_netlist(&nl, &order);
        for row in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| (row >> i) & 1 == 1).collect();
            // The BDD assignment is indexed by level, so permute accordingly.
            let by_level: Vec<bool> = (0..n).map(|lvl| assignment[n - 1 - lvl]).collect();
            assert_eq!(mgr.eval(build.root, &by_level), nl.eval_output(&assignment));
        }
    }

    #[test]
    fn ordering_affects_size() {
        // The classic example: x0·x1 + x2·x3 + x4·x5 is linear under the
        // interleaved order and exponential under the separated order.
        let mut nl = Netlist::new();
        let inputs: Vec<_> = (0..6).map(|i| nl.input(format!("x{i}"))).collect();
        let p1 = nl.and([inputs[0], inputs[1]]);
        let p2 = nl.and([inputs[2], inputs[3]]);
        let p3 = nl.and([inputs[4], inputs[5]]);
        let f = nl.or([p1, p2, p3]);
        nl.set_output(f);

        let mut good_mgr = BddManager::new(6);
        let good = good_mgr.build_netlist(&nl, &[0, 1, 2, 3, 4, 5]);
        let mut bad_mgr = BddManager::new(6);
        // Pair-separating order: x0,x2,x4 first, then x1,x3,x5.
        let bad = bad_mgr.build_netlist(&nl, &[0, 3, 1, 4, 2, 5]);
        assert!(
            bad.size > good.size,
            "separated order ({}) should be larger than interleaved ({})",
            bad.size,
            good.size
        );
    }

    #[test]
    fn build_interior_node() {
        let nl = example_netlist();
        let n = nl.num_inputs();
        let mut mgr = BddManager::new(n);
        let order: Vec<usize> = (0..n).collect();
        // Node 4 is the AND(a, b) gate.
        let and_node = nl.iter().nth(4).expect("netlist has at least 5 nodes").0;
        let g1 = mgr.build_node(&nl, and_node, &order);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let expect = mgr.and(a, b);
        assert_eq!(g1, expect);
    }

    #[test]
    #[should_panic]
    fn wrong_order_length_panics() {
        let nl = example_netlist();
        let mut mgr = BddManager::new(4);
        let _ = mgr.build_netlist(&nl, &[0, 1]);
    }
}
