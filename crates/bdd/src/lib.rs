//! A from-scratch ROBDD (reduced ordered binary decision diagram) engine.
//!
//! The DSN'03 combinatorial yield method builds a *coded ROBDD* of the
//! generalized fault-tree function `G(w, v_1, …, v_M)` expressed in binary
//! logic, and later converts it into the ROMDD it actually analyses. The
//! original paper used the CMU BDD library; this crate provides an
//! equivalent, self-contained engine as a thin boolean layer over the
//! shared [`socy_dd`] hash-consing kernel:
//!
//! * hash-consed nodes with a unique table ([`BddManager`]);
//! * the usual boolean operations (`not`, `and`, `or`, `xor`, `ite`) with
//!   memoization ([`apply`](BddManager::and));
//! * threshold ("at least k of n") construction used for k-of-n voter gates;
//! * netlist compilation ([`BddManager::build_netlist`]) with peak-node
//!   tracking, reproducing the paper's "ROBDD peak" metric;
//! * structural analysis: node counts, supports, evaluation, satisfying
//!   fraction and probability evaluation under independent variables;
//! * DOT export for visual inspection.
//!
//! Terminals are the constants [`BddManager::zero`] and [`BddManager::one`].
//! Variables are identified by their *level* (position in the global
//! variable order): level 0 is tested first.
//!
//! # Example
//!
//! ```
//! use socy_bdd::BddManager;
//!
//! let mut mgr = BddManager::new(3);
//! let x0 = mgr.var(0);
//! let x1 = mgr.var(1);
//! let x2 = mgr.var(2);
//! let a = mgr.and(x0, x1);
//! let f = mgr.or(a, x2);           // f = x0·x1 + x2
//! assert_eq!(mgr.inner_node_count(f), 3);
//! assert!(mgr.eval(f, &[true, true, false]));
//! let p = mgr.probability(f, &[0.5, 0.5, 0.5]);
//! assert!((p - 0.625).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod apply;
pub mod build;
pub mod dot;
pub mod manager;
pub mod par;

pub use socy_dd::hash;
pub use socy_dd::DdStats;

pub use manager::{BddId, BddManager};

// Each parallel sweep worker (socy-exec) owns private managers; assert
// the thread bounds the executor relies on (see socy-dd for rationale).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BddManager>();
};
