//! Boolean operations on ROBDDs: NOT, AND, OR, XOR, ITE and thresholds.
//!
//! All binary operations use the classic Shannon-expansion `apply`
//! algorithm with memoization keyed on the operand node pair, so the cost
//! of an operation is bounded by the product of the operand sizes.
//!
//! The apply kernels are **iterative**: one explicit work-stack machine
//! (see the private `Frame` type) drives NOT, the binary connectives and
//! ITE, with the stack and result buffers living in a scratch arena owned by the
//! manager — a netlist compilation issuing millions of operations reuses
//! the same two allocations instead of paying call-frame and allocation
//! churn per recursion.

use crate::manager::{BddId, BddManager, TERMINAL_LEVEL};
use socy_dd::{is_complemented, negate, negate_if, strip, DdCtx, ONE, ZERO};

/// Operation tags used as keys in the kernel's operation cache.
pub(crate) const OP_AND: u8 = 0;
pub(crate) const OP_OR: u8 = 1;
pub(crate) const OP_XOR: u8 = 2;
pub(crate) const OP_NOT: u8 = 3;
pub(crate) const OP_ITE: u8 = 4;

/// One unit of work of the iterative apply machine.
///
/// `Eval` asks for the result of `op(a, b, c)` (unary and binary
/// operations ignore the unused operands); `Combine` fires once both
/// cofactor results are on the result stack and builds the node at
/// `top`, memoizing it under the frame's key.
#[derive(Debug, Clone, Copy)]
enum Frame {
    Eval {
        op: u8,
        a: u32,
        b: u32,
        c: u32,
    },
    /// Like `Eval`, but the terminal rules and the cache were already
    /// probed (by the inline child resolution) — go straight to the
    /// Shannon expansion without a second cache probe.
    Expand {
        op: u8,
        a: u32,
        b: u32,
    },
    Combine {
        op: u8,
        a: u32,
        b: u32,
        c: u32,
        top: u32,
    },
    /// `Combine` whose high cofactor resolved inline at expansion time;
    /// only the low result is pending on the result stack.
    CombineHigh {
        op: u8,
        a: u32,
        b: u32,
        top: u32,
        high: u32,
    },
    /// Complemented-edge mode only: negates the result on top of the
    /// stack. Pushed *below* the frames computing a normalised
    /// subproblem whose answer is the complement of the requested one
    /// (XOR parity stripping, ITE with a complemented then-branch).
    Negate,
}

/// Outcome of trying to resolve a binary subproblem without a frame.
enum Immediate {
    /// Terminal rule or cache hit: the result is known.
    Resolved(u32),
    /// Genuinely new subproblem (cache already probed): expand it.
    Expand,
    /// Needs the full `Eval` treatment (XOR's NOT redirections).
    Defer,
}

/// Reusable buffers of the apply machine (held by the manager so
/// consecutive operations allocate nothing).
#[derive(Debug, Clone, Default)]
pub(crate) struct ApplyScratch {
    frames: Vec<Frame>,
    results: Vec<u32>,
}

impl BddManager {
    /// Logical negation. With complemented edges (the default) this is
    /// O(1): it flips the complement bit of the edge without touching a
    /// single node.
    pub fn not(&mut self, f: BddId) -> BddId {
        if self.dd.complement_enabled() {
            return BddId(negate(f.0));
        }
        self.apply_root(OP_NOT, f.0, f.0, 0)
    }

    /// Logical conjunction `f ∧ g`.
    pub fn and(&mut self, f: BddId, g: BddId) -> BddId {
        self.binary(OP_AND, f, g)
    }

    /// Logical disjunction `f ∨ g`.
    pub fn or(&mut self, f: BddId, g: BddId) -> BddId {
        self.binary(OP_OR, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: BddId, g: BddId) -> BddId {
        self.binary(OP_XOR, f, g)
    }

    /// Implication `f → g` (derived operation).
    pub fn implies(&mut self, f: BddId, g: BddId) -> BddId {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Conjunction of an arbitrary number of operands.
    pub fn and_many(&mut self, operands: impl IntoIterator<Item = BddId>) -> BddId {
        let mut acc = BddId::ONE;
        for op in operands {
            acc = self.and(acc, op);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an arbitrary number of operands.
    pub fn or_many(&mut self, operands: impl IntoIterator<Item = BddId>) -> BddId {
        let mut acc = BddId::ZERO;
        for op in operands {
            acc = self.or(acc, op);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// Parity (multi-operand XOR).
    pub fn xor_many(&mut self, operands: impl IntoIterator<Item = BddId>) -> BddId {
        let mut acc = BddId::ZERO;
        for op in operands {
            acc = self.xor(acc, op);
        }
        acc
    }

    /// If-then-else `ite(f, g, h) = f·g + f̄·h`.
    pub fn ite(&mut self, f: BddId, g: BddId, h: BddId) -> BddId {
        self.apply_root(OP_ITE, f.0, g.0, h.0)
    }

    /// "At least `k` of the operands are true" (threshold / voter function).
    ///
    /// Built with a dynamic program over partial counts, which keeps the
    /// construction polynomial in `k · n` BDD operations.
    pub fn at_least(&mut self, k: usize, operands: &[BddId]) -> BddId {
        let n = operands.len();
        if k == 0 {
            return BddId::ONE;
        }
        if k > n {
            return BddId::ZERO;
        }
        // state[j] = BDD of "at least j of the operands processed so far are true", j = 0..=k
        let mut state = vec![BddId::ZERO; k + 1];
        state[0] = BddId::ONE;
        for &op in operands {
            // Process from high j to low j so that each round uses the previous round's values.
            for j in (1..=k).rev() {
                let with_op = self.and(state[j - 1], op);
                state[j] = self.or(state[j], with_op);
            }
        }
        state[k]
    }

    /// "Exactly `k` of the operands are true".
    pub fn exactly(&mut self, k: usize, operands: &[BddId]) -> BddId {
        let at_least_k = self.at_least(k, operands);
        let at_least_k1 = self.at_least(k + 1, operands);
        let not_more = self.not(at_least_k1);
        self.and(at_least_k, not_more)
    }

    /// Existential quantification of the variable at `level`:
    /// `∃x_level . f = f|x=0 ∨ f|x=1`.
    pub fn exists(&mut self, f: BddId, level: usize) -> BddId {
        let f0 = self.restrict(f, level, false);
        let f1 = self.restrict(f, level, true);
        self.or(f0, f1)
    }

    /// Cofactor of `f` with the variable at `level` fixed to `value`.
    pub fn restrict(&mut self, f: BddId, level: usize, value: bool) -> BddId {
        if f.is_terminal() {
            return f;
        }
        let node_level = self.raw_level(f);
        if node_level > level as u32 {
            // f does not depend on the variable (it only tests lower variables).
            return f;
        }
        if node_level == level as u32 {
            return if value { self.high(f) } else { self.low(f) };
        }
        // node_level < level: rebuild with restricted children (memoized via mk's unique table only;
        // an explicit cache is unnecessary for the shallow uses in this crate).
        let low = self.low(f);
        let high = self.high(f);
        let rl = self.restrict(low, level, value);
        let rh = self.restrict(high, level, value);
        self.mk(node_level as usize, rl, rh)
    }

    fn binary(&mut self, op: u8, f: BddId, g: BddId) -> BddId {
        self.apply_root(op, f.0, g.0, 0)
    }

    /// Runs the apply machine on the sequential kernel, reusing the
    /// manager's scratch arena.
    fn apply_root(&mut self, op: u8, a: u32, b: u32, c: u32) -> BddId {
        if self.compile_threads > 1 {
            if let Some(r) = crate::par::try_par_apply(self, op, a, b, c) {
                return BddId(r);
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = run_apply(&mut self.dd, &mut scratch, op, a, b, c);
        self.scratch = scratch;
        BddId(result)
    }
}

/// The explicit-stack apply machine serving NOT, AND, OR, XOR and ITE,
/// generic over the kernel view: the sequential [`socy_dd::DdKernel`] or
/// a parallel section's [`socy_dd::ParRef`] (where it acts as the leaf
/// executor of the work-stealing pool).
///
/// The work stack holds [`Frame`]s; every `Eval` either resolves
/// immediately (terminal rule or cache hit) by pushing onto the result
/// stack, or expands into its two cofactor `Eval`s below a `Combine`
/// that later builds and memoizes the node. Both stacks live in a
/// caller-owned scratch arena and are reused across calls.
pub(crate) fn run_apply<C: DdCtx>(
    ctx: &mut C,
    scratch: &mut ApplyScratch,
    op: u8,
    a: u32,
    b: u32,
    c: u32,
) -> u32 {
    debug_assert!(scratch.frames.is_empty() && scratch.results.is_empty());
    scratch.frames.push(Frame::Eval { op, a, b, c });
    while let Some(frame) = scratch.frames.pop() {
        match frame {
            Frame::Eval { op, a, b, c } => eval_step(ctx, op, a, b, c, scratch),
            Frame::Expand { op, a, b } => expand_binary(ctx, op, a, b, scratch),
            Frame::Combine { op, a, b, c, top } => {
                let high = scratch.results.pop().expect("high cofactor result");
                let low = scratch.results.pop().expect("low cofactor result");
                let r = ctx.mk(top, &[low, high]);
                ctx.cache_insert((op, a, b, c), r);
                scratch.results.push(r);
            }
            Frame::CombineHigh { op, a, b, top, high } => {
                let low = scratch.results.pop().expect("low cofactor result");
                let r = ctx.mk(top, &[low, high]);
                ctx.cache_insert((op, a, b, 0), r);
                scratch.results.push(r);
            }
            Frame::Negate => {
                let r = scratch.results.pop().expect("negate operand result");
                scratch.results.push(negate(r));
            }
        }
    }
    let result = scratch.results.pop().expect("the root frame pushed a result");
    debug_assert!(scratch.results.is_empty());
    result
}

/// One `Eval` step: terminal rules, cache probe, or expansion.
///
/// In complemented-edge mode the step additionally applies the standard
/// negation normalizations before keying the cache: `x ⊕ ¬y = ¬(x ⊕ y)`
/// (keys carry the plain pair plus an output complement),
/// `ite(¬f, g, h) = ite(f, h, g)` and `ite(f, ¬g, ¬h) = ¬ite(f, g, h)`.
/// Every normalization is gated on [`DdCtx::complement`], so
/// complement-off runs take byte-identical paths to the pre-complement
/// machine.
fn eval_step<C: DdCtx>(
    ctx: &mut C,
    op: u8,
    mut a: u32,
    mut b: u32,
    mut c: u32,
    scratch: &mut ApplyScratch,
) {
    if op == OP_NOT {
        if ctx.complement() {
            // O(1); only reachable through legacy callers — the public
            // entry points negate edges directly in complement mode.
            scratch.results.push(negate(a));
            return;
        }
        if a == ZERO {
            scratch.results.push(ONE);
            return;
        }
        if a == ONE {
            scratch.results.push(ZERO);
            return;
        }
        if let Some(r) = ctx.cache_get((OP_NOT, a, a, 0)) {
            scratch.results.push(r);
            return;
        }
        let top = ctx.raw_level(a);
        let (lo, hi) = (ctx.child(a, 0), ctx.child(a, 1));
        // NOT keys carry the operand twice, matching its cache key.
        scratch.frames.push(Frame::Combine { op, a, b: a, c: 0, top });
        scratch.frames.push(Frame::Eval { op, a: hi, b: hi, c: 0 });
        scratch.frames.push(Frame::Eval { op, a: lo, b: lo, c: 0 });
        return;
    }
    if op == OP_ITE {
        if a == ONE {
            scratch.results.push(b);
            return;
        }
        if a == ZERO {
            scratch.results.push(c);
            return;
        }
        let cpl = ctx.complement();
        if cpl && is_complemented(a) {
            // ite(¬f, g, h) = ite(f, h, g): keep the predicate regular.
            a = negate(a);
            std::mem::swap(&mut b, &mut c);
        }
        if b == c {
            scratch.results.push(b);
            return;
        }
        if b == ONE && c == ZERO {
            scratch.results.push(a);
            return;
        }
        if cpl && b == ZERO && c == ONE {
            scratch.results.push(negate(a));
            return;
        }
        let mut neg = false;
        if cpl && is_complemented(b) {
            // ite(f, ¬g, ¬h) = ¬ite(f, g, h): one canonical cache entry
            // serves both output parities.
            b = negate(b);
            c = negate(c);
            neg = true;
        }
        if let Some(r) = ctx.cache_get((OP_ITE, a, b, c)) {
            if neg {
                ctx.note_complement_hit();
            }
            scratch.results.push(negate_if(neg, r));
            return;
        }
        let top = ctx.raw_level(a).min(ctx.raw_level(b)).min(ctx.raw_level(c));
        debug_assert_ne!(top, TERMINAL_LEVEL);
        let (f0, f1) = cofactors_at(ctx, a, top);
        let (g0, g1) = cofactors_at(ctx, b, top);
        let (h0, h1) = cofactors_at(ctx, c, top);
        if neg {
            scratch.frames.push(Frame::Negate);
        }
        scratch.frames.push(Frame::Combine { op, a, b, c, top });
        scratch.frames.push(Frame::Eval { op, a: f1, b: g1, c: h1 });
        scratch.frames.push(Frame::Eval { op, a: f0, b: g0, c: h0 });
        return;
    }
    // Binary connectives: terminal / trivial rules first.
    match op {
        OP_AND => {
            if a == ZERO || b == ZERO {
                scratch.results.push(ZERO);
                return;
            }
            if a == ONE {
                scratch.results.push(b);
                return;
            }
            if b == ONE {
                scratch.results.push(a);
                return;
            }
            if a == b {
                scratch.results.push(a);
                return;
            }
            if ctx.complement() && a == negate(b) {
                // f ∧ ¬f = 0.
                scratch.results.push(ZERO);
                return;
            }
        }
        OP_OR => {
            if a == ONE || b == ONE {
                scratch.results.push(ONE);
                return;
            }
            if a == ZERO {
                scratch.results.push(b);
                return;
            }
            if b == ZERO {
                scratch.results.push(a);
                return;
            }
            if a == b {
                scratch.results.push(a);
                return;
            }
            if ctx.complement() && a == negate(b) {
                // f ∨ ¬f = 1.
                scratch.results.push(ONE);
                return;
            }
        }
        OP_XOR => {
            if a == ZERO {
                scratch.results.push(b);
                return;
            }
            if b == ZERO {
                scratch.results.push(a);
                return;
            }
            if a == b {
                scratch.results.push(ZERO);
                return;
            }
            if ctx.complement() {
                if a == negate(b) {
                    scratch.results.push(ONE);
                    return;
                }
                if a == ONE {
                    scratch.results.push(negate(b));
                    return;
                }
                if b == ONE {
                    scratch.results.push(negate(a));
                    return;
                }
                if is_complemented(a) || is_complemented(b) {
                    // x ⊕ ¬y = ¬(x ⊕ y): key on the plain pair and
                    // complement the output when the parities differ.
                    let neg = is_complemented(a) ^ is_complemented(b);
                    let (sa, sb) = (strip(a), strip(b));
                    let (x, y) = if sa <= sb { (sa, sb) } else { (sb, sa) };
                    if let Some(r) = ctx.cache_get((op, x, y, 0)) {
                        if neg {
                            ctx.note_complement_hit();
                        }
                        scratch.results.push(negate_if(neg, r));
                        return;
                    }
                    if neg {
                        scratch.frames.push(Frame::Negate);
                    }
                    scratch.frames.push(Frame::Expand { op, a: x, b: y });
                    return;
                }
            } else {
                if a == ONE {
                    // ¬g, evaluated by the same machine.
                    scratch.frames.push(Frame::Eval { op: OP_NOT, a: b, b, c: 0 });
                    return;
                }
                if b == ONE {
                    scratch.frames.push(Frame::Eval { op: OP_NOT, a, b: a, c: 0 });
                    return;
                }
            }
        }
        _ => unreachable!("unknown binary op"),
    }
    // Commutative operations: normalise the operand order for better
    // cache hit rates.
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    if let Some(r) = ctx.cache_get((op, x, y, 0)) {
        scratch.results.push(r);
        return;
    }
    expand_binary(ctx, op, x, y, scratch);
}

/// Shannon expansion of a binary subproblem whose terminal rules and
/// cache probe already ran. Children that resolve immediately — by a
/// terminal rule or a cache hit — never become frames, so the common
/// mixed case costs one frame round-trip instead of three.
fn expand_binary<C: DdCtx>(ctx: &mut C, op: u8, x: u32, y: u32, scratch: &mut ApplyScratch) {
    // The connectives are commutative and keyed on the normalised
    // pair; child subproblems arrive here unnormalised via
    // `Frame::Expand`, so normalise again before keying the result.
    let (x, y) = if x <= y { (x, y) } else { (y, x) };
    let top = ctx.raw_level(x).min(ctx.raw_level(y));
    let (f0, f1) = cofactors_at(ctx, x, top);
    let (g0, g1) = cofactors_at(ctx, y, top);
    let low = immediate_binary(ctx, op, f0, g0);
    let high = immediate_binary(ctx, op, f1, g1);
    match (low, high) {
        (Immediate::Resolved(lo), Immediate::Resolved(hi)) => {
            let r = ctx.mk(top, &[lo, hi]);
            ctx.cache_insert((op, x, y, 0), r);
            scratch.results.push(r);
        }
        (Immediate::Resolved(lo), high) => {
            scratch.frames.push(Frame::Combine { op, a: x, b: y, c: 0, top });
            scratch.results.push(lo);
            scratch.frames.push(match high {
                Immediate::Expand => Frame::Expand { op, a: f1, b: g1 },
                _ => Frame::Eval { op, a: f1, b: g1, c: 0 },
            });
        }
        (low, Immediate::Resolved(hi)) => {
            scratch.frames.push(Frame::CombineHigh { op, a: x, b: y, top, high: hi });
            scratch.frames.push(match low {
                Immediate::Expand => Frame::Expand { op, a: f0, b: g0 },
                _ => Frame::Eval { op, a: f0, b: g0, c: 0 },
            });
        }
        (low, high) => {
            scratch.frames.push(Frame::Combine { op, a: x, b: y, c: 0, top });
            scratch.frames.push(match high {
                Immediate::Expand => Frame::Expand { op, a: f1, b: g1 },
                _ => Frame::Eval { op, a: f1, b: g1, c: 0 },
            });
            scratch.frames.push(match low {
                Immediate::Expand => Frame::Expand { op, a: f0, b: g0 },
                _ => Frame::Eval { op, a: f0, b: g0, c: 0 },
            });
        }
    }
}

/// Tries to resolve a binary subproblem without a frame: terminal /
/// trivial rules, then (operands normalised) one cache probe. The
/// `Expand` outcome means the probe missed — the caller must push an
/// [`Frame::Expand`], not an `Eval`, so the probe is not repeated.
fn immediate_binary<C: DdCtx>(ctx: &mut C, op: u8, a: u32, b: u32) -> Immediate {
    match op {
        OP_AND => {
            if a == ZERO || b == ZERO {
                return Immediate::Resolved(ZERO);
            }
            if a == ONE {
                return Immediate::Resolved(b);
            }
            if b == ONE || a == b {
                return Immediate::Resolved(a);
            }
            if ctx.complement() && a == negate(b) {
                return Immediate::Resolved(ZERO);
            }
        }
        OP_OR => {
            if a == ONE || b == ONE {
                return Immediate::Resolved(ONE);
            }
            if a == ZERO {
                return Immediate::Resolved(b);
            }
            if b == ZERO || a == b {
                return Immediate::Resolved(a);
            }
            if ctx.complement() && a == negate(b) {
                return Immediate::Resolved(ONE);
            }
        }
        OP_XOR => {
            if a == ZERO {
                return Immediate::Resolved(b);
            }
            if b == ZERO {
                return Immediate::Resolved(a);
            }
            if a == b {
                return Immediate::Resolved(ZERO);
            }
            if ctx.complement() {
                if a == negate(b) {
                    return Immediate::Resolved(ONE);
                }
                if a == ONE {
                    return Immediate::Resolved(negate(b));
                }
                if b == ONE {
                    return Immediate::Resolved(negate(a));
                }
                if is_complemented(a) || is_complemented(b) {
                    // Probe under the parity-stripped key; a miss defers
                    // to `eval_step`, which redoes this normalization and
                    // queues the complementing frame.
                    let neg = is_complemented(a) ^ is_complemented(b);
                    let (sa, sb) = (strip(a), strip(b));
                    let (x, y) = if sa <= sb { (sa, sb) } else { (sb, sa) };
                    return match ctx.cache_get((op, x, y, 0)) {
                        Some(r) => {
                            if neg {
                                ctx.note_complement_hit();
                            }
                            Immediate::Resolved(negate_if(neg, r))
                        }
                        None => Immediate::Defer,
                    };
                }
            } else if a == ONE || b == ONE {
                // Redirects to NOT: needs the full Eval treatment.
                return Immediate::Defer;
            }
        }
        _ => unreachable!("unknown binary op"),
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    match ctx.cache_get((op, x, y, 0)) {
        Some(r) => Immediate::Resolved(r),
        None => Immediate::Expand,
    }
}

/// The cofactors of `f` with respect to the variable at raw level `top`
/// (which must be ≤ the level of `f`'s top variable).
pub(crate) fn cofactors_at<C: DdCtx>(ctx: &C, f: u32, top: u32) -> (u32, u32) {
    if f <= ONE || ctx.raw_level(f) != top {
        (f, f)
    } else {
        (ctx.child(f, 0), ctx.child(f, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively compares a BDD against a reference closure over all
    /// assignments of `n` variables.
    fn check<F: Fn(&[bool]) -> bool>(mgr: &BddManager, f: BddId, n: usize, reference: F) {
        for row in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (row >> i) & 1 == 1).collect();
            assert_eq!(
                mgr.eval(f, &assignment),
                reference(&assignment),
                "assignment {assignment:?}"
            );
        }
    }

    #[test]
    fn basic_connectives() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let and = mgr.and(x, y);
        check(&mgr, and, 3, |a| a[0] && a[1]);
        let or = mgr.or(and, z);
        check(&mgr, or, 3, |a| (a[0] && a[1]) || a[2]);
        let xor = mgr.xor(x, z);
        check(&mgr, xor, 3, |a| a[0] ^ a[2]);
        let not = mgr.not(or);
        check(&mgr, not, 3, |a| !((a[0] && a[1]) || a[2]));
        let imp = mgr.implies(x, y);
        check(&mgr, imp, 3, |a| !a[0] || a[1]);
    }

    #[test]
    fn double_negation_is_identity() {
        let mut mgr = BddManager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(2);
        let f = mgr.xor(x, y);
        let nf = mgr.not(f);
        let nnf = mgr.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn de_morgan() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let and = mgr.and(x, y);
        let lhs = mgr.not(and);
        let nx = mgr.not(x);
        let ny = mgr.not(y);
        let rhs = mgr.or(nx, ny);
        assert_eq!(lhs, rhs, "¬(x∧y) must equal ¬x∨¬y by canonicity");
    }

    #[test]
    fn ite_matches_definition() {
        let mut mgr = BddManager::new(3);
        let f = mgr.var(0);
        let g = mgr.var(1);
        let h = mgr.var(2);
        let ite = mgr.ite(f, g, h);
        check(&mgr, ite, 3, |a| if a[0] { a[1] } else { a[2] });
        // ite(f, 1, 0) = f
        assert_eq!(mgr.ite(f, BddId::ONE, BddId::ZERO), f);
        // ite with equal branches
        assert_eq!(mgr.ite(f, g, g), g);
        // terminal guards
        assert_eq!(mgr.ite(BddId::ONE, g, h), g);
        assert_eq!(mgr.ite(BddId::ZERO, g, h), h);
    }

    #[test]
    fn many_operand_helpers() {
        let mut mgr = BddManager::new(4);
        let vars: Vec<BddId> = (0..4).map(|i| mgr.var(i)).collect();
        let all = mgr.and_many(vars.iter().copied());
        check(&mgr, all, 4, |a| a.iter().all(|&v| v));
        let any = mgr.or_many(vars.iter().copied());
        check(&mgr, any, 4, |a| a.iter().any(|&v| v));
        let parity = mgr.xor_many(vars.iter().copied());
        check(&mgr, parity, 4, |a| a.iter().filter(|&&v| v).count() % 2 == 1);
        assert_eq!(mgr.and_many(std::iter::empty()), mgr.one());
        assert_eq!(mgr.or_many(std::iter::empty()), mgr.zero());
    }

    #[test]
    fn thresholds() {
        let mut mgr = BddManager::new(5);
        let vars: Vec<BddId> = (0..5).map(|i| mgr.var(i)).collect();
        for k in 0..=6 {
            let f = mgr.at_least(k, &vars);
            check(&mgr, f, 5, |a| a.iter().filter(|&&v| v).count() >= k);
        }
        let exactly2 = mgr.exactly(2, &vars);
        check(&mgr, exactly2, 5, |a| a.iter().filter(|&&v| v).count() == 2);
        // 2-of-3 equals the majority function.
        let maj_vars = &vars[0..3];
        let maj = mgr.at_least(2, maj_vars);
        check(&mgr, maj, 3, |a| (a[0] as u8 + a[1] as u8 + a[2] as u8) >= 2);
    }

    #[test]
    fn restrict_and_exists() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let yz = mgr.and(y, z);
        let f = mgr.or(x, yz); // f = x + y z
        let f_x1 = mgr.restrict(f, 0, true);
        assert_eq!(f_x1, mgr.one());
        let f_x0 = mgr.restrict(f, 0, false);
        assert_eq!(f_x0, yz);
        // Restrict on a variable not in the support is the identity.
        assert_eq!(mgr.restrict(yz, 0, true), yz);
        // Restrict below the root.
        let f_z0 = mgr.restrict(f, 2, false);
        assert_eq!(f_z0, x);
        // ∃x . f = 1 (taking x = 1 satisfies it).
        assert_eq!(mgr.exists(f, 0), mgr.one());
        // ∃z . yz = y
        assert_eq!(mgr.exists(yz, 2), y);
    }

    #[test]
    fn cache_effectiveness_same_result() {
        // Repeating an operation must give the identical node id (canonical + cached).
        let mut mgr = BddManager::new(8);
        let vars: Vec<BddId> = (0..8).map(|i| mgr.var(i)).collect();
        let f1 = mgr.at_least(3, &vars);
        let before = mgr.peak_nodes();
        let f2 = mgr.at_least(3, &vars);
        assert_eq!(f1, f2);
        assert_eq!(mgr.peak_nodes(), before, "no new nodes should be created");
        mgr.clear_op_caches();
        let f3 = mgr.at_least(3, &vars);
        assert_eq!(f1, f3);
    }
}
