//! Boolean operations on ROBDDs: NOT, AND, OR, XOR, ITE and thresholds.
//!
//! All binary operations use the classic Shannon-expansion `apply`
//! algorithm with memoization keyed on the operand node pair, so the cost
//! of an operation is bounded by the product of the operand sizes.

use crate::manager::{BddId, BddManager, TERMINAL_LEVEL};

/// Operation tags used as keys in the kernel's operation cache.
const OP_AND: u8 = 0;
const OP_OR: u8 = 1;
const OP_XOR: u8 = 2;
const OP_NOT: u8 = 3;
const OP_ITE: u8 = 4;

impl BddManager {
    /// Logical negation.
    pub fn not(&mut self, f: BddId) -> BddId {
        if f.is_zero() {
            return BddId::ONE;
        }
        if f.is_one() {
            return BddId::ZERO;
        }
        if let Some(r) = self.dd.cache_get((OP_NOT, f.0, f.0, 0)) {
            return BddId(r);
        }
        let level = self.raw_level(f) as usize;
        let low = self.low(f);
        let high = self.high(f);
        let nl = self.not(low);
        let nh = self.not(high);
        let r = self.mk(level, nl, nh);
        self.dd.cache_insert((OP_NOT, f.0, f.0, 0), r.0);
        r
    }

    /// Logical conjunction `f ∧ g`.
    pub fn and(&mut self, f: BddId, g: BddId) -> BddId {
        self.binary(OP_AND, f, g)
    }

    /// Logical disjunction `f ∨ g`.
    pub fn or(&mut self, f: BddId, g: BddId) -> BddId {
        self.binary(OP_OR, f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: BddId, g: BddId) -> BddId {
        self.binary(OP_XOR, f, g)
    }

    /// Implication `f → g` (derived operation).
    pub fn implies(&mut self, f: BddId, g: BddId) -> BddId {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Conjunction of an arbitrary number of operands.
    pub fn and_many(&mut self, operands: impl IntoIterator<Item = BddId>) -> BddId {
        let mut acc = BddId::ONE;
        for op in operands {
            acc = self.and(acc, op);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an arbitrary number of operands.
    pub fn or_many(&mut self, operands: impl IntoIterator<Item = BddId>) -> BddId {
        let mut acc = BddId::ZERO;
        for op in operands {
            acc = self.or(acc, op);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// Parity (multi-operand XOR).
    pub fn xor_many(&mut self, operands: impl IntoIterator<Item = BddId>) -> BddId {
        let mut acc = BddId::ZERO;
        for op in operands {
            acc = self.xor(acc, op);
        }
        acc
    }

    /// If-then-else `ite(f, g, h) = f·g + f̄·h`.
    pub fn ite(&mut self, f: BddId, g: BddId, h: BddId) -> BddId {
        // Terminal cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if let Some(r) = self.dd.cache_get((OP_ITE, f.0, g.0, h.0)) {
            return BddId(r);
        }
        let top = self.raw_level(f).min(self.raw_level(g)).min(self.raw_level(h));
        debug_assert_ne!(top, TERMINAL_LEVEL);
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let (h0, h1) = self.cofactors_at(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top as usize, low, high);
        self.dd.cache_insert((OP_ITE, f.0, g.0, h.0), r.0);
        r
    }

    /// "At least `k` of the operands are true" (threshold / voter function).
    ///
    /// Built with a dynamic program over partial counts, which keeps the
    /// construction polynomial in `k · n` BDD operations.
    pub fn at_least(&mut self, k: usize, operands: &[BddId]) -> BddId {
        let n = operands.len();
        if k == 0 {
            return BddId::ONE;
        }
        if k > n {
            return BddId::ZERO;
        }
        // state[j] = BDD of "at least j of the operands processed so far are true", j = 0..=k
        let mut state = vec![BddId::ZERO; k + 1];
        state[0] = BddId::ONE;
        for &op in operands {
            // Process from high j to low j so that each round uses the previous round's values.
            for j in (1..=k).rev() {
                let with_op = self.and(state[j - 1], op);
                state[j] = self.or(state[j], with_op);
            }
        }
        state[k]
    }

    /// "Exactly `k` of the operands are true".
    pub fn exactly(&mut self, k: usize, operands: &[BddId]) -> BddId {
        let at_least_k = self.at_least(k, operands);
        let at_least_k1 = self.at_least(k + 1, operands);
        let not_more = self.not(at_least_k1);
        self.and(at_least_k, not_more)
    }

    /// Existential quantification of the variable at `level`:
    /// `∃x_level . f = f|x=0 ∨ f|x=1`.
    pub fn exists(&mut self, f: BddId, level: usize) -> BddId {
        let f0 = self.restrict(f, level, false);
        let f1 = self.restrict(f, level, true);
        self.or(f0, f1)
    }

    /// Cofactor of `f` with the variable at `level` fixed to `value`.
    pub fn restrict(&mut self, f: BddId, level: usize, value: bool) -> BddId {
        if f.is_terminal() {
            return f;
        }
        let node_level = self.raw_level(f);
        if node_level > level as u32 {
            // f does not depend on the variable (it only tests lower variables).
            return f;
        }
        if node_level == level as u32 {
            return if value { self.high(f) } else { self.low(f) };
        }
        // node_level < level: rebuild with restricted children (memoized via mk's unique table only;
        // an explicit cache is unnecessary for the shallow uses in this crate).
        let low = self.low(f);
        let high = self.high(f);
        let rl = self.restrict(low, level, value);
        let rh = self.restrict(high, level, value);
        self.mk(node_level as usize, rl, rh)
    }

    fn binary(&mut self, op: u8, f: BddId, g: BddId) -> BddId {
        // Terminal / trivial cases.
        match op {
            OP_AND => {
                if f.is_zero() || g.is_zero() {
                    return BddId::ZERO;
                }
                if f.is_one() {
                    return g;
                }
                if g.is_one() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            OP_OR => {
                if f.is_one() || g.is_one() {
                    return BddId::ONE;
                }
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            OP_XOR => {
                if f.is_zero() {
                    return g;
                }
                if g.is_zero() {
                    return f;
                }
                if f == g {
                    return BddId::ZERO;
                }
                if f.is_one() {
                    return self.not(g);
                }
                if g.is_one() {
                    return self.not(f);
                }
            }
            _ => unreachable!("unknown binary op"),
        }
        // Commutative operations: normalise the operand order for better cache hit rates.
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.dd.cache_get((op, a.0, b.0, 0)) {
            return BddId(r);
        }
        let top = self.raw_level(a).min(self.raw_level(b));
        let (a0, a1) = self.cofactors_at(a, top);
        let (b0, b1) = self.cofactors_at(b, top);
        let low = self.binary(op, a0, b0);
        let high = self.binary(op, a1, b1);
        let r = self.mk(top as usize, low, high);
        self.dd.cache_insert((op, a.0, b.0, 0), r.0);
        r
    }

    /// The cofactors of `f` with respect to the variable at raw level `top`
    /// (which must be ≤ the level of `f`'s top variable).
    pub(crate) fn cofactors_at(&self, f: BddId, top: u32) -> (BddId, BddId) {
        if f.is_terminal() || self.raw_level(f) != top {
            (f, f)
        } else {
            (self.low(f), self.high(f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively compares a BDD against a reference closure over all
    /// assignments of `n` variables.
    fn check<F: Fn(&[bool]) -> bool>(mgr: &BddManager, f: BddId, n: usize, reference: F) {
        for row in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (row >> i) & 1 == 1).collect();
            assert_eq!(
                mgr.eval(f, &assignment),
                reference(&assignment),
                "assignment {assignment:?}"
            );
        }
    }

    #[test]
    fn basic_connectives() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let and = mgr.and(x, y);
        check(&mgr, and, 3, |a| a[0] && a[1]);
        let or = mgr.or(and, z);
        check(&mgr, or, 3, |a| (a[0] && a[1]) || a[2]);
        let xor = mgr.xor(x, z);
        check(&mgr, xor, 3, |a| a[0] ^ a[2]);
        let not = mgr.not(or);
        check(&mgr, not, 3, |a| !((a[0] && a[1]) || a[2]));
        let imp = mgr.implies(x, y);
        check(&mgr, imp, 3, |a| !a[0] || a[1]);
    }

    #[test]
    fn double_negation_is_identity() {
        let mut mgr = BddManager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(2);
        let f = mgr.xor(x, y);
        let nf = mgr.not(f);
        let nnf = mgr.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn de_morgan() {
        let mut mgr = BddManager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let and = mgr.and(x, y);
        let lhs = mgr.not(and);
        let nx = mgr.not(x);
        let ny = mgr.not(y);
        let rhs = mgr.or(nx, ny);
        assert_eq!(lhs, rhs, "¬(x∧y) must equal ¬x∨¬y by canonicity");
    }

    #[test]
    fn ite_matches_definition() {
        let mut mgr = BddManager::new(3);
        let f = mgr.var(0);
        let g = mgr.var(1);
        let h = mgr.var(2);
        let ite = mgr.ite(f, g, h);
        check(&mgr, ite, 3, |a| if a[0] { a[1] } else { a[2] });
        // ite(f, 1, 0) = f
        assert_eq!(mgr.ite(f, BddId::ONE, BddId::ZERO), f);
        // ite with equal branches
        assert_eq!(mgr.ite(f, g, g), g);
        // terminal guards
        assert_eq!(mgr.ite(BddId::ONE, g, h), g);
        assert_eq!(mgr.ite(BddId::ZERO, g, h), h);
    }

    #[test]
    fn many_operand_helpers() {
        let mut mgr = BddManager::new(4);
        let vars: Vec<BddId> = (0..4).map(|i| mgr.var(i)).collect();
        let all = mgr.and_many(vars.iter().copied());
        check(&mgr, all, 4, |a| a.iter().all(|&v| v));
        let any = mgr.or_many(vars.iter().copied());
        check(&mgr, any, 4, |a| a.iter().any(|&v| v));
        let parity = mgr.xor_many(vars.iter().copied());
        check(&mgr, parity, 4, |a| a.iter().filter(|&&v| v).count() % 2 == 1);
        assert_eq!(mgr.and_many(std::iter::empty()), mgr.one());
        assert_eq!(mgr.or_many(std::iter::empty()), mgr.zero());
    }

    #[test]
    fn thresholds() {
        let mut mgr = BddManager::new(5);
        let vars: Vec<BddId> = (0..5).map(|i| mgr.var(i)).collect();
        for k in 0..=6 {
            let f = mgr.at_least(k, &vars);
            check(&mgr, f, 5, |a| a.iter().filter(|&&v| v).count() >= k);
        }
        let exactly2 = mgr.exactly(2, &vars);
        check(&mgr, exactly2, 5, |a| a.iter().filter(|&&v| v).count() == 2);
        // 2-of-3 equals the majority function.
        let maj_vars = &vars[0..3];
        let maj = mgr.at_least(2, maj_vars);
        check(&mgr, maj, 3, |a| (a[0] as u8 + a[1] as u8 + a[2] as u8) >= 2);
    }

    #[test]
    fn restrict_and_exists() {
        let mut mgr = BddManager::new(3);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let yz = mgr.and(y, z);
        let f = mgr.or(x, yz); // f = x + y z
        let f_x1 = mgr.restrict(f, 0, true);
        assert_eq!(f_x1, mgr.one());
        let f_x0 = mgr.restrict(f, 0, false);
        assert_eq!(f_x0, yz);
        // Restrict on a variable not in the support is the identity.
        assert_eq!(mgr.restrict(yz, 0, true), yz);
        // Restrict below the root.
        let f_z0 = mgr.restrict(f, 2, false);
        assert_eq!(f_z0, x);
        // ∃x . f = 1 (taking x = 1 satisfies it).
        assert_eq!(mgr.exists(f, 0), mgr.one());
        // ∃z . yz = y
        assert_eq!(mgr.exists(yz, 2), y);
    }

    #[test]
    fn cache_effectiveness_same_result() {
        // Repeating an operation must give the identical node id (canonical + cached).
        let mut mgr = BddManager::new(8);
        let vars: Vec<BddId> = (0..8).map(|i| mgr.var(i)).collect();
        let f1 = mgr.at_least(3, &vars);
        let before = mgr.peak_nodes();
        let f2 = mgr.at_least(3, &vars);
        assert_eq!(f1, f2);
        assert_eq!(mgr.peak_nodes(), before, "no new nodes should be created");
        mgr.clear_op_caches();
        let f3 = mgr.at_least(3, &vars);
        assert_eq!(f1, f3);
    }
}
