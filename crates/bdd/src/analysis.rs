//! Structural and probabilistic analysis of ROBDDs: evaluation, node
//! counts, supports, satisfying fractions and probability of the function
//! being 1 under independent variable probabilities.

use crate::manager::{BddId, BddManager};

impl BddManager {
    /// Evaluates `f` under the assignment `assignment[level] = value`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the largest level actually
    /// tested on the path followed.
    pub fn eval(&self, f: BddId, assignment: &[bool]) -> bool {
        self.dd.eval(f.0, |level| usize::from(assignment[level]))
    }

    /// Number of nodes reachable from `f`, **including** the terminal
    /// nodes reached. This matches the usual "BDD size" metric.
    pub fn node_count(&self, f: BddId) -> usize {
        self.dd.node_count(f.0)
    }

    /// Number of *non-terminal* nodes reachable from `f`.
    pub fn inner_node_count(&self, f: BddId) -> usize {
        self.dd.inner_node_count(f.0)
    }

    /// All nodes reachable from `f` in depth-first order (each node once).
    pub fn reachable(&self, f: BddId) -> Vec<BddId> {
        self.dd.reachable(f.0).into_iter().map(BddId).collect()
    }

    /// The set of variable levels appearing in `f`, in increasing order.
    pub fn support(&self, f: BddId) -> Vec<usize> {
        self.dd.support(f.0)
    }

    /// Fraction of the `2^num_levels` assignments that satisfy `f`
    /// (the satisfying-assignment count normalised to a probability; equal
    /// to [`BddManager::probability`] with all probabilities ½).
    pub fn satisfying_fraction(&mut self, f: BddId) -> f64 {
        let probs = vec![0.5; self.num_levels()];
        self.probability(f, &probs)
    }

    /// Probability that `f` evaluates to 1 when the variable at each level
    /// `l` is independently true with probability `probabilities[l]`.
    ///
    /// This is the quantity the combinatorial method extracts from the
    /// decision diagram: a single depth-first traversal with memoization,
    /// linear in the number of nodes.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities` is shorter than the number of levels in
    /// the support of `f`.
    pub fn probability(&mut self, f: BddId, probabilities: &[f64]) -> f64 {
        // Variables skipped between a node and its children contribute a factor
        // of (p + (1-p)) = 1, so the kernel can ignore them.
        self.dd.probability(f.0, |level, value| {
            if value == 1 {
                probabilities[level]
            } else {
                1.0 - probabilities[level]
            }
        })
    }

    /// Counts the satisfying assignments of `f` over all `num_levels`
    /// variables (as an `f64`, since counts can exceed `u64` for very wide
    /// managers).
    pub fn sat_count(&mut self, f: BddId) -> f64 {
        self.satisfying_fraction(f) * 2f64.powi(self.num_levels() as i32)
    }

    /// Returns one satisfying assignment of `f` (values indexed by level;
    /// variables not tested on the chosen path are `false`), or `None` if
    /// `f` is unsatisfiable.
    pub fn any_sat(&self, f: BddId) -> Option<Vec<bool>> {
        if f.is_zero() {
            return None;
        }
        let mut assignment = vec![false; self.num_levels()];
        let mut cur = f;
        while !cur.is_terminal() {
            let level = self.level(cur).expect("non-terminal");
            // Prefer the child that can still reach TRUE.
            if !self.high(cur).is_zero() {
                assignment[level] = true;
                cur = self.high(cur);
            } else {
                assignment[level] = false;
                cur = self.low(cur);
            }
        }
        debug_assert!(cur.is_one());
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(mgr: &mut BddManager) -> BddId {
        // f = x0·x1 + x2
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        let x2 = mgr.var(2);
        let a = mgr.and(x0, x1);
        mgr.or(a, x2)
    }

    #[test]
    fn eval_and_counts() {
        let mut mgr = BddManager::new(3);
        let f = example(&mut mgr);
        assert!(mgr.eval(f, &[true, true, false]));
        assert!(mgr.eval(f, &[false, false, true]));
        assert!(!mgr.eval(f, &[true, false, false]));
        // x0·x1 + x2 has 3 decision nodes under the natural order.
        assert_eq!(mgr.inner_node_count(f), 3);
        assert_eq!(mgr.node_count(f), 5);
        assert_eq!(mgr.node_count(mgr.one()), 1);
        assert_eq!(mgr.inner_node_count(mgr.one()), 0);
    }

    #[test]
    fn support_and_reachable() {
        let mut mgr = BddManager::new(5);
        let f = example(&mut mgr);
        assert_eq!(mgr.support(f), vec![0, 1, 2]);
        assert_eq!(mgr.reachable(f).len(), 5);
        let x4 = mgr.var(4);
        assert_eq!(mgr.support(x4), vec![4]);
        assert!(mgr.support(mgr.zero()).is_empty());
    }

    #[test]
    fn satisfying_fraction_and_count() {
        let mut mgr = BddManager::new(3);
        let f = example(&mut mgr);
        // x0 x1 + x2 is true for 5 of the 8 assignments.
        assert!((mgr.satisfying_fraction(f) - 5.0 / 8.0).abs() < 1e-12);
        assert!((mgr.sat_count(f) - 5.0).abs() < 1e-9);
        assert_eq!(mgr.sat_count(mgr.one()), 8.0);
        assert_eq!(mgr.sat_count(mgr.zero()), 0.0);
    }

    #[test]
    fn probability_matches_enumeration() {
        let mut mgr = BddManager::new(3);
        let f = example(&mut mgr);
        let probs = [0.3, 0.7, 0.2];
        // Enumerate.
        let mut expect = 0.0;
        for row in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| (row >> i) & 1 == 1).collect();
            if mgr.eval(f, &a) {
                let mut p = 1.0;
                for i in 0..3 {
                    p *= if a[i] { probs[i] } else { 1.0 - probs[i] };
                }
                expect += p;
            }
        }
        assert!((mgr.probability(f, &probs) - expect).abs() < 1e-12);
    }

    #[test]
    fn probability_terminal_cases() {
        let mut mgr = BddManager::new(2);
        assert_eq!(mgr.probability(mgr.one(), &[0.1, 0.2]), 1.0);
        assert_eq!(mgr.probability(mgr.zero(), &[0.1, 0.2]), 0.0);
    }

    #[test]
    fn any_sat_returns_witness() {
        let mut mgr = BddManager::new(3);
        let f = example(&mut mgr);
        let witness = mgr.any_sat(f).unwrap();
        assert!(mgr.eval(f, &witness));
        assert!(mgr.any_sat(mgr.zero()).is_none());
        // A function requiring a 0-branch choice.
        let x0 = mgr.var(0);
        let nx0 = mgr.not(x0);
        let w = mgr.any_sat(nx0).unwrap();
        assert!(mgr.eval(nx0, &w));
        assert!(!w[0]);
    }
}
