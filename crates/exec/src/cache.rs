//! Compiled-pipeline LRU cache with a live-node eviction budget.
//!
//! The paper's economics hinge on compile-once / evaluate-many: once a
//! `(system, ordering spec, conversion)` configuration is compiled into a
//! [`Pipeline`], every further design point is a linear-time probability
//! walk. [`PipelineLru`] makes that reuse explicit for long-running
//! callers (the `socy-serve` daemon, the bench `Runner`): pipelines are
//! retained across requests and evicted least-recently-used when the sum
//! of their **live** (post-GC) ROMDD nodes exceeds a configurable budget.
//!
//! Charging the budget against [`Pipeline::live_nodes`] — not the
//! `peak_nodes` high-water mark — is deliberate: peaks measure transient
//! compilation pressure that has already been garbage-collected, so
//! evicting on peaks would punish long-lived managers for history rather
//! than for the memory they actually hold.

use soc_yield_core::Pipeline;

/// Hit/miss/eviction counters of a [`PipelineLru`] since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident pipeline.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Pipelines inserted (including replacements of an existing key).
    pub insertions: u64,
    /// Pipelines evicted to satisfy the live-node budget.
    pub evictions: u64,
}

struct Entry<K> {
    key: K,
    pipeline: Pipeline,
    last_used: u64,
}

/// An LRU cache of compiled [`Pipeline`]s keyed by `K`, bounded by the
/// total live-node count of its residents rather than by entry count —
/// one huge diagram can cost more than many small ones.
///
/// Lookups are linear scans: the cache holds at most a handful of
/// multi-thousand-node diagrams, so a comparison per entry is noise next
/// to a single probability evaluation.
pub struct PipelineLru<K> {
    /// Maximum summed [`Pipeline::live_nodes`]; `None` = unbounded.
    budget: Option<usize>,
    /// Monotonic access clock backing the LRU order.
    clock: u64,
    entries: Vec<Entry<K>>,
    stats: CacheStats,
}

impl<K: Eq> PipelineLru<K> {
    /// Creates a cache evicting down to `budget` summed live nodes
    /// (`None` disables eviction).
    pub fn new(budget: Option<usize>) -> Self {
        Self { budget, clock: 0, entries: Vec::new(), stats: CacheStats::default() }
    }

    /// The configured live-node budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Number of resident pipelines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total live (post-GC) ROMDD nodes across all resident pipelines —
    /// the quantity the budget is charged against.
    pub fn live_nodes(&self) -> usize {
        self.entries.iter().map(|e| e.pipeline.live_nodes()).sum()
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` is resident (does not touch the LRU order or the
    /// hit/miss counters).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.iter().any(|e| e.key == *key)
    }

    /// Looks up `key` without touching the LRU order or the hit/miss
    /// counters (for inspection after a counted [`PipelineLru::get`]).
    pub fn peek(&self, key: &K) -> Option<&Pipeline> {
        self.entries.iter().find(|e| e.key == *key).map(|e| &e.pipeline)
    }

    /// Like [`PipelineLru::peek`], but mutable — so a caller that already
    /// counted its lookup can evaluate on the resident pipeline without
    /// counting a second hit.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut Pipeline> {
        self.entries.iter_mut().find(|e| e.key == *key).map(|e| &mut e.pipeline)
    }

    /// Removes and returns the pipeline under `key`, if resident. Not
    /// counted as an eviction: callers use this to discard a pipeline
    /// whose evaluation panicked (its diagrams may be half-updated), not
    /// to enforce the budget.
    pub fn remove(&mut self, key: &K) -> Option<Pipeline> {
        let at = self.entries.iter().position(|e| e.key == *key)?;
        Some(self.entries.remove(at).pipeline)
    }

    /// Looks up `key`, marking it most-recently-used on a hit. Counts a
    /// hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&mut Pipeline> {
        match self.entries.iter_mut().find(|e| e.key == *key) {
            Some(entry) => {
                self.stats.hits += 1;
                self.clock += 1;
                entry.last_used = self.clock;
                Some(&mut entry.pipeline)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `pipeline` under `key` (replacing any previous resident),
    /// marks it most-recently-used, then evicts least-recently-used
    /// entries until the live-node budget holds. The entry just inserted
    /// is never evicted, even when it alone exceeds the budget — the
    /// caller is about to use it.
    pub fn insert(&mut self, key: K, pipeline: Pipeline) {
        self.stats.insertions += 1;
        self.clock += 1;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(entry) => {
                entry.pipeline = pipeline;
                entry.last_used = self.clock;
            }
            None => self.entries.push(Entry { key, pipeline, last_used: self.clock }),
        }
        self.enforce_budget();
    }

    /// Looks up `key`; on a miss, builds a pipeline with `build`,
    /// inserts it, and returns it. Exactly one hit or one miss is
    /// counted per call (unlike a `get` + `insert` + `get` sequence).
    /// The entry handed back is never a victim of the eviction the
    /// insertion may trigger.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is inserted in that case.
    pub fn get_or_try_insert_with<E>(
        &mut self,
        key: &K,
        build: impl FnOnce() -> Result<Pipeline, E>,
    ) -> Result<&mut Pipeline, E>
    where
        K: Clone,
    {
        self.clock += 1;
        if self.contains(key) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            let pipeline = build()?;
            self.stats.insertions += 1;
            self.entries.push(Entry { key: key.clone(), pipeline, last_used: self.clock });
            self.enforce_budget();
        }
        let clock = self.clock;
        let entry =
            self.entries.iter_mut().find(|e| e.key == *key).expect(
                "resident: just found or just inserted, and the newest entry is never evicted",
            );
        entry.last_used = clock;
        Ok(&mut entry.pipeline)
    }

    /// Drops every resident pipeline (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.entries.len() > 1 && self.live_nodes() > budget {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty by the loop guard");
            self.entries.remove(oldest);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socy_defect::{ComponentProbabilities, NegativeBinomial};
    use socy_faulttree::Netlist;
    use socy_ordering::OrderingSpec;

    use crate::matrix::TruncationRule;
    use soc_yield_core::ConversionAlgorithm;

    /// A pipeline with one compiled model (so `live_nodes() > 0`).
    fn compiled_pipeline() -> Pipeline {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let f = nl.or([x1, x2]);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![0.4, 0.6]).unwrap();
        let mut pipeline = Pipeline::new(&nl, &comps).unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = TruncationRule::Epsilon(1e-2)
            .options(OrderingSpec::paper_default(), ConversionAlgorithm::TopDown);
        pipeline.evaluate(&lethal, &options).unwrap();
        pipeline
    }

    #[test]
    fn hit_returns_the_resident_pipeline_without_recompiling() {
        let mut lru = PipelineLru::new(None);
        assert!(lru.get(&"a").is_none());
        lru.insert("a", compiled_pipeline());
        let compiles = lru.get(&"a").unwrap().compiles();
        let pipeline = lru.get(&"a").unwrap();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = TruncationRule::Epsilon(1e-2)
            .options(OrderingSpec::paper_default(), ConversionAlgorithm::TopDown);
        pipeline.evaluate(&lethal, &options).unwrap();
        assert_eq!(pipeline.compiles(), compiles, "hit path pays no compilation");
        assert_eq!(lru.stats(), CacheStats { hits: 2, misses: 1, insertions: 1, evictions: 0 });
    }

    #[test]
    fn eviction_is_least_recently_used_and_budget_driven() {
        let per_pipeline = compiled_pipeline().live_nodes();
        assert!(per_pipeline > 0);
        // Room for exactly two residents.
        let mut lru = PipelineLru::new(Some(2 * per_pipeline));
        lru.insert("a", compiled_pipeline());
        lru.insert("b", compiled_pipeline());
        assert_eq!(lru.len(), 2);
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        assert!(lru.get(&"a").is_some());
        lru.insert("c", compiled_pipeline());
        assert_eq!(lru.len(), 2);
        assert!(lru.contains(&"a"));
        assert!(!lru.contains(&"b"));
        assert!(lru.contains(&"c"));
        assert_eq!(lru.stats().evictions, 1);
        assert!(lru.live_nodes() <= 2 * per_pipeline);
    }

    #[test]
    fn the_newest_entry_survives_even_over_budget() {
        let mut lru = PipelineLru::new(Some(0));
        lru.insert("only", compiled_pipeline());
        assert_eq!(lru.len(), 1, "the entry about to be used is never evicted");
        lru.insert("next", compiled_pipeline());
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(&"next"));
        assert_eq!(lru.stats().evictions, 1);
    }

    #[test]
    fn peek_and_remove_bypass_the_counters() {
        let mut lru = PipelineLru::new(None);
        assert!(lru.peek(&"a").is_none());
        lru.insert("a", compiled_pipeline());
        assert!(lru.peek(&"a").is_some());
        assert!(lru.peek_mut(&"a").is_some());
        assert!(lru.remove(&"a").is_some());
        assert!(lru.remove(&"a").is_none());
        assert!(!lru.contains(&"a"));
        let stats = lru.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 0, 0));
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn replacing_a_key_keeps_one_entry() {
        let mut lru = PipelineLru::new(None);
        lru.insert("a", compiled_pipeline());
        lru.insert("a", compiled_pipeline());
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.stats().insertions, 2);
        lru.clear();
        assert!(lru.is_empty());
    }
}
