//! The parallel executor: partitions a [`SweepMatrix`] into compilation
//! chunks, evaluates them on a scoped worker pool, and reassembles the
//! reports deterministically in matrix order.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use soc_yield_core::{
    CancelToken, CompileOptions, ConversionAlgorithm, CoreError, DdStats, Pipeline, SweepPoint,
    SystemDelta, YieldReport,
};
use socy_defect::DefectDistribution;
use socy_ordering::OrderingSpec;

use crate::matrix::{PointLabels, SharedDistribution, SweepMatrix, SystemSpec, TruncationRule};

/// One unit of parallel work: every point of one block that shares a
/// `(system, ordering spec, conversion)` configuration — i.e. exactly one
/// decision-diagram compilation, however many `(distribution, rule)`
/// evaluations (times the block's delta axis, if any) ride on it.
struct Chunk<'m> {
    /// Index of the [`SweepBlock`](crate::SweepBlock) the chunk came from.
    block: usize,
    system: &'m SystemSpec,
    spec: OrderingSpec,
    conversion: ConversionAlgorithm,
    /// Global matrix indices of the chunk's points, in matrix order —
    /// one per `(eval, delta)` combination when the block has deltas.
    indices: Vec<usize>,
    /// The distinct `(distribution, rule)` evaluations of the chunk.
    evals: Vec<(&'m dyn SharedDistribution, TruncationRule)>,
    /// The block's what-if delta family (empty = plain sweep).
    deltas: &'m [SystemDelta],
    /// Kernel knobs of this chunk's compilations (from
    /// [`SweepMatrix::options`]). The resource limits apply per
    /// compilation, i.e. per chunk — an over-budget chunk fails alone.
    options: CompileOptions,
    /// Cancellation token of the matrix (from [`SweepMatrix::cancel`]),
    /// observed by this chunk's governed compilations.
    cancel: Option<CancelToken>,
}

impl Chunk<'_> {
    fn run(&self) -> Result<(Vec<YieldReport>, Pipeline), ChunkFailure> {
        let mut pipeline =
            Pipeline::with_options(&self.system.fault_tree, &self.system.components, self.options)
                .map_err(ChunkFailure::from_core)?;
        pipeline.set_cancel_token(self.cancel.clone());
        if self.deltas.is_empty() {
            let points = self.evals.iter().map(|&(dist, rule)| SweepPoint {
                lethal: dist as &dyn DefectDistribution,
                options: rule.options(self.spec, self.conversion),
            });
            let reports = pipeline.sweep(points).map_err(ChunkFailure::from_core)?;
            return Ok((reports, pipeline));
        }
        // Delta families: the base system compiles once (kept resident in
        // the pipeline across evals), every variant rides on it.
        let mut reports = Vec::with_capacity(self.indices.len());
        for &(dist, rule) in &self.evals {
            let options = rule.options(self.spec, self.conversion);
            reports.extend(
                pipeline
                    .sweep_deltas(dist as &dyn DefectDistribution, &options, self.deltas)
                    .map_err(ChunkFailure::from_core)?,
            );
        }
        Ok((reports, pipeline))
    }

    /// Runs the chunk with unwinds contained: a panic anywhere inside
    /// compilation or evaluation (e.g. a faulty user-supplied
    /// distribution) becomes a [`ChunkFailure`] instead of poisoning the
    /// worker pool. `AssertUnwindSafe` is sound here because a failed
    /// chunk's pipeline is discarded wholesale — no state observed after
    /// the catch can be half-updated.
    fn run_contained(&self, keep_pipeline: bool) -> ChunkResult {
        match catch_unwind(AssertUnwindSafe(|| self.run())) {
            Ok(Ok((reports, pipeline))) => {
                Ok((reports, if keep_pipeline { Some(pipeline) } else { None }))
            }
            Ok(Err(failure)) => Err(failure),
            Err(payload) => Err(ChunkFailure {
                message: panic_message(payload.as_ref()),
                panicked: true,
                resource: false,
            }),
        }
    }
}

type ChunkResult = Result<(Vec<YieldReport>, Option<Pipeline>), ChunkFailure>;

/// Extracts the human-readable message of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// How one chunk failed (internal: carried over the result channel, then
/// expanded into a [`ChunkError`] with the chunk's coordinates).
struct ChunkFailure {
    message: String,
    panicked: bool,
    resource: bool,
}

impl ChunkFailure {
    /// A failure from a returned pipeline error, preserving whether it
    /// was resource exhaustion (budget/deadline/cancel) so callers can
    /// degrade instead of treating the chunk as broken.
    fn from_core(e: CoreError) -> Self {
        ChunkFailure {
            message: e.to_string(),
            panicked: false,
            resource: matches!(e, CoreError::Resource(_)),
        }
    }
}

/// Splits the matrix into chunks, in matrix order of their first point.
fn chunks(matrix: &SweepMatrix) -> Vec<Chunk<'_>> {
    let mut out: Vec<Chunk<'_>> = Vec::new();
    let mut index = 0usize;
    for (block_at, block) in matrix.blocks.iter().enumerate() {
        let conversions = block.conversions_or_default();
        let first_chunk_of_block = out.len();
        for system in &block.systems {
            let first_chunk_of_system = out.len();
            for dist in &block.distributions {
                for (spec_at, &spec) in block.specs.iter().enumerate() {
                    for (conv_at, &conversion) in conversions.iter().enumerate() {
                        let chunk_at =
                            first_chunk_of_system + spec_at * conversions.len() + conv_at;
                        for &rule in &block.rules {
                            if out.len() <= chunk_at {
                                out.push(Chunk {
                                    block: block_at,
                                    system,
                                    spec,
                                    conversion,
                                    indices: Vec::new(),
                                    evals: Vec::new(),
                                    deltas: &block.deltas,
                                    options: matrix.options,
                                    cancel: matrix.cancel.clone(),
                                });
                            }
                            out[chunk_at].evals.push((&*dist.distribution, rule));
                            for _ in 0..block.deltas.len().max(1) {
                                out[chunk_at].indices.push(index);
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(out[first_chunk_of_block..].iter().all(|c| !c.indices.is_empty()));
    }
    out
}

/// Failure of one design point (all points of a failed chunk share the
/// message of the underlying compilation or evaluation error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Label of the failed point.
    pub point: String,
    /// The underlying error, stringified.
    pub message: String,
    /// Whether the failure was resource exhaustion (budget, deadline or
    /// cancellation) — see [`ChunkError::resource`]. Resource-failed
    /// points are safe to answer with Monte-Carlo bounds instead.
    pub resource: bool,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.point, self.message)
    }
}

impl std::error::Error for SweepError {}

/// Failure of one compilation chunk, with the chunk's coordinates in the
/// matrix. One entry per failed chunk lands in
/// [`SweepSummary::chunk_errors`]; the chunk's points additionally carry
/// per-point [`SweepError`]s. A `panicked` error means the failure was an
/// unwind caught inside the worker — the rest of the sweep completed
/// normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkError {
    /// Index of the [`SweepBlock`](crate::SweepBlock) within the matrix.
    pub block: usize,
    /// Name of the system the chunk was compiling.
    pub system: String,
    /// Variable-ordering specification of the chunk.
    pub spec: OrderingSpec,
    /// ROBDD→ROMDD conversion algorithm of the chunk.
    pub conversion: ConversionAlgorithm,
    /// The underlying error, stringified (panic message for unwinds).
    pub message: String,
    /// Whether the failure was a caught panic rather than a returned
    /// error.
    pub panicked: bool,
    /// Whether the failure was resource exhaustion — a governed
    /// compilation exceeding its node budget or deadline, or a
    /// cancellation ([`CoreError::Resource`]). Resource failures leave
    /// the chunk's manager consistent; callers may retry with a larger
    /// budget or degrade to Monte-Carlo bounds.
    pub resource: bool,
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk (block {}, {}, {}, {:?}) {}: {}",
            self.block,
            self.system,
            self.spec.label(),
            self.conversion,
            if self.panicked { "panicked" } else { "failed" },
            self.message
        )
    }
}

impl std::error::Error for ChunkError {}

/// A compiled [`Pipeline`] retained from a successful chunk of a
/// [`SweepMatrix::run_keeping_pipelines`] call, keyed by the chunk's
/// coordinates so callers (e.g. a serving cache) can reuse the diagrams
/// for later evaluations without recompiling.
pub struct CompiledPipeline {
    /// Index of the [`SweepBlock`](crate::SweepBlock) within the matrix.
    pub block: usize,
    /// Name of the system the pipeline was compiled for.
    pub system: String,
    /// Variable-ordering specification the pipeline was compiled with.
    pub spec: OrderingSpec,
    /// ROBDD→ROMDD conversion algorithm the pipeline was compiled with.
    pub conversion: ConversionAlgorithm,
    /// The compiled pipeline, ready for linear-time re-evaluation.
    pub pipeline: Pipeline,
}

/// Result of one design point: its labels plus the report (or the error
/// of its chunk).
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Which point of the matrix this is.
    pub labels: PointLabels,
    /// The yield report, or the failure of the chunk that owned the
    /// point.
    pub result: Result<YieldReport, SweepError>,
}

/// Kernel statistics aggregated across every compiled decision diagram
/// of a sweep (one entry absorbed per chunk).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DdAggregate {
    /// Largest per-manager peak node count seen — the memory high-water
    /// mark of the busiest single compilation.
    pub peak_nodes_max: usize,
    /// Sum of the per-manager peak node counts (total transient
    /// allocation pressure of the sweep).
    pub peak_nodes_sum: u64,
    /// Sum of the per-manager unique-table entry counts.
    pub unique_entries_sum: u64,
    /// Operation-cache hits across all managers.
    pub op_cache_hits: u64,
    /// Operation-cache misses across all managers.
    pub op_cache_misses: u64,
    /// Operation-cache insertions across all managers.
    pub op_cache_insertions: u64,
    /// Operation-cache evictions (lossy direct-mapped conflicts) across
    /// all managers.
    pub op_cache_evictions: u64,
    /// Operation-cache hits obtained through a complemented-edge
    /// negation normalization across all managers (always `0` for
    /// ROMDD managers and when complemented edges are disabled).
    pub complement_hits: u64,
    /// Garbage collections run across all managers.
    pub gc_runs: u64,
    /// Nodes reclaimed by garbage collection across all managers.
    pub gc_reclaimed: u64,
    /// Intra-compilation parallel sections opened across all managers
    /// (always `0` when the matrix compiles sequentially).
    pub par_sections: u64,
    /// Tasks (splits + leaves) those parallel sections expanded into —
    /// deterministic for a fixed matrix, like `par_sections`.
    pub par_tasks: u64,
    /// Tasks executed by a worker other than the one they were queued on.
    /// Scheduling-dependent: nondeterministic run to run.
    pub par_steals: u64,
    /// Contended unique-table shard lock acquisitions inside parallel
    /// sections. Scheduling-dependent: nondeterministic run to run.
    pub par_shard_contention: u64,
}

impl DdAggregate {
    /// Folds one manager's statistics into the aggregate.
    pub fn absorb(&mut self, stats: &DdStats) {
        self.peak_nodes_max = self.peak_nodes_max.max(stats.peak_nodes);
        self.peak_nodes_sum += stats.peak_nodes as u64;
        self.unique_entries_sum += stats.unique_entries as u64;
        self.op_cache_hits += stats.op_cache_hits;
        self.op_cache_misses += stats.op_cache_misses;
        self.op_cache_insertions += stats.op_cache_insertions;
        self.op_cache_evictions += stats.op_cache_evictions;
        self.complement_hits += stats.complement_hits;
        self.gc_runs += stats.gc_runs;
        self.gc_reclaimed += stats.gc_reclaimed;
        self.par_sections += stats.par_sections;
        self.par_tasks += stats.par_tasks;
        self.par_steals += stats.par_steals;
        self.par_shard_contention += stats.par_shard_contention;
    }

    /// Fraction of operation-cache lookups that hit, in `[0, 1]`
    /// (`0` when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.op_cache_hits + self.op_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.op_cache_hits as f64 / total as f64
        }
    }

    /// Operation-cache hit rate as a percentage in `[0, 100]`.
    pub fn cache_hit_percent(&self) -> f64 {
        100.0 * self.cache_hit_rate()
    }

    /// Fraction of operation-cache insertions that evicted a live entry,
    /// as a percentage in `[0, 100]` (`0` when nothing was inserted).
    pub fn cache_evict_percent(&self) -> f64 {
        if self.op_cache_insertions == 0 {
            0.0
        } else {
            100.0 * self.op_cache_evictions as f64 / self.op_cache_insertions as f64
        }
    }
}

/// Per-worker execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Worker index, `0 .. threads`.
    pub worker: usize,
    /// Chunks this worker executed.
    pub chunks: usize,
    /// Design points this worker evaluated.
    pub points: usize,
    /// Wall-clock time the worker spent from spawn to exhaustion of the
    /// chunk queue.
    pub busy: Duration,
}

/// Aggregate statistics of one [`SweepMatrix::run`]: thread/chunk/point
/// counts, wall-clock and per-worker times, and the kernel statistics of
/// every ROBDD and ROMDD manager the sweep created, folded into one
/// [`DdAggregate`] each.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Number of worker threads used.
    pub threads: usize,
    /// Worker threads used inside each chunk's compilation (from
    /// [`SweepMatrix::options`]).
    pub compile_threads: usize,
    /// Total design points (successful or failed).
    pub points: usize,
    /// Number of compilation chunks the matrix was partitioned into.
    pub chunks: usize,
    /// Points whose chunk failed.
    pub failed_points: usize,
    /// One entry per failed chunk, in chunk (= matrix) order — including
    /// chunks that *panicked* rather than returned an error. Empty for a
    /// fully successful run.
    pub chunk_errors: Vec<ChunkError>,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
    /// Sum of the workers' busy times (≈ `wall_time × threads` when the
    /// partition balances well).
    pub busy_time: Duration,
    /// Sum over chunks of the compile time (coded-ROBDD build + ROMDD
    /// conversion) their reports carry.
    pub compile_time: Duration,
    /// Aggregated coded-ROBDD manager statistics.
    pub robdd: DdAggregate,
    /// Aggregated ROMDD manager statistics.
    pub romdd: DdAggregate,
    /// Per-worker breakdown, indexed by worker.
    pub workers: Vec<WorkerSummary>,
}

/// Everything a [`SweepMatrix::run`] produced: per-point outcomes in
/// matrix order plus the [`SweepSummary`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One outcome per design point, in matrix order.
    pub points: Vec<PointOutcome>,
    /// Aggregate statistics.
    pub summary: SweepSummary,
}

impl SweepOutcome {
    /// All reports in matrix order, or the failure of the *earliest*
    /// failed point (deterministic regardless of worker scheduling).
    ///
    /// # Errors
    ///
    /// Returns the [`SweepError`] of the first failed point in matrix
    /// order.
    pub fn reports(&self) -> Result<Vec<&YieldReport>, SweepError> {
        self.points.iter().map(|p| p.result.as_ref().map_err(SweepError::clone)).collect()
    }

    /// Like [`SweepOutcome::reports`], but by value.
    ///
    /// # Errors
    ///
    /// Returns the [`SweepError`] of the first failed point in matrix
    /// order.
    pub fn into_reports(self) -> Result<Vec<YieldReport>, SweepError> {
        self.points.into_iter().map(|p| p.result).collect()
    }
}

enum Message {
    Chunk { at: usize, result: Box<ChunkResult> },
    Worker(WorkerSummary),
}

impl SweepMatrix {
    /// Evaluates every design point of the matrix on `threads` workers
    /// (`0` = the machine's available parallelism) and returns the
    /// reports in matrix order plus a [`SweepSummary`].
    ///
    /// The matrix is partitioned into chunks of points sharing a
    /// `(system, ordering spec, conversion)` configuration within one
    /// block; each worker owns a private [`Pipeline`] (and hence private
    /// ROBDD/ROMDD managers) per chunk and the chunks communicate only
    /// through the result channel, so the outcome is **bit-identical for
    /// every thread count** — including `1` — and identical to evaluating
    /// each chunk with a serial [`Pipeline::sweep`].
    pub fn run(&self, threads: usize) -> SweepOutcome {
        self.run_inner(threads, false).0
    }

    /// Like [`SweepMatrix::run`], but additionally returns the compiled
    /// [`Pipeline`] of every *successful* chunk (in chunk order), so a
    /// caller-side cache can serve later evaluations of the same
    /// `(system, ordering spec, conversion)` configuration without
    /// recompiling — the paper's compile-once / evaluate-many economics.
    pub fn run_keeping_pipelines(&self, threads: usize) -> (SweepOutcome, Vec<CompiledPipeline>) {
        self.run_inner(threads, true)
    }

    fn run_inner(
        &self,
        threads: usize,
        keep_pipelines: bool,
    ) -> (SweepOutcome, Vec<CompiledPipeline>) {
        let started = Instant::now();
        let chunks = chunks(self);
        let threads = effective_threads(threads, chunks.len());
        let mut results: Vec<Option<ChunkResult>> = Vec::new();
        results.resize_with(chunks.len(), || None);
        let mut workers: Vec<WorkerSummary> = Vec::with_capacity(threads);

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Message>();
        thread::scope(|scope| {
            for worker in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let chunks = &chunks;
                scope.spawn(move || {
                    let spawned = Instant::now();
                    let mut done_chunks = 0usize;
                    let mut done_points = 0usize;
                    loop {
                        let at = next.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(at) else { break };
                        // Unwinds are caught per chunk: one faulty chunk
                        // must not take down the worker (or, transitively,
                        // a daemon running the sweep).
                        let result = chunk.run_contained(keep_pipelines);
                        done_chunks += 1;
                        done_points += chunk.indices.len();
                        if tx.send(Message::Chunk { at, result: Box::new(result) }).is_err() {
                            return; // collector gone; nothing left to report to
                        }
                    }
                    let _ = tx.send(Message::Worker(WorkerSummary {
                        worker,
                        chunks: done_chunks,
                        points: done_points,
                        busy: spawned.elapsed(),
                    }));
                });
            }
            drop(tx);
            // Deterministic reassembly: placement is keyed by chunk index,
            // so arrival order (worker scheduling) cannot influence it.
            for message in rx {
                match message {
                    Message::Chunk { at, result } => results[at] = Some(*result),
                    Message::Worker(summary) => workers.push(summary),
                }
            }
        });
        workers.sort_by_key(|w| w.worker);

        self.assemble(chunks, results, started.elapsed(), threads, workers)
    }

    fn assemble(
        &self,
        chunks: Vec<Chunk<'_>>,
        results: Vec<Option<ChunkResult>>,
        wall_time: Duration,
        threads: usize,
        workers: Vec<WorkerSummary>,
    ) -> (SweepOutcome, Vec<CompiledPipeline>) {
        let labels = self.labels();
        let mut points: Vec<Option<PointOutcome>> = Vec::new();
        points.resize_with(labels.len(), || None);
        let mut pipelines: Vec<CompiledPipeline> = Vec::new();
        let mut summary = SweepSummary {
            threads,
            compile_threads: self.options.compile_threads(),
            points: labels.len(),
            chunks: chunks.len(),
            failed_points: 0,
            chunk_errors: Vec::new(),
            wall_time,
            busy_time: workers.iter().map(|w| w.busy).sum(),
            compile_time: Duration::ZERO,
            robdd: DdAggregate::default(),
            romdd: DdAggregate::default(),
            workers,
        };
        for (chunk, result) in chunks.iter().zip(results) {
            // A missing result means the chunk's worker died before
            // reporting (it cannot happen while `run_contained` catches
            // unwinds, but a daemon must not die on "cannot happen").
            let result = result.unwrap_or_else(|| {
                Err(ChunkFailure {
                    message: "chunk worker terminated without sending a result".to_string(),
                    panicked: true,
                    resource: false,
                })
            });
            match result {
                Ok((reports, pipeline)) => {
                    debug_assert_eq!(reports.len(), chunk.indices.len());
                    // One compiled model per chunk: fold its statistics in
                    // once, from the last report (the ROMDD statistics are
                    // cumulative across the chunk's evaluations).
                    if let Some(last) = reports.last() {
                        summary.robdd.absorb(&last.robdd_stats);
                        summary.romdd.absorb(&last.romdd_stats);
                        summary.compile_time += last.robdd_time + last.conversion_time;
                    }
                    for (&index, report) in chunk.indices.iter().zip(reports) {
                        points[index] = Some(PointOutcome {
                            labels: labels[index].clone(),
                            result: Ok(report),
                        });
                    }
                    if let Some(pipeline) = pipeline {
                        pipelines.push(CompiledPipeline {
                            block: chunk.block,
                            system: chunk.system.name.clone(),
                            spec: chunk.spec,
                            conversion: chunk.conversion,
                            pipeline,
                        });
                    }
                }
                Err(failure) => {
                    summary.failed_points += chunk.indices.len();
                    summary.chunk_errors.push(ChunkError {
                        block: chunk.block,
                        system: chunk.system.name.clone(),
                        spec: chunk.spec,
                        conversion: chunk.conversion,
                        message: failure.message.clone(),
                        panicked: failure.panicked,
                        resource: failure.resource,
                    });
                    for &index in &chunk.indices {
                        points[index] = Some(PointOutcome {
                            labels: labels[index].clone(),
                            result: Err(SweepError {
                                point: labels[index].label(),
                                message: failure.message.clone(),
                                resource: failure.resource,
                            }),
                        });
                    }
                }
            }
        }
        let points = points
            .into_iter()
            .enumerate()
            .map(|(index, point)| {
                // By construction every point belongs to exactly one
                // chunk; degrade to a per-point error rather than
                // aborting if that invariant ever breaks.
                point.unwrap_or_else(|| {
                    summary.failed_points += 1;
                    PointOutcome {
                        labels: labels[index].clone(),
                        result: Err(SweepError {
                            point: labels[index].label(),
                            message: "point was not covered by any chunk".to_string(),
                            resource: false,
                        }),
                    }
                })
            })
            .collect();
        (SweepOutcome { points, summary }, pipelines)
    }
}

/// Resolves the requested worker count: `0` means the machine's available
/// parallelism, and more workers than chunks are never spawned.
pub fn effective_threads(requested: usize, chunks: usize) -> usize {
    let requested = if requested == 0 {
        thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        requested
    };
    requested.clamp(1, chunks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{NamedDistribution, SweepBlock};
    use socy_defect::{ComponentProbabilities, NegativeBinomial};
    use socy_faulttree::Netlist;

    fn figure2(name: &str) -> SystemSpec {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let x3 = nl.input("x3");
        let a = nl.and([x1, x2]);
        let f = nl.or([a, x3]);
        nl.set_output(f);
        SystemSpec::new(name, nl, ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap())
    }

    fn small_matrix() -> SweepMatrix {
        let mut block = SweepBlock::new();
        block.systems.push(figure2("F2a"));
        block.systems.push(figure2("F2b"));
        block
            .distributions
            .push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, 4.0).unwrap()));
        block
            .distributions
            .push(NamedDistribution::new("λ'=2", NegativeBinomial::new(2.0, 4.0).unwrap()));
        block.specs.push(OrderingSpec::paper_default());
        block.rules.push(TruncationRule::Epsilon(1e-2));
        block.rules.push(TruncationRule::Epsilon(1e-4));
        let mut matrix = SweepMatrix::new();
        matrix.add(block);
        matrix
    }

    #[test]
    fn chunking_groups_points_by_configuration() {
        let matrix = small_matrix();
        let chunks = chunks(&matrix);
        // 2 systems × 1 spec × 1 conversion.
        assert_eq!(chunks.len(), 2);
        // Each chunk carries 2 distributions × 2 rules = 4 points.
        assert_eq!(chunks[0].indices, vec![0, 1, 2, 3]);
        assert_eq!(chunks[1].indices, vec![4, 5, 6, 7]);
        assert_eq!(chunks[0].system.name, "F2a");
        assert_eq!(chunks[1].system.name, "F2b");
    }

    #[test]
    fn parallel_run_matches_single_worker_bit_for_bit() {
        let matrix = small_matrix();
        let serial = matrix.run(1);
        assert_eq!(serial.summary.threads, 1);
        assert_eq!(serial.summary.points, 8);
        assert_eq!(serial.summary.chunks, 2);
        assert_eq!(serial.summary.failed_points, 0);
        for threads in [2, 4] {
            let parallel = matrix.run(threads);
            assert_eq!(parallel.summary.threads, 2, "clamped to the chunk count");
            for (a, b) in serial.points.iter().zip(&parallel.points) {
                assert_eq!(a.labels, b.labels);
                let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
                assert_eq!(
                    ra.yield_lower_bound.to_bits(),
                    rb.yield_lower_bound.to_bits(),
                    "{}",
                    a.labels
                );
                assert_eq!(ra.truncation, rb.truncation);
                assert_eq!(ra.compiled_truncation, rb.compiled_truncation);
                assert_eq!(ra.coded_robdd_size, rb.coded_robdd_size);
                assert_eq!(ra.romdd_size, rb.romdd_size);
            }
            // The aggregate kernel statistics are deterministic too.
            assert_eq!(serial.summary.robdd, parallel.summary.robdd);
            assert_eq!(serial.summary.romdd, parallel.summary.romdd);
        }
    }

    #[test]
    fn run_matches_a_serial_pipeline_sweep() {
        let matrix = small_matrix();
        let outcome = matrix.run(2);
        let reports = outcome.reports().unwrap();
        // Reference: one serial Pipeline::sweep per (system, spec) chunk.
        let lethal1 = NegativeBinomial::new(1.0, 4.0).unwrap();
        let lethal2 = NegativeBinomial::new(2.0, 4.0).unwrap();
        let spec = OrderingSpec::paper_default();
        let system = figure2("F2a");
        let mut pipeline = Pipeline::new(&system.fault_tree, &system.components).unwrap();
        let points = [(1e-2, &lethal1), (1e-4, &lethal1), (1e-2, &lethal2), (1e-4, &lethal2)].map(
            |(epsilon, lethal)| SweepPoint {
                lethal: lethal as &dyn DefectDistribution,
                options: TruncationRule::Epsilon(epsilon)
                    .options(spec, ConversionAlgorithm::TopDown),
            },
        );
        let reference = pipeline.sweep(points).unwrap();
        for (swept, reference) in reports.iter().zip(&reference) {
            assert_eq!(swept.yield_lower_bound.to_bits(), reference.yield_lower_bound.to_bits());
            assert_eq!(swept.truncation, reference.truncation);
            assert_eq!(swept.compiled_truncation, reference.compiled_truncation);
            assert_eq!(swept.coded_robdd_size, reference.coded_robdd_size);
            assert_eq!(swept.robdd_peak, reference.robdd_peak);
            assert_eq!(swept.romdd_size, reference.romdd_size);
        }
    }

    #[test]
    fn failed_chunks_surface_per_point_errors_deterministically() {
        let mut matrix = small_matrix();
        // A block whose rule is unreachable: the sub-stochastic empirical
        // distribution can never accumulate 1 − 1e-12 of mass, so the
        // truncation selection fails.
        let mut bad = SweepBlock::new();
        bad.systems.push(figure2("BAD"));
        bad.distributions.push(NamedDistribution::new(
            "sub-stochastic",
            socy_defect::Empirical::new(vec![0.5, 0.3]).unwrap(),
        ));
        bad.specs.push(OrderingSpec::paper_default());
        bad.rules.push(TruncationRule::Epsilon(1e-12));
        matrix.add(bad);
        let outcome = matrix.run(3);
        assert_eq!(outcome.summary.failed_points, 1);
        assert_eq!(outcome.summary.points, 9);
        // The failed chunk is reported with its coordinates, as a
        // returned error rather than a caught panic.
        assert_eq!(outcome.summary.chunk_errors.len(), 1);
        let chunk_error = &outcome.summary.chunk_errors[0];
        assert_eq!(chunk_error.block, 1);
        assert_eq!(chunk_error.system, "BAD");
        assert!(!chunk_error.panicked);
        let failed = &outcome.points[8];
        let err = failed.result.as_ref().unwrap_err();
        assert!(err.point.contains("BAD"), "{err}");
        // reports()/into_reports() surface the earliest failure.
        assert_eq!(outcome.reports().unwrap_err(), *err);
        assert_eq!(outcome.clone().into_reports().unwrap_err(), *err);
        // The healthy points are unaffected.
        assert!(outcome.points[..8].iter().all(|p| p.result.is_ok()));
    }

    /// A defect distribution whose pmf unwinds — stands in for faulty
    /// user-supplied code reaching the executor.
    #[derive(Debug)]
    struct PanicDist;

    impl DefectDistribution for PanicDist {
        fn pmf(&self, _k: usize) -> f64 {
            panic!("deliberate test panic in pmf")
        }

        fn mean(&self) -> Option<f64> {
            None
        }
    }

    #[test]
    fn panicking_chunk_is_contained_and_reported() {
        let mut matrix = small_matrix();
        let mut bad = SweepBlock::new();
        bad.systems.push(figure2("PANIC"));
        bad.distributions.push(NamedDistribution::new("boom", PanicDist));
        bad.specs.push(OrderingSpec::paper_default());
        bad.rules.push(TruncationRule::Epsilon(1e-3));
        matrix.add(bad);
        let outcome = matrix.run(2);
        assert_eq!(outcome.summary.points, 9);
        assert_eq!(outcome.summary.failed_points, 1);
        assert_eq!(outcome.summary.chunk_errors.len(), 1);
        let chunk_error = &outcome.summary.chunk_errors[0];
        assert!(chunk_error.panicked, "{chunk_error}");
        assert_eq!(chunk_error.block, 1);
        assert_eq!(chunk_error.system, "PANIC");
        assert!(chunk_error.message.contains("deliberate test panic"), "{chunk_error}");
        // The panicking point carries a per-point error …
        let failed = outcome.points[8].result.as_ref().unwrap_err();
        assert!(failed.message.contains("deliberate test panic"), "{failed}");
        // … while every healthy point matches a clean run bit for bit.
        let clean = small_matrix().run(1);
        for (a, b) in clean.points.iter().zip(&outcome.points) {
            assert_eq!(
                a.result.as_ref().unwrap().yield_lower_bound.to_bits(),
                b.result.as_ref().unwrap().yield_lower_bound.to_bits(),
                "{}",
                a.labels
            );
        }
    }

    #[test]
    fn kept_pipelines_reevaluate_bit_identically() {
        let matrix = small_matrix();
        let (outcome, pipelines) = matrix.run_keeping_pipelines(2);
        assert_eq!(pipelines.len(), 2);
        assert_eq!(pipelines[0].system, "F2a");
        assert_eq!(pipelines[1].system, "F2b");
        // Re-evaluating on a kept pipeline reuses the compiled diagrams
        // and reproduces the sweep's result bit for bit.
        let mut kept = pipelines.into_iter().next().unwrap();
        let compiles_after_sweep = kept.pipeline.compiles();
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        let options = TruncationRule::Epsilon(1e-2).options(kept.spec, kept.conversion);
        let report = kept.pipeline.evaluate(&lethal, &options).unwrap();
        let reference = outcome.points[0].result.as_ref().unwrap();
        assert_eq!(report.yield_lower_bound.to_bits(), reference.yield_lower_bound.to_bits());
        assert_eq!(kept.pipeline.compiles(), compiles_after_sweep, "no recompilation");
        assert!(kept.pipeline.live_nodes() > 0);
    }

    #[test]
    fn delta_blocks_expand_and_match_materialized_systems() {
        let base = figure2("F2");
        let mut block = SweepBlock::new();
        block.systems.push(base.clone());
        block
            .distributions
            .push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, 4.0).unwrap()));
        block.specs.push(OrderingSpec::paper_default());
        block.rules.push(TruncationRule::Epsilon(1e-3));
        block.deltas.extend([
            SystemDelta::named("base"),
            SystemDelta::named("x1-hot").with_component_probability(0, 0.1),
            SystemDelta::named("x3-immune").with_component_probability(2, 0.0),
        ]);
        let mut matrix = SweepMatrix::new();
        matrix.add(block);
        assert_eq!(matrix.len(), 3, "one point per delta");
        let labels = matrix.labels();
        assert_eq!(labels[1].delta.as_deref(), Some("x1-hot"));
        assert!(labels[1].label().contains("Δx1-hot"));

        let outcome = matrix.run(1);
        assert_eq!(outcome.summary.chunks, 1, "the family shares one chunk");
        let reports = outcome.reports().unwrap();
        // Each point is bit-identical to sweeping the materialized
        // standalone system.
        let deltas = &matrix.blocks[0].deltas;
        let lethal = NegativeBinomial::new(1.0, 4.0).unwrap();
        for (report, delta) in reports.iter().zip(deltas) {
            let (ft, comps) = delta.materialize(&base.fault_tree, &base.components).unwrap();
            let mut pipeline = Pipeline::new(&ft, &comps).unwrap();
            let options = TruncationRule::Epsilon(1e-3)
                .options(OrderingSpec::paper_default(), ConversionAlgorithm::TopDown);
            let scratch = pipeline.evaluate(&lethal, &options).unwrap();
            assert_eq!(
                report.yield_lower_bound.to_bits(),
                scratch.yield_lower_bound.to_bits(),
                "Δ{}",
                delta.name()
            );
            assert_eq!(report.romdd_size, scratch.romdd_size);
        }
        // Worker scheduling cannot perturb delta families either.
        let parallel = matrix.run(2);
        for (a, b) in outcome.points.iter().zip(&parallel.points) {
            assert_eq!(
                a.result.as_ref().unwrap().yield_lower_bound.to_bits(),
                b.result.as_ref().unwrap().yield_lower_bound.to_bits()
            );
        }
    }

    #[test]
    fn over_budget_chunks_fail_with_resource_flagged_errors() {
        let mut matrix = small_matrix();
        // 2 nodes cannot hold any compiled diagram of the test systems.
        matrix.options = matrix.options.with_node_budget(2);
        let outcome = matrix.run(2);
        assert_eq!(outcome.summary.failed_points, 8);
        assert_eq!(outcome.summary.chunk_errors.len(), 2);
        for chunk_error in &outcome.summary.chunk_errors {
            assert!(chunk_error.resource, "{chunk_error}");
            assert!(!chunk_error.panicked, "{chunk_error}");
            assert!(chunk_error.message.contains("node budget"), "{chunk_error}");
        }
        // Ordinary (non-resource) failures keep resource = false.
        let mut bad = small_matrix();
        bad.blocks[0].rules = vec![TruncationRule::Epsilon(1e-12)];
        bad.blocks[0].distributions =
            vec![NamedDistribution::new("sub", socy_defect::Empirical::new(vec![0.5]).unwrap())];
        let outcome = bad.run(1);
        assert!(outcome.summary.chunk_errors.iter().all(|e| !e.resource));
    }

    #[test]
    fn cancelled_matrix_fails_every_chunk_as_a_resource_error() {
        let mut matrix = small_matrix();
        let cancel = CancelToken::new();
        cancel.cancel();
        matrix.cancel = Some(cancel);
        let outcome = matrix.run(2);
        assert_eq!(outcome.summary.failed_points, outcome.summary.points);
        assert!(!outcome.summary.chunk_errors.is_empty());
        for chunk_error in &outcome.summary.chunk_errors {
            assert!(chunk_error.resource, "{chunk_error}");
            assert!(chunk_error.message.contains("cancelled"), "{chunk_error}");
        }
        // An untouched token changes nothing: bit-identical to no token.
        let mut live = small_matrix();
        live.cancel = Some(CancelToken::new());
        let clean = small_matrix().run(1);
        for (a, b) in live.run(1).points.iter().zip(&clean.points) {
            assert_eq!(
                a.result.as_ref().unwrap().yield_lower_bound.to_bits(),
                b.result.as_ref().unwrap().yield_lower_bound.to_bits()
            );
        }
    }

    #[test]
    fn worker_accounting_covers_all_chunks() {
        let matrix = small_matrix();
        let outcome = matrix.run(2);
        let workers = &outcome.summary.workers;
        assert_eq!(workers.len(), 2);
        assert_eq!(workers.iter().map(|w| w.chunks).sum::<usize>(), 2);
        assert_eq!(workers.iter().map(|w| w.points).sum::<usize>(), 8);
        assert!(outcome.summary.busy_time >= workers[0].busy.max(workers[1].busy));
        assert!(outcome.summary.robdd.peak_nodes_max > 0);
        assert!(outcome.summary.robdd.cache_hit_rate() > 0.0);
        assert!(outcome.summary.compile_time > Duration::ZERO);
    }

    #[test]
    fn effective_thread_resolution() {
        assert_eq!(effective_threads(3, 10), 3);
        assert_eq!(effective_threads(16, 4), 4);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, usize::MAX) >= 1);
    }

    #[test]
    fn empty_matrix_runs_to_an_empty_outcome() {
        let matrix = SweepMatrix::new();
        let outcome = matrix.run(4);
        assert!(outcome.points.is_empty());
        assert_eq!(outcome.summary.points, 0);
        assert_eq!(outcome.summary.chunks, 0);
        assert_eq!(outcome.summary.threads, 1);
    }
}
