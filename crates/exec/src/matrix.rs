//! Declarative description of a design-space sweep: the systems,
//! distributions, ordering specifications and truncation rules whose
//! cross product forms the evaluated matrix.

use std::fmt;

use soc_yield_core::{
    AnalysisOptions, CancelToken, CompileOptions, ConversionAlgorithm, SystemDelta,
};
use socy_defect::{ComponentProbabilities, DefectDistribution};
use socy_faulttree::Netlist;
use socy_ordering::OrderingSpec;

/// A shareable lethal-defect distribution: the paper's concrete
/// distributions are plain data, so they all satisfy these bounds.
pub trait SharedDistribution: DefectDistribution + Send + Sync {}

impl<T: DefectDistribution + Send + Sync> SharedDistribution for T {}

/// One system under analysis: a named fault tree plus its component
/// probability model.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Display name used in point labels and reports (e.g. `ESEN4x2`).
    pub name: String,
    /// Gate-level fault tree `F` (input variable `i` ⇔ component `i`).
    pub fault_tree: Netlist,
    /// Per-component lethal-hit probabilities `P_i`.
    pub components: ComponentProbabilities,
}

impl SystemSpec {
    /// Creates a system specification.
    pub fn new(
        name: impl Into<String>,
        fault_tree: Netlist,
        components: ComponentProbabilities,
    ) -> Self {
        Self { name: name.into(), fault_tree, components }
    }
}

/// A named lethal-defect distribution (one value of the distribution axis
/// of a [`SweepBlock`]).
pub struct NamedDistribution {
    /// Display name used in point labels (e.g. `λ'=1`).
    pub name: String,
    /// The distribution itself.
    pub distribution: Box<dyn SharedDistribution>,
}

impl NamedDistribution {
    /// Creates a named distribution.
    pub fn new(name: impl Into<String>, distribution: impl SharedDistribution + 'static) -> Self {
        Self { name: name.into(), distribution: Box::new(distribution) }
    }
}

impl fmt::Debug for NamedDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NamedDistribution").field("name", &self.name).finish_non_exhaustive()
    }
}

/// How the truncation point `M` of one design point is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TruncationRule {
    /// Derive `M` from an absolute error requirement `ε`.
    Epsilon(f64),
    /// Analyse exactly `M` lethal defects.
    Fixed(usize),
}

impl TruncationRule {
    /// The [`AnalysisOptions`] evaluating this rule under `(spec,
    /// conversion)`.
    pub fn options(&self, spec: OrderingSpec, conversion: ConversionAlgorithm) -> AnalysisOptions {
        match *self {
            TruncationRule::Epsilon(epsilon) => {
                AnalysisOptions { epsilon, spec, conversion, fixed_truncation: None }
            }
            TruncationRule::Fixed(m) => AnalysisOptions {
                epsilon: AnalysisOptions::default().epsilon,
                spec,
                conversion,
                fixed_truncation: Some(m),
            },
        }
    }

    /// Short display form: `ε=1e-3` or `M=6`.
    pub fn label(&self) -> String {
        match self {
            TruncationRule::Epsilon(epsilon) => format!("ε={epsilon:e}"),
            TruncationRule::Fixed(m) => format!("M={m}"),
        }
    }
}

impl fmt::Display for TruncationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One rectangular slab of design points: the full cross product
/// `systems × distributions × specs × conversions × rules`.
///
/// Points enumerate in row-major order with the *system* axis outermost
/// and the *rule* axis innermost — i.e. for each system, for each
/// distribution, for each ordering spec, for each conversion, for each
/// truncation rule. Studies whose axes are ragged (say, an extra
/// distribution only for the small instances, as in the paper's tables)
/// compose several blocks in one [`SweepMatrix`].
#[derive(Debug, Default)]
pub struct SweepBlock {
    /// The systems to analyse.
    pub systems: Vec<SystemSpec>,
    /// The lethal-defect distributions to evaluate.
    pub distributions: Vec<NamedDistribution>,
    /// The ordering specifications to compile under.
    pub specs: Vec<OrderingSpec>,
    /// The coded-ROBDD → ROMDD conversion algorithms (defaults to
    /// [`ConversionAlgorithm::TopDown`] when left empty).
    pub conversions: Vec<ConversionAlgorithm>,
    /// The truncation rules (ε values and/or fixed `M`s).
    pub rules: Vec<TruncationRule>,
    /// What-if variants of the block's systems. When non-empty, every
    /// `(system, distribution, spec, conversion, rule)` combination
    /// expands to one point *per delta* (delta axis innermost), and each
    /// family is evaluated with
    /// [`Pipeline::sweep_deltas`](soc_yield_core::Pipeline::sweep_deltas):
    /// the base system compiles once per chunk and the variants ride on
    /// it incrementally. Add `SystemDelta::named("base")` to keep the
    /// unmodified system among the points.
    pub deltas: Vec<SystemDelta>,
}

impl SweepBlock {
    /// Creates an empty block; fill the public axis vectors.
    pub fn new() -> Self {
        Self::default()
    }

    /// The conversion axis with the default applied.
    pub(crate) fn conversions_or_default(&self) -> Vec<ConversionAlgorithm> {
        if self.conversions.is_empty() {
            vec![ConversionAlgorithm::default()]
        } else {
            self.conversions.clone()
        }
    }

    /// Number of design points this block expands to.
    pub fn len(&self) -> usize {
        self.systems.len()
            * self.distributions.len()
            * self.specs.len()
            * self.conversions_or_default().len()
            * self.rules.len()
            * self.deltas.len().max(1)
    }

    /// Whether the block expands to no points at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Identifies one design point of a [`SweepMatrix`] for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct PointLabels {
    /// Name of the system.
    pub system: String,
    /// Name of the lethal-defect distribution.
    pub distribution: String,
    /// Ordering specification.
    pub spec: OrderingSpec,
    /// Conversion algorithm.
    pub conversion: ConversionAlgorithm,
    /// Truncation rule.
    pub rule: TruncationRule,
    /// Name of the what-if [`SystemDelta`] this point evaluates, when the
    /// block has a delta axis.
    pub delta: Option<String>,
}

impl PointLabels {
    /// A compact one-line label, e.g. `ESEN4x2 · λ'=1 · w/ml · ε=1e-3`
    /// (delta points append their variant name: `… · Δip2-hot`).
    pub fn label(&self) -> String {
        let mut label =
            format!("{} · {} · {} · {}", self.system, self.distribution, self.spec, self.rule);
        if let Some(delta) = &self.delta {
            label.push_str(" · Δ");
            label.push_str(delta);
        }
        label
    }
}

impl fmt::Display for PointLabels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A declarative design-space matrix: an ordered list of [`SweepBlock`]s
/// whose expanded points form the rows of the study, in a deterministic
/// *matrix order* (blocks in insertion order, each block row-major as
/// documented on [`SweepBlock`]).
///
/// Build one, then evaluate every point with
/// [`run`](crate::SweepMatrix::run) — serially with one worker or
/// bit-identically in parallel with many.
///
/// # Example
///
/// ```
/// use socy_exec::{NamedDistribution, SweepBlock, SweepMatrix, SystemSpec, TruncationRule};
/// use socy_defect::{ComponentProbabilities, NegativeBinomial};
/// use socy_faulttree::Netlist;
/// use socy_ordering::OrderingSpec;
///
/// let mut f = Netlist::new();
/// let a = f.input("a");
/// let b = f.input("b");
/// let both = f.and([a, b]);
/// f.set_output(both);
///
/// let mut block = SweepBlock::new();
/// block.systems.push(SystemSpec::new("1oo2", f, ComponentProbabilities::new(vec![0.5; 2])?));
/// block.distributions.push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, 4.0)?));
/// block.specs.push(OrderingSpec::paper_default());
/// block.rules.extend([TruncationRule::Epsilon(1e-2), TruncationRule::Epsilon(1e-4)]);
///
/// let mut matrix = SweepMatrix::new();
/// matrix.add(block);
/// assert_eq!(matrix.len(), 2);
///
/// let outcome = matrix.run(2);
/// let reports = outcome.reports()?;
/// assert!(reports[1].truncation >= reports[0].truncation);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct SweepMatrix {
    /// The blocks, expanded in insertion order.
    pub blocks: Vec<SweepBlock>,
    /// The kernel knobs (compile threads, parallel grain, complemented
    /// edges, op-cache capacity) every chunk's compilation runs under —
    /// one [`CompileOptions`] value instead of mirrored per-knob fields.
    /// Resource/representation knobs, never an analysis axis: yields,
    /// error bounds, truncations and ROMDD node counts are bit-identical
    /// at every setting. Orthogonal to the sweep's worker count.
    ///
    /// The resource limits ([`CompileOptions::node_budget`] /
    /// [`CompileOptions::deadline_ms`]) apply **per chunk compilation**
    /// (each chunk owns a private pipeline and every compile runs under a
    /// fresh governor), so one over-budget configuration fails its own
    /// chunk without starving the rest of the sweep.
    pub options: CompileOptions,
    /// Cooperative cancellation token observed by every chunk's governed
    /// compilations: cancelling it makes remaining chunks fail fast with
    /// resource-flagged [`ChunkError`](crate::ChunkError)s instead of
    /// compiling to completion.
    pub cancel: Option<CancelToken>,
}

impl SweepMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a block to the matrix.
    pub fn add(&mut self, block: SweepBlock) -> &mut Self {
        self.blocks.push(block);
        self
    }

    /// Total number of design points.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(SweepBlock::len).sum()
    }

    /// Whether the matrix has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The labels of every design point, in matrix order.
    pub fn labels(&self) -> Vec<PointLabels> {
        let mut labels = Vec::with_capacity(self.len());
        for block in &self.blocks {
            let conversions = block.conversions_or_default();
            let deltas: Vec<Option<String>> = if block.deltas.is_empty() {
                vec![None]
            } else {
                block.deltas.iter().map(|d| Some(d.name().to_string())).collect()
            };
            for system in &block.systems {
                for dist in &block.distributions {
                    for &spec in &block.specs {
                        for &conversion in &conversions {
                            for &rule in &block.rules {
                                for delta in &deltas {
                                    labels.push(PointLabels {
                                        system: system.name.clone(),
                                        distribution: dist.name.clone(),
                                        spec,
                                        conversion,
                                        rule,
                                        delta: delta.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socy_defect::NegativeBinomial;
    use socy_ordering::{GroupOrdering, MvOrdering};

    fn tiny_system(name: &str) -> SystemSpec {
        let mut f = Netlist::new();
        let a = f.input("a");
        let b = f.input("b");
        let both = f.and([a, b]);
        f.set_output(both);
        SystemSpec::new(name, f, ComponentProbabilities::new(vec![0.5, 0.5]).unwrap())
    }

    #[test]
    fn block_len_counts_the_cross_product() {
        let mut block = SweepBlock::new();
        assert!(block.is_empty());
        block.systems.push(tiny_system("A"));
        block.systems.push(tiny_system("B"));
        block
            .distributions
            .push(NamedDistribution::new("λ'=1", NegativeBinomial::new(1.0, 4.0).unwrap()));
        block.specs.push(OrderingSpec::paper_default());
        block.specs.push(OrderingSpec::new(MvOrdering::Wv, GroupOrdering::MsbFirst).unwrap());
        block.rules.push(TruncationRule::Epsilon(1e-3));
        block.rules.push(TruncationRule::Fixed(4));
        block.rules.push(TruncationRule::Fixed(2));
        // 2 systems × 1 distribution × 2 specs × 3 rules; conversions
        // default to one algorithm when unspecified.
        assert_eq!(block.len(), 12);
        block.conversions.push(soc_yield_core::ConversionAlgorithm::TopDown);
        block.conversions.push(soc_yield_core::ConversionAlgorithm::Layered);
        assert_eq!(block.len(), 24);
    }

    #[test]
    fn labels_enumerate_in_matrix_order() {
        let mut block = SweepBlock::new();
        block.systems.push(tiny_system("A"));
        block.systems.push(tiny_system("B"));
        block
            .distributions
            .push(NamedDistribution::new("d1", NegativeBinomial::new(1.0, 4.0).unwrap()));
        block
            .distributions
            .push(NamedDistribution::new("d2", NegativeBinomial::new(2.0, 4.0).unwrap()));
        block.specs.push(OrderingSpec::paper_default());
        block.rules.push(TruncationRule::Epsilon(1e-2));
        block.rules.push(TruncationRule::Epsilon(1e-4));
        let mut matrix = SweepMatrix::new();
        matrix.add(block);
        let mut second = SweepBlock::new();
        second.systems.push(tiny_system("C"));
        second
            .distributions
            .push(NamedDistribution::new("d3", NegativeBinomial::new(0.5, 4.0).unwrap()));
        second.specs.push(OrderingSpec::paper_default());
        second.rules.push(TruncationRule::Fixed(3));
        matrix.add(second);

        assert_eq!(matrix.len(), 9);
        let labels = matrix.labels();
        assert_eq!(labels.len(), 9);
        // System outermost, then distribution, then rule; blocks in order.
        let systems: Vec<&str> = labels.iter().map(|l| l.system.as_str()).collect();
        assert_eq!(systems, ["A", "A", "A", "A", "B", "B", "B", "B", "C"]);
        assert_eq!(labels[0].distribution, "d1");
        assert_eq!(labels[2].distribution, "d2");
        assert_eq!(labels[0].rule, TruncationRule::Epsilon(1e-2));
        assert_eq!(labels[1].rule, TruncationRule::Epsilon(1e-4));
        assert_eq!(labels[8].rule, TruncationRule::Fixed(3));
        assert!(labels[0].label().contains("w/ml"));
        assert_eq!(format!("{}", labels[8].rule), "M=3");
    }

    #[test]
    fn truncation_rules_map_to_analysis_options() {
        let spec = OrderingSpec::paper_default();
        let conversion = soc_yield_core::ConversionAlgorithm::TopDown;
        let eps = TruncationRule::Epsilon(1e-5).options(spec, conversion);
        assert_eq!(eps.epsilon, 1e-5);
        assert_eq!(eps.fixed_truncation, None);
        let fixed = TruncationRule::Fixed(7).options(spec, conversion);
        assert_eq!(fixed.fixed_truncation, Some(7));
        assert_eq!(TruncationRule::Epsilon(1e-3).label(), "ε=1e-3");
        assert_eq!(TruncationRule::Fixed(7).label(), "M=7");
    }
}
