//! Parallel design-space sweep execution for the yield pipeline.
//!
//! The paper's evaluation is a design-space exploration: every table is a
//! matrix of `(benchmark × variable ordering × ε × M × distribution)`
//! points. This crate turns that matrix into a first-class value — the
//! [`SweepMatrix`] — and evaluates it on a pool of scoped worker threads
//! ([`SweepMatrix::run`]):
//!
//! * the matrix is partitioned into **chunks** of points sharing one
//!   `(system, ordering spec, conversion)` configuration, i.e. one
//!   decision-diagram compilation each;
//! * each worker evaluates whole chunks with a private
//!   [`soc_yield_core::Pipeline`] — the ROBDD/ROMDD managers are
//!   per-thread by construction, nothing is shared but the immutable
//!   matrix and the result channel;
//! * reports are reassembled **in matrix order** keyed by point index, so
//!   the outcome is bit-identical for every worker count, and identical
//!   to evaluating each chunk with a serial
//!   [`Pipeline::sweep`](soc_yield_core::Pipeline::sweep);
//! * per-manager kernel statistics (peak nodes, cache hit rates, GC runs)
//!   are folded into a [`SweepSummary`].
//!
//! The `bench_matrix` binary of `socy-bench` drives a pinned instance of
//! this executor to produce the repository's `BENCH_sweep.json` perf
//! artifact; the table binaries and the `design_space` example accept
//! `--threads N` and route through it too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod matrix;
mod run;

pub use cache::{CacheStats, PipelineLru};
pub use matrix::{
    NamedDistribution, PointLabels, SharedDistribution, SweepBlock, SweepMatrix, SystemSpec,
    TruncationRule,
};
pub use run::{
    effective_threads, ChunkError, CompiledPipeline, DdAggregate, PointOutcome, SweepError,
    SweepOutcome, SweepSummary, WorkerSummary,
};

// The executor moves pipelines and reports across threads and shares the
// matrix immutably; the whole stack is plain owned data (no
// Rc/RefCell/raw pointers anywhere in the kernel — the dd/bdd/mdd crates
// carry matching assertions for their managers), so these bounds hold
// structurally. The assertions turn any future regression (e.g. an
// Rc-backed cache sneaking into the pipeline) into a compile error right
// here.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<soc_yield_core::Pipeline>();
    assert_send_sync::<soc_yield_core::YieldReport>();
    assert_send_sync::<SystemSpec>();
    assert_send_sync::<SweepMatrix>();
    assert_send_sync::<SweepOutcome>();
};
