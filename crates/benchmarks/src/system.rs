//! The common description of a generated benchmark system.

use socy_defect::{ComponentProbabilities, DefectError};
use socy_faulttree::Netlist;

/// A generated benchmark system-on-chip: fault tree, component names and
/// relative defect-sensitivity weights.
#[derive(Debug, Clone)]
pub struct BenchmarkSystem {
    /// Benchmark name as used by the paper's tables (e.g. `MS4`, `ESEN8x2`).
    pub name: String,
    /// Gate-level fault tree `F` over one input per component
    /// (input variable `i` ⇔ component `i`; `F = 1` ⇔ system not functioning).
    pub fault_tree: Netlist,
    /// Component names, indexed like the fault-tree input variables.
    pub component_names: Vec<String>,
    /// Relative weights of the per-component lethal-hit probabilities
    /// (proportional to `P_i`), indexed like the input variables.
    pub weights: Vec<f64>,
}

impl BenchmarkSystem {
    /// Number of components `C` (Table 1's first column).
    pub fn num_components(&self) -> usize {
        self.fault_tree.num_inputs()
    }

    /// Number of gates of the gate-level fault-tree description
    /// (Table 1's second column; our synthesis differs slightly from the
    /// paper's unavailable netlists, see DESIGN.md).
    pub fn num_gates(&self) -> usize {
        self.fault_tree.num_gates()
    }

    /// The per-component probabilities `P_i` obtained by scaling the
    /// relative weights so that the overall lethality `P_L` equals `p_l`
    /// (the paper uses `P_L = 1`).
    ///
    /// # Errors
    ///
    /// Returns a [`DefectError`] if `p_l` is not in `(0, 1]`.
    pub fn component_probabilities(&self, p_l: f64) -> Result<ComponentProbabilities, DefectError> {
        ComponentProbabilities::from_weights(&self.weights, p_l)
    }

    /// Index of the component with the given name, if present.
    pub fn component_index(&self, name: &str) -> Option<usize> {
        self.component_names.iter().position(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchmarkSystem {
        let mut nl = Netlist::new();
        let a = nl.input("A");
        let b = nl.input("B");
        let f = nl.and([a, b]);
        nl.set_output(f);
        BenchmarkSystem {
            name: "TINY".to_string(),
            fault_tree: nl,
            component_names: vec!["A".to_string(), "B".to_string()],
            weights: vec![1.0, 3.0],
        }
    }

    #[test]
    fn accessors() {
        let sys = tiny();
        assert_eq!(sys.num_components(), 2);
        assert_eq!(sys.num_gates(), 1);
        assert_eq!(sys.component_index("B"), Some(1));
        assert_eq!(sys.component_index("Z"), None);
    }

    #[test]
    fn probabilities_follow_weights() {
        let sys = tiny();
        let probs = sys.component_probabilities(1.0).unwrap();
        assert!((probs.raw(1) / probs.raw(0) - 3.0).abs() < 1e-12);
        assert!((probs.lethality() - 1.0).abs() < 1e-12);
        assert!(sys.component_probabilities(0.0).is_err());
    }
}
