//! The `ESEN n×m` benchmark family (Figure 5 of the paper).
//!
//! `n` is the number of network ports per side (a power of two) and `m`
//! scales the number of IP cores attached per port. The system contains:
//!
//! * `n·m/2` IPA cores and `n·m/2` IPB cores,
//! * when `m ≥ 2`, one concentrator per network port on each side
//!   (`2n` concentrators) funnelling the IP cores onto the ports,
//! * an extra-stage shuffle-exchange network (ESEN) with `log2(n) + 1`
//!   stages of `n/2` switching elements, in which every switching element
//!   of the **first and last stage has a redundant copy**.
//!
//! This reproduces the component counts of Table 1 exactly
//! (14 / 26 / 34 / 32 / 56 / 72 for ESEN4x1 … ESEN8x4).
//!
//! **Operational condition** (the paper's exact wording is partially lost
//! in the scanned text; the substitution is documented in DESIGN.md): the
//! system functions while
//!
//! * at most one IPA and at most one IPB core are failed,
//! * when `m ≥ 2`, at most one concentrator per side is failed,
//! * the network provides full access among the surviving cores: every
//!   middle-stage switching element is unfailed and every first/last-stage
//!   position has at least one unfailed copy.
//!
//! Defect-sensitivity weights (relative `P_i`): IPA 1.0, IPB 2.0, switching
//! elements 1.0, concentrators 0.5.

use socy_faulttree::{Netlist, NodeId};

use crate::system::BenchmarkSystem;

/// Relative weight of an IPA core.
pub const WEIGHT_IPA: f64 = 1.0;
/// Relative weight of an IPB core.
pub const WEIGHT_IPB: f64 = 2.0;
/// Relative weight of a switching element.
pub const WEIGHT_SE: f64 = 1.0;
/// Relative weight of a concentrator.
pub const WEIGHT_C: f64 = 0.5;

/// Generates the `ESEN n×m` benchmark.
///
/// # Panics
///
/// Panics if `n` is not a power of two of at least 4, or if `n·m` is odd
/// (the paper's instances use `m ∈ {1, 2, 4}`).
pub fn esen(n: usize, m: usize) -> BenchmarkSystem {
    assert!(n >= 4 && n.is_power_of_two(), "ESEN requires n to be a power of two >= 4");
    assert!(m >= 1 && (n * m).is_multiple_of(2), "ESEN requires n·m to be even");
    let stages = (n.trailing_zeros() as usize) + 1;
    let per_stage = n / 2;
    let ips_per_side = n * m / 2;

    let mut nl = Netlist::new();
    let mut component_names: Vec<String> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut add = |nl: &mut Netlist, name: String, weight: f64| -> NodeId {
        let id = nl.input(name.clone());
        component_names.push(name);
        weights.push(weight);
        id
    };

    // IP cores.
    let mut ipa = Vec::with_capacity(ips_per_side);
    for i in 0..ips_per_side {
        ipa.push(add(&mut nl, format!("IPA_{i}"), WEIGHT_IPA));
    }
    let mut ipb = Vec::with_capacity(ips_per_side);
    for i in 0..ips_per_side {
        ipb.push(add(&mut nl, format!("IPB_{i}"), WEIGHT_IPB));
    }
    // Concentrators (one per port per side when m >= 2).
    let mut ca = Vec::new();
    let mut cb = Vec::new();
    if m >= 2 {
        for p in 0..n {
            ca.push(add(&mut nl, format!("CA_{p}"), WEIGHT_C));
        }
        for p in 0..n {
            cb.push(add(&mut nl, format!("CB_{p}"), WEIGHT_C));
        }
    }
    // Switching elements: duplicated in the first and last stage.
    let mut se_single: Vec<Vec<NodeId>> = Vec::new(); // middle stages
    let mut se_first: Vec<[NodeId; 2]> = Vec::new();
    let mut se_last: Vec<[NodeId; 2]> = Vec::new();
    for stage in 0..stages {
        if stage == 0 {
            for i in 0..per_stage {
                se_first.push([
                    add(&mut nl, format!("SE_{stage}_{i}_A"), WEIGHT_SE),
                    add(&mut nl, format!("SE_{stage}_{i}_B"), WEIGHT_SE),
                ]);
            }
        } else if stage == stages - 1 {
            for i in 0..per_stage {
                se_last.push([
                    add(&mut nl, format!("SE_{stage}_{i}_A"), WEIGHT_SE),
                    add(&mut nl, format!("SE_{stage}_{i}_B"), WEIGHT_SE),
                ]);
            }
        } else {
            let mut row = Vec::with_capacity(per_stage);
            for i in 0..per_stage {
                row.push(add(&mut nl, format!("SE_{stage}_{i}"), WEIGHT_SE));
            }
            se_single.push(row);
        }
    }

    // Failure condition.
    let mut failure_terms: Vec<NodeId> = Vec::new();
    // (a) two or more IPA failures, or two or more IPB failures.
    failure_terms.push(nl.at_least(2, ipa.clone()));
    failure_terms.push(nl.at_least(2, ipb.clone()));
    // (b) two or more concentrator failures on either side (m >= 2 only).
    if m >= 2 {
        failure_terms.push(nl.at_least(2, ca.clone()));
        failure_terms.push(nl.at_least(2, cb.clone()));
    }
    // (c) any middle-stage switching element failed.
    for row in &se_single {
        for &se in row {
            failure_terms.push(se);
        }
    }
    // (d) both copies of a first- or last-stage switching element failed.
    for pair in se_first.iter().chain(se_last.iter()) {
        failure_terms.push(nl.and([pair[0], pair[1]]));
    }
    let f = nl.or(failure_terms);
    nl.set_output(f);

    BenchmarkSystem { name: format!("ESEN{n}x{m}"), fault_tree: nl, component_names, weights }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts_match_table_1() {
        assert_eq!(esen(4, 1).num_components(), 14);
        assert_eq!(esen(4, 2).num_components(), 26);
        assert_eq!(esen(4, 4).num_components(), 34);
        assert_eq!(esen(8, 1).num_components(), 32);
        assert_eq!(esen(8, 2).num_components(), 56);
        assert_eq!(esen(8, 4).num_components(), 72);
    }

    #[test]
    fn component_breakdown_for_esen8x2() {
        let sys = esen(8, 2);
        let count =
            |prefix: &str| sys.component_names.iter().filter(|n| n.starts_with(prefix)).count();
        assert_eq!(count("IPA_"), 8);
        assert_eq!(count("IPB_"), 8);
        assert_eq!(count("CA_") + count("CB_"), 16);
        assert_eq!(count("SE_"), 24);
    }

    #[test]
    fn no_failures_operational_all_failures_not() {
        for (n, m) in [(4, 1), (4, 2), (8, 1)] {
            let sys = esen(n, m);
            assert!(!sys.fault_tree.eval_output(&vec![false; sys.num_components()]));
            assert!(sys.fault_tree.eval_output(&vec![true; sys.num_components()]));
        }
    }

    #[test]
    fn single_fault_tolerance_of_redundant_parts() {
        // Any single IPA, IPB, concentrator, or first/last-stage SE failure is tolerated.
        let sys = esen(4, 2);
        let c = sys.num_components();
        for i in 0..c {
            let name = &sys.component_names[i];
            let mut assignment = vec![false; c];
            assignment[i] = true;
            let failed = sys.fault_tree.eval_output(&assignment);
            let is_middle_se =
                name.starts_with("SE_1_") && !name.ends_with("_A") && !name.ends_with("_B");
            if is_middle_se {
                assert!(failed, "middle-stage SE {name} is a single point of failure");
            } else {
                assert!(!failed, "single failure of {name} should be tolerated");
            }
        }
    }

    #[test]
    fn two_ipa_failures_kill_the_system() {
        let sys = esen(4, 2);
        let mut assignment = vec![false; sys.num_components()];
        assignment[sys.component_index("IPA_0").unwrap()] = true;
        assignment[sys.component_index("IPA_1").unwrap()] = true;
        assert!(sys.fault_tree.eval_output(&assignment));
    }

    #[test]
    fn first_stage_pair_failure_kills_the_system() {
        let sys = esen(8, 1);
        let mut assignment = vec![false; sys.num_components()];
        assignment[sys.component_index("SE_0_2_A").unwrap()] = true;
        assignment[sys.component_index("SE_0_2_B").unwrap()] = true;
        assert!(sys.fault_tree.eval_output(&assignment));
        // Failing copies of two *different* positions is tolerated.
        let mut assignment = vec![false; sys.num_components()];
        assignment[sys.component_index("SE_0_2_A").unwrap()] = true;
        assignment[sys.component_index("SE_0_3_B").unwrap()] = true;
        assert!(!sys.fault_tree.eval_output(&assignment));
    }

    #[test]
    fn esen4x1_has_no_concentrators() {
        let sys = esen(4, 1);
        assert!(sys.component_names.iter().all(|n| !n.starts_with("CA_") && !n.starts_with("CB_")));
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = esen(6, 1);
    }

    #[test]
    fn weights_follow_component_classes() {
        let sys = esen(4, 2);
        let w = |name: &str| sys.weights[sys.component_index(name).unwrap()];
        assert_eq!(w("IPA_0"), WEIGHT_IPA);
        assert_eq!(w("IPB_3"), WEIGHT_IPB);
        assert_eq!(w("SE_1_0"), WEIGHT_SE);
        assert_eq!(w("CA_2"), WEIGHT_C);
    }
}
