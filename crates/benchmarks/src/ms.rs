//! The `MSn` master/slave benchmark family (Figure 4 of the paper).
//!
//! The system contains one cluster of two *master* IP cores (`IPM_1`,
//! `IPM_2`) and `n` clusters of two *slave* IP cores (`IPS_j_1`,
//! `IPS_j_2`). Every IP core is attached to two redundant buses through
//! its own communication modules: master `i` owns `CM_i_A` / `CM_i_B` and
//! slave `(j, k)` owns `CS_j_k_A` / `CS_j_k_B`. Buses are assumed immune
//! to manufacturing defects.
//!
//! **Operational condition** (Section 3): the system functions while at
//! least one unfailed master can communicate *directly* (one bus, two
//! communication modules) with at least one unfailed slave of **every**
//! cluster.
//!
//! The fault tree is synthesised in failure logic (De Morgan applied once,
//! so no inverters are required):
//!
//! ```text
//! F = ∧_{i=1,2} [ IPM_i ∨ ∨_{j=1..n} ∧_{k=1,2; b=A,B} ( IPS_j_k ∨ CM_i_b ∨ CS_j_k_b ) ]
//! ```
//!
//! Defect-sensitivity weights (relative `P_i`): masters 1.0, slaves 0.5,
//! communication modules 0.1 (the exact ratios of the paper are not
//! recoverable from the scanned text; see DESIGN.md).

use socy_faulttree::{Netlist, NodeId};

use crate::system::BenchmarkSystem;

/// Relative weight of a master IP core.
pub const WEIGHT_IPM: f64 = 1.0;
/// Relative weight of a slave IP core.
pub const WEIGHT_IPS: f64 = 0.5;
/// Relative weight of a communication module.
pub const WEIGHT_CM: f64 = 0.1;

/// Generates the `MSn` benchmark with `n` slave clusters
/// (`C = 6 + 6 n` components).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn ms(n: usize) -> BenchmarkSystem {
    assert!(n >= 1, "MSn requires at least one slave cluster");
    let mut nl = Netlist::new();
    let mut component_names = Vec::new();
    let mut weights = Vec::new();
    let mut add = |nl: &mut Netlist, name: String, weight: f64| -> NodeId {
        let id = nl.input(name.clone());
        component_names.push(name);
        weights.push(weight);
        id
    };

    // Masters and their communication modules.
    let ipm: Vec<NodeId> = (1..=2).map(|i| add(&mut nl, format!("IPM_{i}"), WEIGHT_IPM)).collect();
    let cm: Vec<[NodeId; 2]> = (1..=2)
        .map(|i| {
            [
                add(&mut nl, format!("CM_{i}_A"), WEIGHT_CM),
                add(&mut nl, format!("CM_{i}_B"), WEIGHT_CM),
            ]
        })
        .collect();
    // Slave clusters.
    struct Slave {
        ips: NodeId,
        cs: [NodeId; 2],
    }
    let clusters: Vec<[Slave; 2]> = (1..=n)
        .map(|j| {
            [1usize, 2usize].map(|k| Slave {
                ips: add(&mut nl, format!("IPS_{j}_{k}"), WEIGHT_IPS),
                cs: [
                    add(&mut nl, format!("CS_{j}_{k}_A"), WEIGHT_CM),
                    add(&mut nl, format!("CS_{j}_{k}_B"), WEIGHT_CM),
                ],
            })
        })
        .collect();

    // F = AND over masters of (master failed OR some cluster unreachable from it).
    let mut master_failure_terms = Vec::with_capacity(2);
    for i in 0..2 {
        let mut cluster_unreachable = Vec::with_capacity(n);
        for cluster in &clusters {
            // Cluster unreachable from master i ⇔ every (slave, bus) path is broken.
            let mut broken_paths = Vec::with_capacity(4);
            for slave in cluster {
                for (&master_side, &slave_side) in cm[i].iter().zip(&slave.cs) {
                    broken_paths.push(nl.or([slave.ips, master_side, slave_side]));
                }
            }
            cluster_unreachable.push(nl.and(broken_paths));
        }
        let any_cluster_unreachable = nl.or(cluster_unreachable);
        master_failure_terms.push(nl.or([ipm[i], any_cluster_unreachable]));
    }
    let f = nl.and(master_failure_terms);
    nl.set_output(f);

    BenchmarkSystem { name: format!("MS{n}"), fault_tree: nl, component_names, weights }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference (non-netlist) evaluation of the MSn operational condition.
    fn operational(n: usize, failed: &dyn Fn(&str) -> bool) -> bool {
        (1..=2).any(|i| {
            !failed(&format!("IPM_{i}"))
                && (1..=n).all(|j| {
                    (1..=2).any(|k| {
                        !failed(&format!("IPS_{j}_{k}"))
                            && ["A", "B"].iter().any(|b| {
                                !failed(&format!("CM_{i}_{b}"))
                                    && !failed(&format!("CS_{j}_{k}_{b}"))
                            })
                    })
                })
        })
    }

    #[test]
    fn component_count_and_names() {
        for n in 1..=10 {
            let sys = ms(n);
            assert_eq!(sys.num_components(), 6 + 6 * n);
            assert_eq!(sys.component_names.len(), 6 + 6 * n);
            assert!(sys.component_index("IPM_1").is_some());
            assert!(sys.component_index(&format!("CS_{n}_2_B")).is_some());
        }
    }

    #[test]
    fn fault_tree_matches_reference_condition_exhaustively_for_ms1() {
        // MS1 has 12 components: exhaustive over all 4096 failure patterns.
        let sys = ms(1);
        let c = sys.num_components();
        for pattern in 0u32..(1 << c) {
            let assignment: Vec<bool> = (0..c).map(|i| (pattern >> i) & 1 == 1).collect();
            let failed = |name: &str| assignment[sys.component_index(name).unwrap()];
            let expect_failure = !operational(1, &failed);
            assert_eq!(
                sys.fault_tree.eval_output(&assignment),
                expect_failure,
                "pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn fault_tree_matches_reference_on_sampled_patterns_for_ms3() {
        let sys = ms(3);
        let c = sys.num_components();
        // Deterministic pseudo-random sampling of failure patterns.
        let mut state = 0x12345678u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let assignment: Vec<bool> = (0..c).map(|i| (state >> (i % 48)) & 1 == 1).collect();
            let failed = |name: &str| assignment[sys.component_index(name).unwrap()];
            assert_eq!(sys.fault_tree.eval_output(&assignment), !operational(3, &failed));
        }
    }

    #[test]
    fn no_failures_means_operational_and_total_failure_means_failed() {
        for n in [1, 2, 5] {
            let sys = ms(n);
            let none = vec![false; sys.num_components()];
            assert!(!sys.fault_tree.eval_output(&none));
            let all = vec![true; sys.num_components()];
            assert!(sys.fault_tree.eval_output(&all));
        }
    }

    #[test]
    fn single_component_failures_are_tolerated() {
        // The architecture is single-fault tolerant: any single failed component
        // leaves the system operational.
        let sys = ms(4);
        let c = sys.num_components();
        for i in 0..c {
            let mut assignment = vec![false; c];
            assignment[i] = true;
            assert!(
                !sys.fault_tree.eval_output(&assignment),
                "single failure of {} should be tolerated",
                sys.component_names[i]
            );
        }
    }

    #[test]
    fn both_masters_failing_kills_the_system() {
        let sys = ms(2);
        let mut assignment = vec![false; sys.num_components()];
        assignment[sys.component_index("IPM_1").unwrap()] = true;
        assignment[sys.component_index("IPM_2").unwrap()] = true;
        assert!(sys.fault_tree.eval_output(&assignment));
    }

    #[test]
    fn weights_follow_component_classes() {
        let sys = ms(2);
        let w = |name: &str| sys.weights[sys.component_index(name).unwrap()];
        assert_eq!(w("IPM_1"), WEIGHT_IPM);
        assert_eq!(w("IPS_1_2"), WEIGHT_IPS);
        assert_eq!(w("CM_2_B"), WEIGHT_CM);
        assert_eq!(w("CS_2_1_A"), WEIGHT_CM);
    }
}
