//! The scalable benchmark systems-on-chip of the DSN'03 paper.
//!
//! Two families of fault-tolerant systems-on-chip are generated, matching
//! Section 3 of the paper:
//!
//! * [`mod@ms`] — the `MSn` master/slave architecture: two master IP cores and
//!   `n` clusters of two slave IP cores, interconnected through
//!   communication modules attached to two redundant buses
//!   (`C = 6 + 6n` components);
//! * [`mod@esen`] — the `ESEN n×m` architecture: IP cores attached through
//!   concentrators to an extra-stage shuffle-exchange interconnection
//!   network whose first- and last-stage switching elements are duplicated
//!   (`C` matches Table 1 of the paper exactly: 14, 26, 34, 32, 56, 72 for
//!   ESEN4x1 … ESEN8x4).
//!
//! Each generator produces a [`BenchmarkSystem`]: the gate-level fault tree
//! `F` (value 1 ⇔ system not functioning) over one input variable per
//! component, the component names, and the relative defect-sensitivity
//! weights used to derive the `P_i` probabilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod esen;
pub mod ms;
pub mod system;

pub use esen::esen;
pub use ms::ms;
pub use system::BenchmarkSystem;

/// The benchmark instances evaluated by the paper (Table 1).
///
/// Returns the systems in the same order as the paper's tables:
/// MS2 … MS10 followed by ESEN4x1 … ESEN8x4.
pub fn paper_benchmarks() -> Vec<BenchmarkSystem> {
    vec![
        ms(2),
        ms(4),
        ms(6),
        ms(8),
        ms(10),
        esen(4, 1),
        esen(4, 2),
        esen(4, 4),
        esen(8, 1),
        esen(8, 2),
        esen(8, 4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_component_counts_match_table_1() {
        let expected = [
            ("MS2", 18),
            ("MS4", 30),
            ("MS6", 42),
            ("MS8", 54),
            ("MS10", 66),
            ("ESEN4x1", 14),
            ("ESEN4x2", 26),
            ("ESEN4x4", 34),
            ("ESEN8x1", 32),
            ("ESEN8x2", 56),
            ("ESEN8x4", 72),
        ];
        let systems = paper_benchmarks();
        assert_eq!(systems.len(), expected.len());
        for (system, (name, count)) in systems.iter().zip(expected.iter()) {
            assert_eq!(&system.name, name);
            assert_eq!(system.num_components(), *count, "{name}");
        }
    }

    #[test]
    fn all_benchmarks_have_consistent_metadata() {
        for system in paper_benchmarks() {
            assert_eq!(system.component_names.len(), system.num_components());
            assert_eq!(system.weights.len(), system.num_components());
            assert!(system.num_gates() > 0, "{}", system.name);
            assert!(system.fault_tree.output().is_ok(), "{}", system.name);
            // All component names are unique.
            let mut names = system.component_names.clone();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), system.num_components(), "{}", system.name);
        }
    }
}
