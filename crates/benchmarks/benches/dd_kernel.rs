//! Criterion micro-benchmarks of the DD kernel's three hot paths on
//! ESEN-style workloads: unique-table churn, the op-cache hit /
//! conflict / miss paths, and the iterative explicit-stack apply against
//! a recursive reference implementation.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};

use socy_bdd::{BddId, BddManager};
use socy_benchmarks::esen;
use socy_dd::kernel::{DdKernel, ONE, ZERO};
use socy_faulttree::{GateKind, Netlist};

/// ESEN 4x2 fault tree (26 components) — a mid-size coded-ROBDD-style
/// workload that compiles in well under a millisecond, so the bench loop
/// stays tight.
fn workload() -> Netlist {
    esen(4, 2).fault_tree
}

/// Recursive reference apply (the pre-iterative shape of the kernel):
/// Shannon expansion with a lossless `HashMap` memo keyed like the
/// kernel's op cache.
fn recursive_bin(
    mgr: &mut BddManager,
    op: u8,
    f: BddId,
    g: BddId,
    memo: &mut HashMap<(u8, BddId, BddId), BddId>,
) -> BddId {
    match op {
        0 => {
            // AND
            if f.is_zero() || g.is_zero() {
                return mgr.zero();
            }
            if f.is_one() {
                return g;
            }
            if g.is_one() || f == g {
                return f;
            }
        }
        _ => {
            // OR
            if f.is_one() || g.is_one() {
                return mgr.one();
            }
            if f.is_zero() {
                return g;
            }
            if g.is_zero() || f == g {
                return f;
            }
        }
    }
    let (a, b) = if f <= g { (f, g) } else { (g, f) };
    if let Some(&r) = memo.get(&(op, a, b)) {
        return r;
    }
    let la = mgr.level(a).unwrap();
    let lb = mgr.level(b).unwrap();
    let top = la.min(lb);
    let (a0, a1) = if la == top { (mgr.low(a), mgr.high(a)) } else { (a, a) };
    let (b0, b1) = if lb == top { (mgr.low(b), mgr.high(b)) } else { (b, b) };
    let low = recursive_bin(mgr, op, a0, b0, memo);
    let high = recursive_bin(mgr, op, a1, b1, memo);
    let r = mgr.mk(top, low, high);
    memo.insert((op, a, b), r);
    r
}

/// Compiles a netlist with the recursive reference apply (AND/OR plus
/// the `at_least` voters of the ESEN trees, built with the same DP over
/// partial counts the manager uses).
fn recursive_build(mgr: &mut BddManager, netlist: &Netlist) -> BddId {
    let mut memo = HashMap::new();
    let mut results: Vec<BddId> = Vec::with_capacity(netlist.len());
    for (id, gate) in netlist.iter() {
        let value = match gate.kind {
            GateKind::Input => {
                let var = netlist.var_of(id).expect("input has a variable");
                mgr.var(var.index())
            }
            GateKind::Const(c) => mgr.constant(c),
            GateKind::And => {
                let mut acc = mgr.one();
                for f in &gate.fanin {
                    acc = recursive_bin(mgr, 0, acc, results[f.index()], &mut memo);
                }
                acc
            }
            GateKind::Or => {
                let mut acc = mgr.zero();
                for f in &gate.fanin {
                    acc = recursive_bin(mgr, 1, acc, results[f.index()], &mut memo);
                }
                acc
            }
            GateKind::AtLeast(k) => {
                let k = k as usize;
                let mut state = vec![mgr.zero(); k + 1];
                state[0] = mgr.one();
                for f in &gate.fanin {
                    let op = results[f.index()];
                    for j in (1..=k).rev() {
                        let with_op = recursive_bin(mgr, 0, state[j - 1], op, &mut memo);
                        state[j] = recursive_bin(mgr, 1, state[j], with_op, &mut memo);
                    }
                }
                state[k]
            }
            _ => unreachable!("ESEN fault trees use AND/OR/AtLeast gates"),
        };
        results.push(value);
    }
    results[netlist.output().expect("has output").index()]
}

fn bench_unique_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_kernel");
    group.sample_size(20);
    // Unique-table churn: a bottom-up mk storm over mixed keys exercises
    // probe chains, Robin Hood displacement and growth.
    group.bench_function("unique_table_churn", |b| {
        b.iter(|| {
            let mut dd = DdKernel::new(vec![2; 24]);
            let mut pool: Vec<u32> = vec![ZERO, ONE];
            let mut state = 0x9e3779b97f4a7c15u64;
            for level in (0..24u32).rev() {
                for _ in 0..256 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let lo = pool[(state % pool.len() as u64) as usize];
                    let hi = pool[((state >> 32) % pool.len() as u64) as usize];
                    let node = dd.mk(level, &[lo, hi]);
                    if node > ONE {
                        pool.push(node);
                    }
                }
            }
            dd.stats().unique_entries
        })
    });
    group.finish();
}

fn bench_op_cache_paths(c: &mut Criterion) {
    let netlist = workload();
    let mut group = c.benchmark_group("dd_kernel");
    group.sample_size(20);

    // Hit path: the compile ran once; re-running every gate operation
    // resolves from the warm cache.
    let mut warm = BddManager::new(netlist.num_inputs());
    let order: Vec<usize> = (0..netlist.num_inputs()).collect();
    let _ = warm.build_netlist(&netlist, &order);
    group.bench_function("op_cache_hit_path", |b| {
        b.iter(|| warm.build_netlist(&netlist, &order).size)
    });

    // Miss path: the cache is cleared before every compile, so every
    // subproblem misses once (the unique table stays warm — this isolates
    // the probe-and-recompute cost).
    let mut cold = BddManager::new(netlist.num_inputs());
    group.bench_function("op_cache_miss_path", |b| {
        b.iter(|| {
            cold.clear_op_caches();
            cold.build_netlist(&netlist, &order).size
        })
    });

    // Conflict path: a capacity-1 cache turns every insertion into an
    // eviction, the worst case of the direct-mapped design.
    let mut thrash = BddManager::with_cache_capacity(netlist.num_inputs(), 1, 1);
    group.bench_function("op_cache_conflict_path", |b| {
        b.iter(|| thrash.build_netlist(&netlist, &order).size)
    });
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let netlist = workload();
    let order: Vec<usize> = (0..netlist.num_inputs()).collect();
    let mut group = c.benchmark_group("dd_kernel");
    group.sample_size(20);
    group.bench_function("apply_iterative", |b| {
        b.iter(|| {
            let mut mgr = BddManager::new(netlist.num_inputs());
            mgr.build_netlist(&netlist, &order).size
        })
    });
    group.bench_function("apply_recursive_reference", |b| {
        b.iter(|| {
            let mut mgr = BddManager::new(netlist.num_inputs());
            let root = recursive_build(&mut mgr, &netlist);
            mgr.node_count(root)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_unique_table, bench_op_cache_paths, bench_apply);
criterion_main!(benches);
