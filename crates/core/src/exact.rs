//! Exact (exponential-cost) yield computation for small systems.
//!
//! For systems with up to ~20 components the conditional yields `Y_k`
//! can be computed exactly by working over the subset lattice of the
//! component set: the probability that the set of components hit by `k`
//! lethal defects is *contained in* `S` equals `P'(S)^k`, so a Möbius
//! transform over the lattice yields the probability that the hit set is
//! *exactly* `S`, and summing over the operational subsets gives `Y_k`.
//!
//! This module is the reference oracle the ROMDD pipeline is validated
//! against in the test-suites and benchmark harness.

use socy_defect::{ComponentProbabilities, Truncation};
use socy_faulttree::Netlist;

use crate::error::CoreError;

/// Maximum number of components supported by the exact baseline
/// (the cost is `O(2^C · C)` per value of `k`).
pub const MAX_EXACT_COMPONENTS: usize = 22;

/// Computes the exact conditional yields `Y_k = P(system functioning | k
/// lethal defects)` for `k = 0 ..= max_defects`.
///
/// # Errors
///
/// Returns [`CoreError::ComponentCountMismatch`] if the fault tree and the
/// component model disagree, [`CoreError::EmptySystem`] if the system has
/// more than [`MAX_EXACT_COMPONENTS`] components (the computation would be
/// intractable) or none at all, and [`CoreError::FaultTree`] when the fault
/// tree has no output.
pub fn exact_conditional_yields(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    max_defects: usize,
) -> Result<Vec<f64>, CoreError> {
    fault_tree.output()?;
    let c = fault_tree.num_inputs();
    if c != components.len() {
        return Err(CoreError::ComponentCountMismatch {
            fault_tree: c,
            components: components.len(),
        });
    }
    if c == 0 || c > MAX_EXACT_COMPONENTS {
        return Err(CoreError::EmptySystem);
    }
    let size = 1usize << c;
    // Failure of the system for every hit set S (truth table row index = bitmask of failed components).
    let failed = fault_tree.truth_table();
    // P'(S) for every subset S.
    let mut subset_prob = vec![0.0f64; size];
    for s in 1..size {
        let lowest = s.trailing_zeros() as usize;
        subset_prob[s] = subset_prob[s & (s - 1)] + components.conditional(lowest);
    }
    let mut yields = Vec::with_capacity(max_defects + 1);
    for k in 0..=max_defects {
        // f[S] = P(hit set ⊆ S) = P'(S)^k.
        let mut f: Vec<f64> = subset_prob.iter().map(|p| p.powi(k as i32)).collect();
        // In-place Möbius transform over the subset lattice:
        // afterwards f[S] = P(hit set = S).
        for bit in 0..c {
            for s in 0..size {
                if s & (1 << bit) != 0 {
                    f[s] -= f[s ^ (1 << bit)];
                }
            }
        }
        let yk: f64 = (0..size).filter(|&s| !failed[s]).map(|s| f[s]).sum();
        // Guard against tiny negative values from cancellation.
        yields.push(yk.clamp(0.0, 1.0));
    }
    Ok(yields)
}

/// Computes the exact truncated yield `Y_M = Σ_{k ≤ M} Q'_k Y_k` for the
/// truncation `truncation` (whose masses are the lethal-defect
/// probabilities `Q'_k`).
///
/// # Errors
///
/// Same as [`exact_conditional_yields`].
pub fn exact_yield(
    fault_tree: &Netlist,
    components: &ComponentProbabilities,
    truncation: &Truncation,
) -> Result<f64, CoreError> {
    let yields = exact_conditional_yields(fault_tree, components, truncation.truncation())?;
    Ok(truncation.masses().iter().zip(yields.iter()).map(|(q, y)| q * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisOptions};
    use socy_defect::truncation::truncate_at;
    use socy_defect::{Empirical, NegativeBinomial};

    fn figure2() -> Netlist {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let x3 = nl.input("x3");
        let a = nl.and([x1, x2]);
        let f = nl.or([a, x3]);
        nl.set_output(f);
        nl
    }

    #[test]
    fn conditional_yields_for_figure2() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let y = exact_conditional_yields(&f, &comps, 2).unwrap();
        // Y_0 = 1 (no defects, nothing failed).
        assert!((y[0] - 1.0).abs() < 1e-12);
        // Y_1: single defect; system fails only if component 3 is hit → Y_1 = 1 - 0.5.
        assert!((y[1] - 0.5).abs() < 1e-12);
        // Y_2: fails if either defect hit c3, or the two defects hit {c1, c2}.
        // P(neither hits c3) = 0.25; within that, failure iff {c1,c2} both hit:
        // P = 2·0.2·0.3 = 0.12 (unconditioned) → Y_2 = 0.25 - 0.12 = 0.13.
        assert!((y[2] - 0.13).abs() < 1e-12, "Y_2 = {}", y[2]);
    }

    #[test]
    fn exact_yield_matches_romdd_pipeline_small_system() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = NegativeBinomial::new(1.0, 0.25).unwrap();
        let options = AnalysisOptions::default();
        let analysis = analyze(&f, &comps, &lethal, &options).unwrap();
        let trunc = truncate_at(&lethal, analysis.report.truncation).unwrap();
        let exact = exact_yield(&f, &comps, &trunc).unwrap();
        assert!(
            (exact - analysis.report.yield_lower_bound).abs() < 1e-10,
            "exact {exact} vs romdd {}",
            analysis.report.yield_lower_bound
        );
    }

    #[test]
    fn exact_yield_matches_romdd_pipeline_voter_system() {
        // 2-of-3 voter with unequal probabilities and a point-mass defect count.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let f = nl.at_least(2, [a, b, c]);
        nl.set_output(f);
        let comps = ComponentProbabilities::new(vec![0.5, 0.3, 0.2]).unwrap();
        let lethal = Empirical::new(vec![0.2, 0.2, 0.2, 0.2, 0.2]).unwrap();
        let options = AnalysisOptions { epsilon: 1e-9, ..AnalysisOptions::default() };
        let analysis = analyze(&nl, &comps, &lethal, &options).unwrap();
        let trunc = truncate_at(&lethal, analysis.report.truncation).unwrap();
        let exact = exact_yield(&nl, &comps, &trunc).unwrap();
        assert!((exact - analysis.report.yield_lower_bound).abs() < 1e-10);
    }

    #[test]
    fn input_validation() {
        let f = figure2();
        let wrong = ComponentProbabilities::new(vec![0.5, 0.5]).unwrap();
        assert!(matches!(
            exact_conditional_yields(&f, &wrong, 2),
            Err(CoreError::ComponentCountMismatch { .. })
        ));
        let no_output = Netlist::new();
        let comps = ComponentProbabilities::new(vec![1.0]).unwrap();
        assert!(exact_conditional_yields(&no_output, &comps, 2).is_err());
    }

    #[test]
    fn yields_are_monotone_in_defect_count() {
        let f = figure2();
        let comps = ComponentProbabilities::new(vec![1.0 / 3.0; 3]).unwrap();
        let y = exact_conditional_yields(&f, &comps, 6).unwrap();
        for k in 1..y.len() {
            assert!(y[k] <= y[k - 1] + 1e-12, "Y_k must not increase with k");
        }
    }
}
