//! Construction of the generalized fault tree `G(w, v_1, …, v_M)` in
//! binary logic, together with the bookkeeping (bit groups, codes, layout,
//! probability vectors) needed by the rest of the pipeline.
//!
//! `G` is the boolean function of Theorem 1:
//!
//! ```text
//! G = I_{M+1}(w)  ∨  F( x_1, …, x_C )
//! x_i = ⋁_{l=1}^{M}  I_{≥l}(w) · I_i(v_l)
//! ```
//!
//! The multiple-valued variables are encoded in binary exactly as the
//! paper prescribes: `w ∈ {0, …, M+1}` on `⌈log2(M+2)⌉` bits, and every
//! `v_l ∈ {1, …, C}` as `v_l − 1` on `⌈log2 C⌉` bits. The "filter" gates
//! `I_{≥k}(w)`, `I_{M+1}(w)` and `I_i(v_l)` are expanded into the literal
//! products / incremental OR chains given in Section 2 of the paper.

use socy_defect::{ComponentProbabilities, Truncation};
use socy_faulttree::{Netlist, NodeId};
use socy_mdd::coded::{bits_for, MvVarLayout};
use socy_mdd::CodedLayout;
use socy_ordering::{ComputedOrdering, MvGroups};

use crate::error::CoreError;

/// The generalized fault tree `G` in binary logic plus the structure
/// describing which binary variables encode which multiple-valued variable.
#[derive(Debug, Clone)]
pub struct GeneralizedFaultTree {
    netlist: Netlist,
    groups: MvGroups,
    num_components: usize,
    truncation: usize,
}

impl GeneralizedFaultTree {
    /// Builds `G` for the fault tree `fault_tree` (whose inputs are the
    /// component failed-state variables `x_1, …, x_C` in
    /// [`VarId`](socy_faulttree::VarId) order)
    /// and a truncation point of `truncation` lethal defects.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FaultTree`] if the fault tree has no designated
    /// output and [`CoreError::EmptySystem`] if it has no inputs.
    pub fn build(fault_tree: &Netlist, truncation: usize) -> Result<Self, CoreError> {
        fault_tree.output()?;
        let num_components = fault_tree.num_inputs();
        if num_components == 0 {
            return Err(CoreError::EmptySystem);
        }
        let m = truncation;
        let w_width = bits_for(m + 2);
        let v_width = bits_for(num_components);

        let mut netlist = Netlist::new();
        // Primary inputs: the w bits (most significant first), then the bits of
        // every v_l (most significant first). This declaration order is also the
        // left-to-right order used when the filter logic is emitted, which is what
        // the ordering heuristics see.
        let w_bits: Vec<NodeId> =
            (0..w_width).map(|j| netlist.input(format!("w.b{}", w_width - 1 - j))).collect();
        let v_bits: Vec<Vec<NodeId>> = (1..=m)
            .map(|l| {
                (0..v_width).map(|j| netlist.input(format!("v{l}.b{}", v_width - 1 - j))).collect()
            })
            .collect();

        // Pre-build the complement of every input bit once, so literals share gates.
        let w_neg: Vec<NodeId> = w_bits.iter().map(|&b| netlist.not(b)).collect();
        let v_neg: Vec<Vec<NodeId>> =
            v_bits.iter().map(|bits| bits.iter().map(|&b| netlist.not(b)).collect()).collect();

        // Literal of bit j (MSB first) of a value: the bit itself when the code bit
        // is 1, its complement otherwise.
        let minterm = |netlist: &mut Netlist,
                       bits: &[NodeId],
                       negs: &[NodeId],
                       width: usize,
                       value: usize|
         -> NodeId {
            let literals: Vec<NodeId> = (0..width)
                .map(|j| {
                    let bit_is_one = (value >> (width - 1 - j)) & 1 == 1;
                    if bit_is_one {
                        bits[j]
                    } else {
                        negs[j]
                    }
                })
                .collect();
            netlist.and(literals)
        };

        // z_{M+1} and the incremental chain z_{>=k} = z_{>=k+1} OR minterm(k).
        let z_top = minterm(&mut netlist, &w_bits, &w_neg, w_width, m + 1);
        let mut z_ge = vec![z_top; m + 2]; // index k, valid for 1..=m+1
        z_ge[m + 1] = z_top;
        for k in (1..=m).rev() {
            let mk = minterm(&mut netlist, &w_bits, &w_neg, w_width, k);
            z_ge[k] = netlist.or([z_ge[k + 1], mk]);
        }

        // x_i = OR_l ( z_{>=l} AND z^i_l ), where z^i_l is the minterm of code i-1 on v_l.
        let mut x = Vec::with_capacity(num_components);
        for component in 0..num_components {
            let mut terms = Vec::with_capacity(m);
            for l in 1..=m {
                let hit = minterm(&mut netlist, &v_bits[l - 1], &v_neg[l - 1], v_width, component);
                terms.push(netlist.and([z_ge[l], hit]));
            }
            x.push(netlist.or(terms));
        }

        // G = z_{M+1} OR F(x_1, ..., x_C).
        let f_instance = netlist.import(fault_tree, &x);
        let g = netlist.or([z_ge[m + 1], f_instance]);
        netlist.set_output(g);

        let groups = MvGroups {
            w: w_bits.iter().map(|&b| netlist.var_of(b).expect("w bit is an input")).collect(),
            v: v_bits
                .iter()
                .map(|bits| {
                    bits.iter().map(|&b| netlist.var_of(b).expect("v bit is an input")).collect()
                })
                .collect(),
        };
        Ok(Self { netlist, groups, num_components, truncation: m })
    }

    /// The binary-logic netlist of `G`.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The bit groups encoding `w` and `v_1, …, v_M`.
    pub fn groups(&self) -> &MvGroups {
        &self.groups
    }

    /// Number of components `C` of the underlying system.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Truncation point `M`.
    pub fn truncation(&self) -> usize {
        self.truncation
    }

    /// Domain size of `w` (`M + 2`: the values `0..=M` plus the clamp value
    /// `M + 1` meaning "more than M lethal defects").
    pub fn w_domain(&self) -> usize {
        self.truncation + 2
    }

    /// Domain size of every `v_l` (`C`: domain value `j` stands for
    /// component `j + 1` in the paper's 1-based numbering).
    pub fn v_domain(&self) -> usize {
        self.num_components
    }

    /// Domain sizes of the multiple-valued variables in the diagram order
    /// prescribed by `ordering`.
    pub fn mdd_domains(&self, ordering: &ComputedOrdering) -> Vec<usize> {
        ordering
            .mv_order
            .iter()
            .map(|&mv| if mv == 0 { self.w_domain() } else { self.v_domain() })
            .collect()
    }

    /// The coded-ROBDD layout (bit levels and codewords per multiple-valued
    /// variable) induced by `ordering`.
    pub fn layout(&self, ordering: &ComputedOrdering) -> CodedLayout {
        let vars = ordering
            .mv_order
            .iter()
            .map(|&mv| {
                let group = self.groups.group(mv);
                let width = group.len();
                let domain = if mv == 0 { self.w_domain() } else { self.v_domain() };
                let bit_levels: Vec<usize> =
                    group.iter().map(|v| ordering.var_level[v.index()]).collect();
                let codes: Vec<Vec<bool>> = (0..domain)
                    .map(|value| (0..width).map(|j| (value >> (width - 1 - j)) & 1 == 1).collect())
                    .collect();
                MvVarLayout { domain, bit_levels, codes }
            })
            .collect();
        CodedLayout::new(vars).expect("generated layout is structurally valid")
    }

    /// The per-level value distributions of the multiple-valued random
    /// variables, in the diagram order prescribed by `ordering`:
    /// the `w` level receives `(Q'_0, …, Q'_M, 1 − ΣQ'_k)` and every `v_l`
    /// level receives the conditional component probabilities `P'_i`.
    pub fn probability_vectors(
        &self,
        ordering: &ComputedOrdering,
        truncation: &Truncation,
        components: &ComponentProbabilities,
    ) -> Vec<Vec<f64>> {
        ordering
            .mv_order
            .iter()
            .map(|&mv| {
                if mv == 0 {
                    truncation.w_distribution()
                } else {
                    components.conditional_slice().to_vec()
                }
            })
            .collect()
    }

    /// Human-readable names of the multiple-valued variables in diagram
    /// order (`w`, `v1`, `v2`, …), useful for DOT export.
    pub fn mv_names(&self, ordering: &ComputedOrdering) -> Vec<String> {
        ordering
            .mv_order
            .iter()
            .map(|&mv| if mv == 0 { "w".to_string() } else { format!("v{mv}") })
            .collect()
    }
}

/// Reference (non-BDD) evaluation of `G` directly from its definition,
/// used by tests: given the number of lethal defects `w` and the components
/// hit by each of the first `M` defects (`v[l]`, 0-based component ids),
/// evaluates `G`.
pub fn reference_g(
    fault_tree: &Netlist,
    truncation: usize,
    w: usize,
    v: &[usize],
) -> Result<bool, CoreError> {
    let c = fault_tree.num_inputs();
    if w > truncation {
        return Ok(true);
    }
    let mut failed = vec![false; c];
    for l in 0..truncation.min(w) {
        failed[v[l]] = true;
    }
    Ok(fault_tree.try_eval_output(&failed)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socy_bdd::BddManager;
    use socy_ordering::{compute_ordering, OrderingSpec};

    /// F = x1·x2 + x3 (the paper's Figure 2 fault tree).
    fn figure2_fault_tree() -> Netlist {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let x3 = nl.input("x3");
        let a = nl.and([x1, x2]);
        let f = nl.or([a, x3]);
        nl.set_output(f);
        nl
    }

    #[test]
    fn build_shapes() {
        let f = figure2_fault_tree();
        let g = GeneralizedFaultTree::build(&f, 2).unwrap();
        // w needs 2 bits (domain 4), each v needs 2 bits (C = 3).
        assert_eq!(g.groups().w.len(), 2);
        assert_eq!(g.groups().v.len(), 2);
        assert_eq!(g.groups().v[0].len(), 2);
        assert_eq!(g.netlist().num_inputs(), 6);
        assert_eq!(g.w_domain(), 4);
        assert_eq!(g.v_domain(), 3);
        assert_eq!(g.num_components(), 3);
        assert_eq!(g.truncation(), 2);
        assert!(g.netlist().num_gates() > 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let empty = Netlist::new();
        assert!(matches!(GeneralizedFaultTree::build(&empty, 2), Err(CoreError::FaultTree(_))));
        let mut constant_only = Netlist::new();
        let c = constant_only.constant(false);
        constant_only.set_output(c);
        assert!(matches!(
            GeneralizedFaultTree::build(&constant_only, 2),
            Err(CoreError::EmptySystem)
        ));
    }

    /// Evaluates the binary netlist of G on the encoding of (w, v_1..v_M) and
    /// compares against the reference definition, for every assignment.
    fn check_g_against_reference(fault_tree: &Netlist, m: usize) {
        let g = GeneralizedFaultTree::build(fault_tree, m).unwrap();
        let c = fault_tree.num_inputs();
        let w_width = g.groups().w.len();
        let v_width = if m > 0 { g.groups().v[0].len() } else { 0 };
        let num_inputs = g.netlist().num_inputs();
        let combos = c.pow(m as u32);
        for w in 0..=(m + 1) {
            for combo in 0..combos {
                // Decode the combination index into the component hit by each defect.
                let mut v = vec![0usize; m];
                let mut rest = combo;
                for slot in v.iter_mut() {
                    *slot = rest % c;
                    rest /= c;
                }
                // Build the binary assignment.
                let mut assignment = vec![false; num_inputs];
                for (j, var) in g.groups().w.iter().enumerate() {
                    assignment[var.index()] = (w >> (w_width - 1 - j)) & 1 == 1;
                }
                for (&vl, group) in v.iter().zip(&g.groups().v) {
                    for (j, var) in group.iter().enumerate() {
                        assignment[var.index()] = (vl >> (v_width - 1 - j)) & 1 == 1;
                    }
                }
                let got = g.netlist().eval_output(&assignment);
                let expect = reference_g(fault_tree, m, w, &v).unwrap();
                assert_eq!(got, expect, "w={w} v={v:?}");
            }
        }
    }

    #[test]
    fn g_matches_reference_for_figure2() {
        let f = figure2_fault_tree();
        check_g_against_reference(&f, 2);
        check_g_against_reference(&f, 1);
        check_g_against_reference(&f, 3);
    }

    #[test]
    fn g_matches_reference_for_voter() {
        // 2-of-3 majority voter fault tree: system fails when >= 2 components fail.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let f = nl.at_least(2, [a, b, c]);
        nl.set_output(f);
        check_g_against_reference(&nl, 2);
    }

    #[test]
    fn layout_and_probability_vectors_follow_the_ordering() {
        let f = figure2_fault_tree();
        let g = GeneralizedFaultTree::build(&f, 2).unwrap();
        let spec = OrderingSpec::paper_default();
        let ordering = compute_ordering(g.netlist(), g.groups(), &spec).unwrap();
        let layout = g.layout(&ordering);
        assert_eq!(layout.num_vars(), 3);
        assert_eq!(layout.domains(), g.mdd_domains(&ordering));
        // The layout's bit levels must be exactly the levels assigned by the ordering.
        for (pos, &mv) in ordering.mv_order.iter().enumerate() {
            for (j, var) in g.groups().group(mv).iter().enumerate() {
                assert_eq!(layout.vars[pos].bit_levels[j], ordering.var_level[var.index()]);
            }
        }
        // Probability vectors: the w level gets M+2 entries, the v levels C entries.
        let comps = ComponentProbabilities::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lethal = socy_defect::Empirical::new(vec![0.6, 0.3, 0.05]).unwrap();
        let trunc = socy_defect::truncation::truncate_at(&lethal, 2).unwrap();
        let probs = g.probability_vectors(&ordering, &trunc, &comps);
        for (pos, &mv) in ordering.mv_order.iter().enumerate() {
            if mv == 0 {
                assert_eq!(probs[pos].len(), 4);
                assert!((probs[pos].iter().sum::<f64>() - 1.0).abs() < 1e-12);
            } else {
                assert_eq!(probs[pos], vec![0.2, 0.3, 0.5]);
            }
        }
        let names = g.mv_names(&ordering);
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"w".to_string()));
        assert!(names.contains(&"v1".to_string()));
    }

    #[test]
    fn coded_robdd_of_g_evaluates_like_g() {
        // Sanity end-to-end at the BDD layer: compile G with an ordering and
        // compare a few random-ish assignments.
        let f = figure2_fault_tree();
        let g = GeneralizedFaultTree::build(&f, 2).unwrap();
        let spec = OrderingSpec::paper_default();
        let ordering = compute_ordering(g.netlist(), g.groups(), &spec).unwrap();
        let mut mgr = BddManager::new(g.netlist().num_inputs());
        let build = mgr.build_netlist(g.netlist(), &ordering.var_level);
        for seed in 0..64u32 {
            let assignment: Vec<bool> =
                (0..g.netlist().num_inputs()).map(|i| (seed >> (i % 6)) & 1 == 1).collect();
            let by_level: Vec<bool> = {
                let mut v = vec![false; assignment.len()];
                for (var, &lvl) in ordering.var_level.iter().enumerate() {
                    v[lvl] = assignment[var];
                }
                v
            };
            assert_eq!(mgr.eval(build.root, &by_level), g.netlist().eval_output(&assignment));
        }
    }
}
